"""Helpers shared by the benchmark modules.

Each benchmark regenerates one table or figure of the paper and needs its
text report to reach the operator even though pytest captures stdout: the
report is therefore written both to ``benchmarks/results/<name>.txt`` and to
the real stdout (``sys.__stdout__``), so it appears inline in
``pytest benchmarks/ --benchmark-only`` output and survives on disk.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, report: str) -> Path:
    """Print ``report`` past pytest's capture and persist it to the results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(report + "\n")
    stream = sys.__stdout__ if sys.__stdout__ is not None else sys.stdout
    stream.write(f"\n===== {name} =====\n{report}\n")
    stream.flush()
    return path


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result entry to ``results/<name>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
