"""Ablation: per-update cost versus rank R and window length W (Theorems 5/7).

Theorem 7 states that SNS+_RND's per-update cost is ``O(M²Rθ + M²R²)`` —
independent of the window length ``W`` and of the window's non-zero count —
while SNS_MAT's cost (Theorem 3) scales with the number of non-zeros in the
window.  This bench sweeps R and W and reports the measured latencies.

Expected shape: SNS+_RND latency grows with R but is essentially flat in W,
whereas SNS_MAT grows with W (more units in the window means more non-zeros
to sweep).
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from benchmarks._reporting import emit
from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.data.generators import generate_synthetic_stream
from repro.experiments.reporting import format_table
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

MODE_SIZES = (40, 40)
PERIOD = 100.0
RECORDS_PER_PERIOD = 400.0


def _mean_update_seconds(name: str, rank: int, window_length: int) -> float:
    stream = generate_synthetic_stream(
        mode_sizes=MODE_SIZES,
        rank=5,
        n_records=int(RECORDS_PER_PERIOD * (window_length + 4)),
        period=PERIOD,
        records_per_period=RECORDS_PER_PERIOD,
        seed=3,
    )
    config = WindowConfig(
        mode_sizes=MODE_SIZES, window_length=window_length, period=PERIOD
    )
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=rank, n_iterations=5, seed=0)
    model = create_algorithm(name, SNSConfig(rank=rank, theta=20, seed=0))
    model.initialize(processor.window, initial.decomposition)
    deltas = [delta for _, delta in processor.events(max_events=220)]
    cycle = itertools.cycle(deltas)
    for _ in range(20):
        model.update(next(cycle))
    n_timed = 120
    started = time.perf_counter()
    for _ in range(n_timed):
        model.update(next(cycle))
    return (time.perf_counter() - started) / n_timed


def test_ablation_rank_and_window_scaling(benchmark):
    """SNS+_RND is flat in W and grows with R; SNS_MAT grows with W."""

    def measure() -> dict[str, list[tuple[int, int, float]]]:
        results: dict[str, list[tuple[int, int, float]]] = {
            "sns_rnd_plus": [],
            "sns_mat": [],
        }
        for rank in (5, 10, 20):
            results["sns_rnd_plus"].append(
                (rank, 8, _mean_update_seconds("sns_rnd_plus", rank, 8))
            )
        for window_length in (4, 8, 16):
            results["sns_rnd_plus"].append(
                (10, window_length, _mean_update_seconds("sns_rnd_plus", 10, window_length))
            )
            results["sns_mat"].append(
                (10, window_length, _mean_update_seconds("sns_mat", 10, window_length))
            )
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (name, rank, window_length, 1e6 * seconds)
        for name, series in results.items()
        for rank, window_length, seconds in series
    ]
    report = format_table(
        ("method", "R", "W", "update time [us]"),
        rows,
        title="Ablation — per-update cost vs rank R and window length W",
    )
    emit("ablation_complexity", report)

    # Shape check 1: SNS+_RND latency is essentially flat in W (within 2x),
    # matching its W-independent bound (Theorem 7).
    w_series = [s for r, w, s in results["sns_rnd_plus"] if r == 10]
    assert max(w_series) < 2.0 * min(w_series)
    # Shape check 2: SNS_MAT gets clearly slower as the window grows.
    mat_series = [s for _, w, s in sorted(results["sns_mat"], key=lambda x: x[1])]
    assert mat_series[-1] > 1.5 * mat_series[0]
    # Shape check 3: SNS+_RND latency increases with the rank.
    r_series = [s for r, w, s in results["sns_rnd_plus"] if w == 8][:3]
    assert r_series[-1] > r_series[0]
