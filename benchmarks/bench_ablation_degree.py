"""Ablation: when does sampling (SNS_RND) beat exact row updates (SNS_VEC)?

The paper's speed ordering (SNS_RND faster than SNS_VEC, Theorems 4-5) relies
on row degrees ``deg(m, i_m)`` far exceeding the sampling threshold ``θ`` —
true for the real datasets' windows (10⁵-10⁷ non-zeros) but not for the
scaled-down synthetic windows used in the figure benchmarks.  This ablation
makes the regime explicit: the same event is processed against a *sparse*
window (degrees below θ) and a *dense* window (degrees ~100× θ), and the
per-update latencies of the exact and sampled variants are compared.

Expected shape: on the sparse window the exact update is at least as fast;
on the dense window the sampled update wins clearly.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from benchmarks._reporting import emit
from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.experiments.reporting import format_table
from repro.stream.deltas import Delta
from repro.stream.events import EventKind, StreamRecord, WindowEvent
from repro.stream.window import TensorWindow, WindowConfig

# A deliberately skinny first mode: its rows accumulate thousands of
# non-zeros in the dense regime, which is exactly where ``deg(m, i) >> θ``.
MODE_SIZES = (20, 800)
WINDOW_LENGTH = 5
THETA = 20
RANK = 10


def _build_window(nnz: int, rng: np.random.Generator) -> TensorWindow:
    """A window with ~``nnz`` uniformly placed positive entries."""
    config = WindowConfig(
        mode_sizes=MODE_SIZES, window_length=WINDOW_LENGTH, period=100.0
    )
    window = TensorWindow(config)
    rows = rng.integers(0, MODE_SIZES[0], size=nnz)
    cols = rng.integers(0, MODE_SIZES[1], size=nnz)
    units = rng.integers(0, WINDOW_LENGTH, size=nnz)
    values = rng.uniform(0.5, 3.0, size=nnz)
    for row, col, unit, value in zip(rows, cols, units, values):
        window.add_entry((int(row), int(col)), int(unit), float(value))
    return window


def _arrival_deltas(rng: np.random.Generator, count: int) -> list[Delta]:
    deltas = []
    for position in range(count):
        record = StreamRecord(
            indices=(int(rng.integers(MODE_SIZES[0])), int(rng.integers(MODE_SIZES[1]))),
            value=1.0,
            time=float(position),
        )
        event = WindowEvent(float(position), position, EventKind.ARRIVAL, record, 0)
        deltas.append(Delta.from_event(event, WINDOW_LENGTH))
    return deltas


def _mean_update_seconds(name: str, window: TensorWindow, deltas: list[Delta]) -> float:
    initial = decompose(window.tensor, rank=RANK, n_iterations=5, seed=0).decomposition
    model = create_algorithm(name, SNSConfig(rank=RANK, theta=THETA, seed=0))
    model.initialize(window.copy(), initial)
    cycle = itertools.cycle(deltas)
    # Warm-up, then timed loop (the window is not mutated by these deltas via
    # the model; only the factor update cost is measured).
    for _ in range(20):
        model.update(next(cycle))
    n_timed = 150
    started = time.perf_counter()
    for _ in range(n_timed):
        model.update(next(cycle))
    return (time.perf_counter() - started) / n_timed


def test_ablation_degree_crossover(benchmark):
    """Sampled updates overtake exact row updates once degrees far exceed θ."""
    rng = np.random.default_rng(0)
    sparse_window = _build_window(nnz=2_000, rng=rng)    # deg(0, i) ~ 100
    dense_window = _build_window(nnz=60_000, rng=rng)    # deg(0, i) ~ 3000
    deltas = _arrival_deltas(rng, 64)

    def measure() -> dict[str, dict[str, float]]:
        return {
            regime: {
                name: _mean_update_seconds(name, window, deltas)
                for name in ("sns_vec", "sns_rnd", "sns_vec_plus", "sns_rnd_plus")
            }
            for regime, window in (("sparse", sparse_window), ("dense", dense_window))
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (regime, name, 1e6 * seconds)
        for regime, timings in results.items()
        for name, seconds in timings.items()
    ]
    report = format_table(
        ("window regime", "method", "update time [us]"),
        rows,
        title=(
            "Ablation — exact vs sampled row updates "
            f"(theta = {THETA}, sparse deg ~100, dense deg ~3000)"
        ),
    )
    emit("ablation_degree_crossover", report)

    dense = results["dense"]
    # Shape check: in the high-degree regime the sampled variants win.
    assert dense["sns_rnd"] < dense["sns_vec"]
    assert dense["sns_rnd_plus"] < dense["sns_vec_plus"]
