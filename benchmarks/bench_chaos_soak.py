"""Chaos soak: goodput and convergence of the full service stack under a
seeded fault plan.

Boots the real TCP server subprocess with a probability-based
:class:`~repro.service.faults.FaultPlan` (connection resets around ingest,
synthetic overloads, ENOSPC checkpoint writes) and hammers it from one
retrying ``auto_seq`` client thread per tenant.  Measures:

* goodput — records per second actually *applied*, retries included;
* the retry bill — client retries/reconnects and server-side fault count;
* convergence — after the dust settles every stream's factors must be
  bit-identical to a fault-free sequential replay of its chunk sequence,
  and every record applied exactly once.

The plan is seeded, so a failing soak replays exactly.  Results land in
``results/BENCH_chaos.json`` / ``.txt``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import bench_scale

from repro.service.client import ServiceClient
from repro.service.config import StreamConfig
from repro.service.session import StreamSession
from repro.stream.events import StreamRecord

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

N_STREAMS = 24
N_CHUNKS = 8
CHUNK_RECORDS = 8
WARM_RECORDS = 30

STREAM_KWARGS = dict(
    mode_sizes=(4, 3),
    window_length=3,
    period=5.0,
    rank=2,
    als_iterations=2,
    detector_warmup=5,
    seed=0,
)

FAULT_PLAN = {
    "seed": 20210419,  # any fixed seed: the soak must replay exactly
    "rules": [
        {
            "site": "connection.reset",
            "stage": "request",
            "ops": ["ingest"],
            "probability": 0.04,
        },
        {
            "site": "connection.reset",
            "stage": "response",
            "ops": ["ingest"],
            "probability": 0.04,
        },
        {"site": "ingest.overload", "probability": 0.04},
        {
            "site": "checkpoint.write",
            "kind": "enospc",
            "stage": "arrays",
            "probability": 0.3,
            "limit": 16,
        },
    ],
}


def _records(n, start, spacing, seed):
    rng = np.random.default_rng(seed)
    sizes = STREAM_KWARGS["mode_sizes"]
    return [
        StreamRecord(
            indices=tuple(int(rng.integers(0, size)) for size in sizes),
            value=float(rng.uniform(0.5, 2.0)),
            time=start + position * spacing,
        )
        for position in range(n)
    ]


def _wire(records):
    return [[list(r.indices), r.value, r.time] for r in records]


def _workload():
    n_streams = max(int(N_STREAMS * bench_scale()), 4)
    warm_span = STREAM_KWARGS["window_length"] * STREAM_KWARGS["period"]
    spacing = warm_span / WARM_RECORDS
    streams = {}
    for position in range(n_streams):
        warm = _records(WARM_RECORDS, 0.0, spacing, seed=position + 1)
        live = _records(
            N_CHUNKS * CHUNK_RECORDS,
            warm_span + spacing,
            spacing,
            seed=position + 1000,
        )
        streams[f"tenant-{position}"] = (
            warm,
            [
                live[i * CHUNK_RECORDS : (i + 1) * CHUNK_RECORDS]
                for i in range(N_CHUNKS)
            ],
        )
    return streams


def _sequential_factors(warm, chunks):
    session = StreamSession("reference", StreamConfig(**STREAM_KWARGS))
    session.ingest(warm)
    session.start()
    for chunk in chunks:
        session.ingest(chunk)
    return session.factors()["factors"]


class _Server:
    def __init__(self, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            if line.startswith("listening on "):
                self.port = int(line.rsplit(":", 1)[1])
                return
        raise AssertionError(
            f"server never announced its port (rc={self.process.poll()})"
        )

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, timeout=60.0, **kwargs)

    def cleanup(self):
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10.0)
        self.process.stdout.close()


def _feed(server, stream_id, warm, chunks):
    """One tenant thread: create, warm, stream every chunk, flush."""
    with server.client(
        retries=12, backoff_base=0.01, backoff_max=0.5, auto_seq=True, seed=7
    ) as client:
        config = dict(
            STREAM_KWARGS, mode_sizes=list(STREAM_KWARGS["mode_sizes"])
        )
        client.create_stream(stream_id, **config)
        client.ingest(stream_id, _wire(warm))
        client.start_stream(stream_id)
        for chunk in chunks:
            client.ingest(stream_id, _wire(chunk))
        flush = client.flush(stream_id)
        assert flush["deferred_errors"] == []
        return {
            "retries": client.retries_performed,
            "reconnects": client.reconnects,
        }


def test_chaos_soak():
    streams = _workload()
    n_records = sum(
        len(warm) + sum(len(c) for c in chunks)
        for warm, chunks in streams.values()
    )

    with tempfile.TemporaryDirectory() as tmp:
        plan_path = os.path.join(tmp, "plan.json")
        with open(plan_path, "w") as handle:
            json.dump(FAULT_PLAN, handle)
        server = _Server(
            "--fault-plan", plan_path,
            "--checkpoint-root", os.path.join(tmp, "state"),
            "--checkpoint-events", "40",
            "--checkpoint-retry-backoff", "0.05",
            "--max-streams", str(len(streams)),
        )
        try:
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=8) as pool:
                client_stats = list(
                    pool.map(
                        lambda item: _feed(server, item[0], *item[1]),
                        streams.items(),
                    )
                )
            soak_seconds = time.perf_counter() - started

            with server.client() as client:
                health = client.health()
                fired = health["faults"]["fired_by_site"]
                telemetry = {
                    stream: client.telemetry(stream)["telemetry"]
                    for stream in streams
                }
                factors = {
                    stream: client.factors(stream)["factors"]
                    for stream in streams
                }
                client.shutdown()
            assert server.process.wait(timeout=30.0) == 0
        finally:
            server.cleanup()

    # Convergence guard: chaos must not have cost (or duplicated) a single
    # record, and every stream's state must equal the fault-free replay.
    duplicates = 0
    for stream, (warm, chunks) in streams.items():
        expected = len(warm) + sum(len(c) for c in chunks)
        assert telemetry[stream]["records_ingested"] == expected, stream
        duplicates += telemetry[stream]["duplicates_skipped"]
        reference = _sequential_factors(warm, chunks)
        for served, ref in zip(factors[stream], reference):
            assert np.array_equal(np.array(served), np.array(ref)), stream

    retries = sum(stats["retries"] for stats in client_stats)
    reconnects = sum(stats["reconnects"] for stats in client_stats)
    payload = {
        "benchmark": "bench_chaos_soak",
        "workload": {
            "n_streams": len(streams),
            "records_total": n_records,
            "fault_plan": FAULT_PLAN,
        },
        "soak": {
            "seconds": soak_seconds,
            "goodput_records_per_second": n_records / soak_seconds,
            "client_retries": retries,
            "client_reconnects": reconnects,
            "duplicate_acks": duplicates,
            "faults_fired": fired,
        },
        "converged_to_fault_free_state": True,
    }
    emit_json("BENCH_chaos", payload)
    lines = [
        f"streams: {len(streams)}, records: {n_records}, "
        f"faults fired: {sum(fired.values())} {fired}",
        f"soak: {soak_seconds:.2f} s, "
        f"goodput {payload['soak']['goodput_records_per_second']:.0f} records/s",
        f"retry bill: {retries} retries, {reconnects} reconnects, "
        f"{duplicates} duplicate acks",
        "converged: factors bit-identical to fault-free replay, "
        "every record applied exactly once",
    ]
    emit("BENCH_chaos", "\n".join(lines))
