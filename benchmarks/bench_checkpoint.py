"""Checkpoint subsystem overhead: snapshot save / load / restore timings.

Measures the wall-clock cost of ``save_checkpoint`` and ``restore_run`` for a
mid-size run (nyc_taxi-like stream, SNS+_RND model state included), the
on-disk footprint of the two checkpoint files, and — as a guard — verifies
that a restored run really continues bit-identically.  Results are written to
``results/BENCH_checkpoint.json`` / ``.txt``.

The interesting number is the save cost relative to event throughput: a
checkpoint every N events adds ``save_seconds / N`` amortised seconds per
event, which the JSON reports as the break-even cadence for a 1% overhead.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import scaled_events

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.data.generators import generate_dataset
from repro.stream.checkpoint import ARRAYS_FILENAME, MANIFEST_FILENAME, restore_run
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

BENCH_DATASET = "nyc_taxi"
BENCH_SCALE = 0.2
BENCH_EVENTS = 1500
BENCH_REPEATS = 7


def _prepare():
    stream, spec = generate_dataset(BENCH_DATASET, scale=BENCH_SCALE)
    config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=spec.rank, n_iterations=8, seed=0)
    model = create_algorithm(
        "sns_rnd_plus",
        SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0),
    )
    model.initialize(processor.window, initial.decomposition)
    return processor, model


def test_checkpoint_overhead():
    n_events = scaled_events(BENCH_EVENTS, minimum=300)
    processor, model = _prepare()
    replay_start = time.perf_counter()
    processor.run_batched(model=model, max_events=n_events)
    replay_seconds = time.perf_counter() - replay_start
    events_per_second = n_events / replay_seconds

    save_times: list[float] = []
    load_times: list[float] = []
    manifest_bytes = arrays_bytes = 0
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "ckpt"
        for _ in range(BENCH_REPEATS):
            start = time.perf_counter()
            processor.save_checkpoint(target, model=model)
            save_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            restored_processor, restored_model, _ = restore_run(target)
            load_times.append(time.perf_counter() - start)
        manifest_bytes = (target / MANIFEST_FILENAME).stat().st_size
        arrays_bytes = (target / ARRAYS_FILENAME).stat().st_size

        # Guard: the restored run must continue bit-identically.
        continue_events = max(n_events // 10, 50)
        processor.run_batched(model=model, max_events=continue_events)
        restored_processor.run_batched(model=restored_model, max_events=continue_events)
        assert dict(restored_processor.window.tensor.items()) == dict(
            processor.window.tensor.items()
        )
        assert all(
            (restored == live).all()
            for restored, live in zip(restored_model.factors, model.factors)
        )

    save_seconds = min(save_times)
    load_seconds = min(load_times)
    # Events one checkpoint must amortise over to stay under 1% overhead.
    break_even_events = int(save_seconds * events_per_second * 100)
    payload = {
        "workload": {
            "dataset": BENCH_DATASET,
            "scale": BENCH_SCALE,
            "events": n_events,
            "model": "sns_rnd_plus",
            "window_nnz": processor.window.nnz,
        },
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "save_times": save_times,
        "load_times": load_times,
        "manifest_bytes": manifest_bytes,
        "arrays_bytes": arrays_bytes,
        "replay_events_per_second": events_per_second,
        "checkpoint_events_for_1pct_overhead": break_even_events,
    }
    emit_json("BENCH_checkpoint", payload)
    report = "\n".join(
        [
            f"workload: {BENCH_DATASET} @ {BENCH_SCALE}, {n_events} events, "
            f"sns_rnd_plus, window nnz={processor.window.nnz}",
            f"save_checkpoint: {save_seconds * 1e3:.2f} ms (best of {BENCH_REPEATS})",
            f"restore_run:     {load_seconds * 1e3:.2f} ms (best of {BENCH_REPEATS})",
            f"on disk: manifest {manifest_bytes} B + arrays {arrays_bytes} B",
            f"engine throughput during replay: {events_per_second:,.0f} ev/s",
            "checkpoint cadence for <=1% replay overhead: every "
            f">= {break_even_events} events",
            "restored run verified bit-identical (window + factors) after "
            "continuation",
        ]
    )
    emit("BENCH_checkpoint", report)


if __name__ == "__main__":
    test_checkpoint_overhead()
