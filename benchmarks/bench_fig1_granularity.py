"""Fig. 1(c,d,e) — continuous CPD vs. conventional CPD at fine granularities.

Expected shape (matching the paper): as the conventional update interval
shrinks, fitness drops and the parameter count explodes, while continuous CPD
(SNS_RND at the coarse period) keeps the coarse parameter count, stays close
to the coarse fitness, and updates in microseconds per event.
"""

from __future__ import annotations

from benchmarks._reporting import emit
from benchmarks.conftest import scaled_events
from repro.experiments.config import ExperimentSettings
from repro.experiments.granularity import format_granularity, run_granularity


def test_fig1_granularity_tradeoff(benchmark):
    """Regenerate the Fig. 1 sweep on the NY-Taxi-like stream."""
    settings = ExperimentSettings(
        dataset="nyc_taxi",
        scale=0.2,
        max_events=scaled_events(2000),
        n_checkpoints=10,
        als_iterations=8,
    )
    result = benchmark.pedantic(
        run_granularity,
        kwargs={"settings": settings, "divisors": (60, 20, 10, 4, 2, 1)},
        rounds=1,
        iterations=1,
    )
    report = format_granularity(result)
    emit("fig1_granularity", report)

    conventional = result.conventional()
    continuous = result.continuous()
    # Shape check 1: parameters grow monotonically as the interval shrinks.
    parameters = [point.n_parameters for point in conventional]
    assert parameters == sorted(parameters, reverse=True)
    # Shape check 2: the finest granularity fits worse than the coarsest.
    assert conventional[0].fitness < conventional[-1].fitness
    # Shape check 3: continuous CPD keeps the coarse parameter count and is
    # orders of magnitude cheaper per update than a conventional re-fit.
    assert continuous.n_parameters == conventional[-1].n_parameters
    assert continuous.update_microseconds < conventional[-1].update_microseconds
