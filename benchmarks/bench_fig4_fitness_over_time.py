"""Fig. 4 — relative fitness over time for every method on every dataset.

Expected shape (matching the paper): the SliceNStitch variants form
continuous curves that stay in the 0.7-1.0 relative-fitness band, the
per-period baselines produce one point per period, the unstable variants
(SNS_VEC / SNS_RND) may collapse on some streams, and NeCPD trails everyone.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._reporting import emit
from benchmarks.conftest import scaled_events
from repro.experiments.config import ExperimentSettings
from repro.experiments.fitness_over_time import (
    format_fitness_over_time,
    run_fitness_over_time,
)

DATASETS = ("divvy_bikes", "chicago_crime", "nyc_taxi", "ride_austin")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig4_relative_fitness_over_time(benchmark, dataset):
    """Regenerate the Fig. 4 panel for one dataset."""
    settings = ExperimentSettings(
        dataset=dataset,
        scale=0.12,
        max_events=scaled_events(2500),
        n_checkpoints=10,
        als_iterations=8,
    )
    result = benchmark.pedantic(
        run_fitness_over_time, kwargs={"settings": settings}, rounds=1, iterations=1
    )
    emit(f"fig4_fitness_over_time_{dataset}", format_fitness_over_time(result))

    experiment = result.experiment
    # Shape check: the stable SliceNStitch variants stay in a sane relative-
    # fitness band (the paper reports 72-100%; allow slack for synthetic data).
    for method in ("sns_rnd_plus", "sns_vec_plus", "sns_mat"):
        value = experiment.average_relative_fitness(method)
        assert np.isfinite(value)
        assert value > 0.5, f"{method} collapsed on {dataset} ({value:.3f})"
    # Continuous methods produce many checkpoints; baselines only a few.
    assert len(experiment.methods["sns_rnd_plus"].fitness_series) >= len(
        experiment.methods["als"].fitness_series
    )
