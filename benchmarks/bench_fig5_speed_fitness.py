"""Fig. 5 — runtime per update (a) and average relative fitness (b).

Expected shape (matching the paper): every SliceNStitch variant updates far
faster than the per-period baselines update (which redo work proportional to
the window), SNS_MAT is the slowest and most accurate SliceNStitch variant,
and the stable variants reach 72-100% of the ALS fitness.
"""

from __future__ import annotations

import numpy as np

from benchmarks._reporting import emit
from benchmarks.conftest import scaled_events
from repro.experiments.reporting import format_table
from repro.experiments.speed_fitness import format_speed_fitness, run_speed_fitness

DATASETS = ("divvy_bikes", "chicago_crime", "nyc_taxi", "ride_austin")


def test_fig5_speed_and_fitness(benchmark):
    """Regenerate Fig. 5 across all four synthetic datasets."""
    overrides = {
        "scale": 0.12,
        "max_events": scaled_events(2200),
        "n_checkpoints": 8,
        "als_iterations": 8,
    }
    result = benchmark.pedantic(
        run_speed_fitness,
        kwargs={"datasets": DATASETS, "settings_overrides": overrides},
        rounds=1,
        iterations=1,
    )
    speedups = [
        (
            dataset,
            result.speedup_over_fastest_baseline(dataset, "sns_rnd_plus"),
            result.speedup_over_fastest_baseline(dataset, "sns_mat"),
        )
        for dataset in DATASETS
    ]
    report = format_speed_fitness(result) + "\n\n" + format_table(
        ("dataset", "SNS+_RND speedup vs fastest baseline", "SNS_MAT speedup"),
        speedups,
        title="Per-update speedups (paper reports up to 464x / 3.71x on real data)",
    )
    emit("fig5_speed_fitness", report)

    for dataset in DATASETS:
        experiment = result.experiments[dataset]
        # Shape check 1: stable SliceNStitch variants keep decent fitness.
        assert experiment.average_relative_fitness("sns_rnd_plus") > 0.5
        # Shape check 2: per-event updates are cheaper than per-period re-fits.
        baseline_time = experiment.methods["als"].mean_update_microseconds
        if baseline_time > 0 and np.isfinite(baseline_time):
            assert experiment.methods["sns_vec_plus"].mean_update_microseconds < baseline_time
    # Shape check 3: on the largest window (NY-Taxi-like), SNS_MAT — which
    # sweeps the whole window per event — is the slowest SliceNStitch variant.
    # (On the smallest windows its sweep can cost about the same as a sampled
    # update, so the ordering is only asserted where the window is big enough.)
    taxi = result.experiments["nyc_taxi"]
    sns_times = {
        name: taxi.methods[name].mean_update_microseconds
        for name in ("sns_mat", "sns_vec_plus", "sns_rnd_plus")
    }
    assert sns_times["sns_mat"] >= max(
        sns_times["sns_vec_plus"], sns_times["sns_rnd_plus"]
    ) * 0.8
