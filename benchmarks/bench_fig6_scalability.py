"""Fig. 6 — total runtime versus the number of processed events.

Expected shape (matching the paper): the total update time of every
SliceNStitch variant grows linearly in the number of events (Observation 5).
"""

from __future__ import annotations

from benchmarks._reporting import emit
from benchmarks.conftest import scaled_events
from repro.experiments.config import ExperimentSettings
from repro.experiments.scalability import format_scalability, run_scalability

METHODS = ("sns_vec", "sns_rnd", "sns_vec_plus", "sns_rnd_plus")


def test_fig6_linear_scalability(benchmark):
    """Regenerate the Fig. 6 series on the NY-Taxi-like stream."""
    settings = ExperimentSettings(
        dataset="nyc_taxi", scale=0.15, max_events=1000, als_iterations=8
    )
    base = scaled_events(600)
    event_counts = tuple(base * k for k in (1, 2, 3, 4, 5))
    result = benchmark.pedantic(
        run_scalability,
        kwargs={
            "settings": settings,
            "methods": METHODS,
            "event_counts": event_counts,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig6_scalability", format_scalability(result))

    for method in METHODS:
        series = result.total_seconds[method]
        counts = result.event_counts
        # Shape check 1: more events never get cheaper.
        assert series[-1] > series[0]
        # Shape check 2: growth is essentially linear (Observation 5).  The
        # wall-clock samples are sub-second, so instead of a tight R² bound
        # (fragile under timer noise) check that the cost ratio between the
        # largest and smallest runs tracks the event ratio — a superlinear
        # (e.g. quadratic) method would blow far past the upper bound.
        event_ratio = counts[-1] / counts[0]
        time_ratio = series[-1] / series[0]
        assert 0.4 * event_ratio < time_ratio < 2.5 * event_ratio, (
            f"{method} total runtime is not linear in the number of events "
            f"(time ratio {time_ratio:.1f} for event ratio {event_ratio:.1f})"
        )
        assert result.linearity(method) > 0.75
