"""Fig. 7 — effect of the sampling threshold θ on SNS_RND and SNS+_RND.

Expected shape (matching the paper, Observation 6): fitness improves with
diminishing returns as θ grows, while the per-update time increases.
"""

from __future__ import annotations

import numpy as np

from benchmarks._reporting import emit
from benchmarks.conftest import scaled_events
from repro.experiments.config import ExperimentSettings
from repro.experiments.theta_sweep import format_theta_sweep, run_theta_sweep


def test_fig7_theta_sweep(benchmark):
    """Regenerate the Fig. 7 sweep on the NY-Taxi-like stream."""
    settings = ExperimentSettings(
        dataset="nyc_taxi",
        scale=0.15,
        max_events=scaled_events(1500),
        n_checkpoints=6,
        als_iterations=8,
    )
    result = benchmark.pedantic(
        run_theta_sweep,
        kwargs={
            "settings": settings,
            "methods": ("sns_rnd", "sns_rnd_plus"),
            "fractions": (0.25, 0.5, 1.0, 1.5, 2.0),
        },
        rounds=1,
        iterations=1,
    )
    emit("fig7_theta_sweep", format_theta_sweep(result))

    for method in ("sns_rnd", "sns_rnd_plus"):
        fitness = result.relative_fitness[method]
        times = result.update_microseconds[method]
        assert all(np.isfinite(t) and t > 0 for t in times)
        # Shape check 1: the largest θ is at least as accurate as the smallest
        # (modulo noise, fitness should not *decrease* with more samples).
        assert fitness[-1] >= fitness[0] - 0.05
        # Shape check 2: more samples cost more time per update.
        assert times[-1] > times[0] * 0.9
