"""Fig. 8 — effect of the clipping threshold η on SNS+_VEC and SNS+_RND.

Expected shape (matching the paper, Observation 7): relative fitness is
insensitive to η over a wide range, as long as η is not absurdly small.
"""

from __future__ import annotations

import numpy as np

from benchmarks._reporting import emit
from benchmarks.conftest import scaled_events
from repro.experiments.config import ExperimentSettings
from repro.experiments.eta_sweep import format_eta_sweep, run_eta_sweep

ETAS = (32.0, 100.0, 320.0, 1000.0, 3200.0, 16000.0)


def test_fig8_eta_sweep(benchmark):
    """Regenerate the Fig. 8 sweep on the Chicago-Crime-like stream."""
    settings = ExperimentSettings(
        dataset="chicago_crime",
        scale=0.12,
        max_events=scaled_events(1500),
        n_checkpoints=6,
        als_iterations=8,
    )
    result = benchmark.pedantic(
        run_eta_sweep,
        kwargs={
            "settings": settings,
            "methods": ("sns_vec_plus", "sns_rnd_plus"),
            "etas": ETAS,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig8_eta_sweep", format_eta_sweep(result))

    for method in ("sns_vec_plus", "sns_rnd_plus"):
        series = result.relative_fitness[method]
        assert all(np.isfinite(v) for v in series)
        # Shape check: fitness varies little across two orders of magnitude of
        # η (Observation 7) — compare the spread of the η >= 100 points.
        stable = series[1:]
        assert max(stable) - min(stable) < 0.25, (
            f"{method} fitness is unexpectedly sensitive to eta: {series}"
        )
