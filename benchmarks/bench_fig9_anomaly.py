"""Fig. 9 — anomaly detection: precision at top-20 and detection latency.

Expected shape (matching the paper): SNS+_RND detects the injected anomalies
with precision comparable to the per-period baselines but with a detection
delay that is essentially zero, while the baselines must wait for the next
period boundary (hundreds of time units at the default period).
"""

from __future__ import annotations

import math

from benchmarks._reporting import emit
from repro.experiments.anomaly_experiment import (
    format_anomaly_experiment,
    run_anomaly_experiment,
)
from repro.experiments.config import ExperimentSettings

METHODS = ("sns_rnd_plus", "online_scp", "cp_stream")


def test_fig9_anomaly_detection(benchmark, workload_scale):
    """Regenerate the Fig. 9 comparison on the NY-Taxi-like stream."""
    settings = ExperimentSettings(
        dataset="nyc_taxi",
        scale=0.2 * min(workload_scale, 1.0) if workload_scale else 0.2,
        max_events=4000,
        n_checkpoints=4,
        als_iterations=8,
        seed=0,
    )
    result = benchmark.pedantic(
        run_anomaly_experiment,
        kwargs={
            "settings": settings,
            "methods": METHODS,
            "n_anomalies": 20,
            "magnitude_factor": 5.0,
            "replay_periods": 4,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig9_anomaly_detection", format_anomaly_experiment(result))

    continuous = result.methods["sns_rnd_plus"]
    # Shape check 1: the continuous method catches most injected anomalies.
    assert continuous.precision_at_k >= 0.5
    # Shape check 2: its detection delay is essentially zero (the paper
    # reports 0.0015 s versus >1400 s for the per-period baselines).
    assert continuous.mean_detection_delay < 1.0
    for name in ("online_scp", "cp_stream"):
        delay = result.methods[name].mean_detection_delay
        if not math.isnan(delay):
            assert delay > continuous.mean_detection_delay
