"""Parallel experiment fan-out: wall-clock speedup over the sequential run.

Replays the paper's default method roster (5 SliceNStitch variants + 5
periodic baselines) on the nyc_taxi-like stream twice through
``run_experiment`` — sequentially (``n_workers=1``) and fanned out over 4
worker processes sharing one prepared snapshot — and reports the wall-clock
ratio plus a per-method spot check that the parallel results are identical.

Speedup depends on physical parallelism: on a machine with >= 4 usable cores
the fan-out is expected to reach >= 2.5x on this roster (the tasks are
CPU-bound, independent, and far longer than the fork + snapshot-rehydration
overhead, which the JSON also reports).  On fewer cores the measured ratio is
recorded as-is and the speedup assertion is skipped — a 1-core container
cannot express process-level parallelism, only its overhead.

Results land in ``results/BENCH_parallel.json`` / ``.txt``.
"""

from __future__ import annotations

import dataclasses
import os
import time

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import scaled_events

from repro.experiments.config import (
    DEFAULT_CONTINUOUS_METHODS,
    DEFAULT_PERIODIC_METHODS,
    ExperimentSettings,
)
from repro.experiments.runner import run_experiment

BENCH_DATASET = "nyc_taxi"
BENCH_SCALE = 0.2
BENCH_EVENTS = 1200
BENCH_WORKERS = 4
SPEEDUP_FLOOR = 2.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_parallel_fanout_speedup():
    n_events = scaled_events(BENCH_EVENTS, minimum=300)
    methods = list(DEFAULT_CONTINUOUS_METHODS) + list(DEFAULT_PERIODIC_METHODS)
    settings = ExperimentSettings(
        dataset=BENCH_DATASET,
        scale=BENCH_SCALE,
        max_events=n_events,
        n_checkpoints=8,
    )

    start = time.perf_counter()
    sequential = run_experiment(settings, methods)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_experiment(
        dataclasses.replace(settings, n_workers=BENCH_WORKERS), methods
    )
    parallel_seconds = time.perf_counter() - start

    # Guard: the fan-out must be result-identical, not just fast.
    for method in methods:
        assert (
            parallel.methods[method].fitness_series
            == sequential.methods[method].fitness_series
        ), f"parallel diverged from sequential on {method}"
        assert (
            parallel.methods[method].final_fitness
            == sequential.methods[method].final_fitness
        )

    speedup = sequential_seconds / parallel_seconds if parallel_seconds else 0.0
    n_cpus = _usable_cpus()
    payload = {
        "workload": {
            "dataset": BENCH_DATASET,
            "scale": BENCH_SCALE,
            "events": n_events,
            "methods": methods,
            "n_workers": BENCH_WORKERS,
        },
        "n_usable_cpus": n_cpus,
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_enforced": n_cpus >= BENCH_WORKERS,
        "results_identical": True,
    }
    emit_json("BENCH_parallel", payload)
    report = "\n".join(
        [
            f"workload: {BENCH_DATASET} @ {BENCH_SCALE}, {n_events} events, "
            f"{len(methods)} methods, {BENCH_WORKERS} workers",
            f"usable CPUs: {n_cpus}",
            f"sequential run_experiment: {sequential_seconds:8.2f} s",
            f"parallel   run_experiment: {parallel_seconds:8.2f} s",
            f"speedup: {speedup:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x enforced only with >= {BENCH_WORKERS} CPUs)",
            "parallel results verified identical to sequential "
            "(fitness series + final fitness, all methods)",
        ]
    )
    emit("BENCH_parallel", report)

    if n_cpus >= BENCH_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel fan-out reached only {speedup:.2f}x on {n_cpus} CPUs "
            f"(floor {SPEEDUP_FLOOR}x)"
        )


if __name__ == "__main__":
    test_parallel_fanout_speedup()
