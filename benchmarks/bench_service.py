"""Multi-tenant streaming service benchmark.

Drives an in-process :class:`~repro.service.server.StreamingServer` (the
real asyncio front-end, minus the TCP socket) with several concurrent
tenant streams and measures:

* aggregate ingest throughput (records and events per second across all
  streams, flush-barriered so every queued chunk is actually applied);
* query latency while ingestion is running (factors / fitness round-trips);
* checkpoint-all and full-recovery wall clock at that stream count.

A correctness guard re-runs one stream's chunk sequence sequentially and
requires bit-identical factors — throughput that breaks determinism does
not count.  Results land in ``results/BENCH_service.json`` / ``.txt``.
"""

from __future__ import annotations

import asyncio
import statistics
import tempfile
import time

import numpy as np

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import bench_scale

from repro.service.config import ServiceConfig, StreamConfig
from repro.service.manager import ServiceManager
from repro.service.server import StreamingServer
from repro.service.session import StreamSession
from repro.stream.events import StreamRecord

N_STREAMS = 8
N_CHUNKS = 12
CHUNK_RECORDS = 50
WARM_RECORDS = 200

STREAM_KWARGS = dict(
    mode_sizes=(8, 6),
    window_length=4,
    period=10.0,
    rank=4,
    method="sns_vec",
    als_iterations=4,
    detector_warmup=20,
    seed=0,
)


def _records(n, start, spacing, seed, mode_sizes=(8, 6)):
    rng = np.random.default_rng(seed)
    return [
        StreamRecord(
            indices=tuple(int(rng.integers(0, size)) for size in mode_sizes),
            value=float(rng.uniform(0.5, 2.0)),
            time=start + position * spacing,
        )
        for position in range(n)
    ]


def _wire(records):
    return [[list(r.indices), r.value, r.time] for r in records]


def _workload():
    scale = bench_scale()
    n_chunks = max(int(N_CHUNKS * scale), 3)
    warm_span = STREAM_KWARGS["window_length"] * STREAM_KWARGS["period"]
    spacing = warm_span / WARM_RECORDS
    streams = {}
    for position in range(N_STREAMS):
        warm = _records(WARM_RECORDS, 0.0, spacing, seed=position + 1)
        live = _records(
            n_chunks * CHUNK_RECORDS,
            warm_span + spacing,
            spacing,
            seed=position + 100,
        )
        chunks = [
            live[i * CHUNK_RECORDS : (i + 1) * CHUNK_RECORDS]
            for i in range(n_chunks)
        ]
        streams[f"tenant-{position}"] = (warm, chunks)
    return streams


def _sequential_factors(warm, chunks):
    session = StreamSession("reference", StreamConfig(**STREAM_KWARGS))
    session.ingest(warm)
    session.start()
    for chunk in chunks:
        session.ingest(chunk)
    return session.factors()["factors"]


async def _drive(server, streams, query_latencies):
    async def tenant(stream_id, warm, chunks):
        await server._dispatch(
            {
                "op": "create_stream",
                "stream": stream_id,
                "config": dict(STREAM_KWARGS, mode_sizes=list(STREAM_KWARGS["mode_sizes"])),
            }
        )
        await server._dispatch(
            {"op": "ingest", "stream": stream_id, "records": _wire(warm)}
        )
        await server._dispatch({"op": "start_stream", "stream": stream_id})
        for chunk in chunks:
            await server._dispatch(
                {"op": "ingest", "stream": stream_id, "records": _wire(chunk)}
            )
            started = time.perf_counter()
            await server._dispatch({"op": "fitness", "stream": stream_id})
            query_latencies.append(time.perf_counter() - started)
        await server._dispatch({"op": "flush", "stream": stream_id})

    await asyncio.gather(
        *(tenant(stream_id, warm, chunks) for stream_id, (warm, chunks) in streams.items())
    )


def test_service_throughput():
    streams = _workload()
    n_live_records = sum(
        len(chunk) for _, chunks in streams.values() for chunk in chunks
    )

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            max_streams=N_STREAMS, queue_limit=64, checkpoint_root=tmp
        )

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            query_latencies: list[float] = []
            started = time.perf_counter()
            await _drive(server, streams, query_latencies)
            ingest_seconds = time.perf_counter() - started
            telemetry = {
                stream_id: server.manager.get(stream_id).telemetry
                for stream_id in streams
            }
            n_events = sum(t.events_applied for t in telemetry.values())
            started = time.perf_counter()
            await server._dispatch({"op": "checkpoint_all"})
            checkpoint_seconds = time.perf_counter() - started
            factors = {
                stream_id: (
                    await server._dispatch(
                        {"op": "factors", "stream": stream_id}
                    )
                )["factors"]
                for stream_id in streams
            }
            await server.stop()
            return ingest_seconds, n_events, checkpoint_seconds, query_latencies, factors

        ingest_seconds, n_events, checkpoint_seconds, query_latencies, factors = (
            asyncio.run(scenario())
        )

        started = time.perf_counter()
        recovered = ServiceManager(config)
        report = recovered.recover()
        recover_seconds = time.perf_counter() - started
        assert report["failed"] == {}
        assert len(report["recovered"]) == N_STREAMS

    # Correctness guard: the service's concurrent result is bit-identical to
    # a sequential single-tenant replay of the same chunks.
    guard_id = "tenant-0"
    reference = _sequential_factors(*streams[guard_id])
    for served, expected in zip(factors[guard_id], reference):
        assert np.array_equal(np.array(served), np.array(expected))

    payload = {
        "benchmark": "bench_service",
        "workload": {
            "n_streams": N_STREAMS,
            "chunks_per_stream": len(next(iter(streams.values()))[1]),
            "records_per_chunk": CHUNK_RECORDS,
            "live_records_total": n_live_records,
            "stream_config": dict(
                STREAM_KWARGS, mode_sizes=list(STREAM_KWARGS["mode_sizes"])
            ),
        },
        "ingest": {
            "seconds": ingest_seconds,
            "records_per_second": n_live_records / ingest_seconds,
            "events_applied": n_events,
            "events_per_second": n_events / ingest_seconds,
        },
        "queries": {
            "n": len(query_latencies),
            "mean_seconds": statistics.fmean(query_latencies),
            "p95_seconds": sorted(query_latencies)[
                max(int(len(query_latencies) * 0.95) - 1, 0)
            ],
        },
        "durability": {
            "checkpoint_all_seconds": checkpoint_seconds,
            "recover_all_seconds": recover_seconds,
        },
        "concurrent_equals_sequential": True,
    }
    emit_json("BENCH_service", payload)
    lines = [
        f"streams: {N_STREAMS}, live records: {n_live_records}",
        f"ingest: {payload['ingest']['records_per_second']:.0f} records/s, "
        f"{payload['ingest']['events_per_second']:.0f} events/s "
        f"(interleaved with {len(query_latencies)} queries)",
        f"query latency: mean {payload['queries']['mean_seconds'] * 1e3:.2f} ms, "
        f"p95 {payload['queries']['p95_seconds'] * 1e3:.2f} ms",
        f"checkpoint all: {checkpoint_seconds * 1e3:.1f} ms, "
        f"recover all: {recover_seconds * 1e3:.1f} ms",
        "concurrent == sequential: bit-identical factors (guarded)",
    ]
    emit("BENCH_service", "\n".join(lines))
