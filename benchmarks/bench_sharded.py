"""Sharded update path: fitness-deviation-vs-staleness frontier + throughput.

Replays the nyc_taxi-like stream through ``run_method`` once exactly
(``shards=1``, ``staleness=0``) and once per staleness point at
``shards=4`` (see :mod:`repro.shard`), for one least-squares and one
clipped/sampled variant, and reports:

* the **accuracy frontier** — final-fitness deviation from the exact run at
  each staleness (the relaxed-consistency cost of working against a
  snapshot up to S batches old), which must stay within the documented
  bound; and
* the **throughput ratio** sharded/exact per staleness point.  Sharding
  pays off through parallel shard execution, so the >= 2x floor is only
  enforced on machines with >= 4 usable CPUs — a 1-core container can
  express the overhead but not the parallelism.

Results land in ``results/BENCH_sharded.json`` / ``.txt``; the regression
gate enforces the ``deviation_within_bound`` and ``meets_speedup_floor``
flags plus the exact-path throughput.
"""

from __future__ import annotations

import os
import time

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import scaled_events, thread_settings

from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import prepare_experiment, run_method

BENCH_DATASET = "nyc_taxi"
BENCH_SCALE = 0.2
BENCH_EVENTS = 1200
BENCH_SHARDS = 4
STALENESS_POINTS = (0, 2, 8)
#: The variants benchmarked: the batched least-squares family representative
#: and the clipped + sampled one (the most relaxed sharded semantics).
BENCH_METHODS = ("sns_vec", "sns_rnd_plus")
#: Accuracy bar: max |final_fitness(sharded) - final_fitness(exact)| over
#: the whole frontier.  The deviation is dominated by the batch-level
#: relaxation itself (all rows of one batch are solved against one shared
#: snapshot — Jacobi-style — where the exact path refreshes Gram state
#: after every event, Gauss-Seidel-style); the staleness knob on top of
#: that moves fitness very little, which is why raising it is almost free
#: throughput.  Observed max deviation on the committed workload is ~0.11
#: (sns_vec; the clipped sns_rnd_plus stays under 0.03); the bound leaves
#: margin for other hardware's float rounding.
DEVIATION_BOUND = 0.15
SPEEDUP_FLOOR = 2.0
SPEEDUP_MIN_CPUS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _replay(prepared, method: str, n_events: int, shards: int, staleness: int):
    stream, spec, window_config, initial, _initial_fitness = prepared
    start = time.perf_counter()
    result = run_method(
        stream,
        window_config,
        method,
        initial_factors=initial,
        rank=spec.rank,
        theta=spec.theta,
        eta=spec.eta,
        max_events=n_events,
        fitness_every=max(n_events // 8, 1),
        seed=0,
        batched=True,
        shards=shards,
        staleness=staleness,
    )
    seconds = time.perf_counter() - start
    events_per_second = result.n_events / seconds if seconds > 0 else 0.0
    return result, events_per_second


def test_sharded_frontier():
    n_events = scaled_events(BENCH_EVENTS, minimum=300)
    settings = ExperimentSettings(
        dataset=BENCH_DATASET,
        scale=BENCH_SCALE,
        max_events=n_events,
        n_checkpoints=8,
    )
    prepared = prepare_experiment(settings)

    exact: dict[str, dict[str, float]] = {}
    frontier: dict[str, list[dict[str, float]]] = {}
    report_lines = [
        f"workload: {BENCH_DATASET} @ {BENCH_SCALE}, {n_events} events, "
        f"shards={BENCH_SHARDS}, staleness sweep {STALENESS_POINTS}",
        f"usable CPUs: {_usable_cpus()}",
    ]
    for method in BENCH_METHODS:
        result, eps = _replay(prepared, method, n_events, shards=1, staleness=0)
        exact[method] = {
            "final_fitness": float(result.final_fitness),
            "events_per_second": float(eps),
        }
        report_lines.append(
            f"{method:14s} exact      fitness={result.final_fitness:+.4f} "
            f"{eps:10.0f} ev/s"
        )
        points = []
        for staleness in STALENESS_POINTS:
            sharded, sharded_eps = _replay(
                prepared, method, n_events, shards=BENCH_SHARDS, staleness=staleness
            )
            deviation = abs(sharded.final_fitness - result.final_fitness)
            ratio = sharded_eps / eps if eps > 0 else 0.0
            points.append(
                {
                    "staleness": staleness,
                    "final_fitness": float(sharded.final_fitness),
                    "fitness_deviation": float(deviation),
                    "events_per_second": float(sharded_eps),
                    "throughput_ratio": float(ratio),
                }
            )
            report_lines.append(
                f"{method:14s} staleness={staleness} "
                f"fitness={sharded.final_fitness:+.4f} "
                f"deviation={deviation:.5f} {sharded_eps:10.0f} ev/s "
                f"({ratio:.2f}x exact)"
            )
        frontier[method] = points

    max_deviation = max(
        point["fitness_deviation"]
        for points in frontier.values()
        for point in points
    )
    best_ratio = max(
        point["throughput_ratio"]
        for points in frontier.values()
        for point in points
    )
    max_deviation = float(max_deviation)
    best_ratio = float(best_ratio)
    n_cpus = _usable_cpus()
    floor_enforced = n_cpus >= SPEEDUP_MIN_CPUS
    meets_floor = bool(best_ratio >= SPEEDUP_FLOOR or not floor_enforced)
    within_bound = bool(max_deviation <= DEVIATION_BOUND)

    payload = {
        "workload": {
            "dataset": BENCH_DATASET,
            "scale": BENCH_SCALE,
            "events": n_events,
            "methods": list(BENCH_METHODS),
            "shards": BENCH_SHARDS,
            "staleness_points": list(STALENESS_POINTS),
        },
        "thread_context": thread_settings(),
        "n_usable_cpus": n_cpus,
        "exact": exact,
        "frontier": frontier,
        "max_fitness_deviation": max_deviation,
        "deviation_bound": DEVIATION_BOUND,
        "deviation_within_bound": within_bound,
        "best_throughput_ratio": best_ratio,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_enforced": floor_enforced,
        "meets_speedup_floor": meets_floor,
    }
    emit_json("BENCH_sharded", payload)
    report_lines += [
        f"max fitness deviation: {max_deviation:.5f} "
        f"(bound {DEVIATION_BOUND}) -> {'ok' if within_bound else 'EXCEEDED'}",
        f"best throughput ratio: {best_ratio:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x enforced only with >= {SPEEDUP_MIN_CPUS} "
        f"CPUs)",
    ]
    emit("BENCH_sharded", "\n".join(report_lines))

    assert within_bound, (
        f"sharded fitness deviated {max_deviation:.5f} from exact "
        f"(bound {DEVIATION_BOUND})"
    )
    if floor_enforced:
        assert best_ratio >= SPEEDUP_FLOOR, (
            f"sharded throughput reached only {best_ratio:.2f}x exact on "
            f"{n_cpus} CPUs (floor {SPEEDUP_FLOOR}x)"
        )


if __name__ == "__main__":
    test_sharded_frontier()
