"""Table II — dataset summary (paper metadata + synthetic equivalents).

Prints the paper's Table II verbatim (the real datasets' sizes, non-zero
counts, and densities) next to the corresponding statistics of the synthetic
equivalents this reproduction generates and runs on.
"""

from __future__ import annotations

from benchmarks._reporting import emit
from repro.data.datasets import DATASETS, PAPER_DATASETS
from repro.data.generators import generate_dataset
from repro.experiments.reporting import format_table
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


def _build_report(scale: float) -> str:
    paper_rows = [
        (
            info.name,
            "x".join(str(n) for n in info.shape),
            f"{info.n_nonzeros:.2e}",
            f"{info.density:.3e}",
        )
        for info in PAPER_DATASETS.values()
    ]
    paper_table = format_table(
        ("dataset (paper)", "size", "# non-zeros", "density"),
        paper_rows,
        title="Table II — real datasets as reported in the paper",
    )
    synthetic_rows = []
    for name, spec in DATASETS.items():
        stream, _ = generate_dataset(name, scale=0.3 * scale)
        config = WindowConfig(
            mode_sizes=spec.mode_sizes,
            window_length=spec.window_length,
            period=spec.period,
        )
        window = ContinuousStreamProcessor(stream, config).window
        synthetic_rows.append(
            (
                name,
                "x".join(str(n) for n in spec.window_shape),
                len(stream),
                window.nnz,
                f"{window.nnz / window.tensor.size:.3e}",
            )
        )
    synthetic_table = format_table(
        ("dataset (synthetic)", "window shape", "records", "window nnz", "window density"),
        synthetic_rows,
        title="Synthetic equivalents actually used by this reproduction",
    )
    return f"{paper_table}\n\n{synthetic_table}"


def test_table2_dataset_summary(benchmark, workload_scale):
    """Regenerate Table II (metadata plus synthetic-equivalent statistics)."""
    report = benchmark.pedantic(
        _build_report, args=(workload_scale,), rounds=1, iterations=1
    )
    emit("table2_datasets", report)
    assert "Divvy Bikes" in report and "nyc_taxi" in report
