"""Table III — default hyper-parameter settings per dataset."""

from __future__ import annotations

from benchmarks._reporting import emit
from repro.experiments.config import table_iii_rows
from repro.experiments.reporting import format_table


def test_table3_default_hyperparameters(benchmark):
    """Regenerate Table III (R, W, T, θ, η per dataset)."""
    report = benchmark.pedantic(
        lambda: format_table(
            ("dataset", "R", "W", "T (period)", "theta", "eta"),
            table_iii_rows(),
            title="Table III — default hyper-parameters (synthetic equivalents)",
        ),
        rounds=1,
        iterations=1,
    )
    emit("table3_hyperparameters", report)
    assert "ride_austin" in report
