"""Micro-benchmarks: per-event update latency of every SliceNStitch variant.

These are conventional pytest-benchmark measurements (many rounds of a single
event update), complementing the experiment-level timings of Fig. 5 and
supporting Observation 2 (per-update cost ordering: SNS+_RND and SNS_RND stay
bounded by θ, SNS_VEC scales with the row degree, SNS_MAT touches the whole
window).
"""

from __future__ import annotations

import itertools

import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_dataset
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


@pytest.fixture(scope="module")
def prepared_stream():
    """A mid-size NY-Taxi-like stream with an ALS initialisation."""
    stream, spec = generate_dataset("nyc_taxi", scale=0.2)
    config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=spec.rank, n_iterations=8, seed=0)
    return stream, spec, config, initial.decomposition


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_update_latency(benchmark, prepared_stream, name):
    """Median latency of a single factor-matrix update for one event."""
    stream, spec, config, initial = prepared_stream
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(
        name, SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0)
    )
    model.initialize(processor.window, initial)
    events = itertools.cycle(
        [delta for _, delta in processor.events(max_events=400)]
    )

    benchmark(lambda: model.update(next(events)))
    assert model.n_updates > 0
