"""Micro-benchmarks: per-event update latency of every SliceNStitch variant.

These are conventional pytest-benchmark measurements (many rounds of a single
event update), complementing the experiment-level timings of Fig. 5 and
supporting Observation 2 (per-update cost ordering: SNS+_RND and SNS_RND stay
bounded by θ, SNS_VEC scales with the row degree, SNS_MAT touches the whole
window).

``test_batched_vs_sequential_throughput`` additionally compares the batched
event engine (``run_batched`` / ``update_batch``) against the per-event loop
— pure window replay and every variant, events/sec side by side — and writes
the numbers to ``results/BENCH_update_micro.json``.  Its ``randomized``
section measures the SNS-RND / SNS-RND+ engine path (vectorised flat-index
sampling + batched updates) against the seed per-event path
(``sampling="legacy"`` through the ``events()`` generator) and enforces the
>= 3x acceptance bar against the seed's recorded throughput.
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import bench_scale, scaled_events, thread_settings

from repro.als.als import decompose
from repro.kernels.registry import resolve_backend
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_dataset
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


#: Workload of every benchmark in this module (also recorded in the JSON).
BENCH_DATASET = "nyc_taxi"
BENCH_SCALE = 0.2

#: Per-event throughput (events/sec) of the randomised variants as recorded
#: by the seed implementation's own benchmark run on the reference container
#: (the values committed in BENCH_update_micro.json before the vectorised
#: sampler landed), at this module's canonical workload (nyc_taxi @ 0.2,
#: 1500 model events).  The engine-path acceptance bar is measured against
#: these: the live ``sampling="legacy"`` sequential path reproduces the seed
#: *algorithm* bit-for-bit but now runs ~20% faster than the seed did,
#: because it shares the backend improvements that landed alongside the
#: vectorised path (array slice gathers in mttkrp_row, buffered Gram
#: updates, cached pinv ridge, COO caching) — so it understates the speedup
#: over what the seed actually shipped.
SEED_SEQUENTIAL_EVENTS_PER_SECOND = {
    "sns_rnd": 1341.3703187351832,
    "sns_rnd_plus": 1358.3879231710134,
}


@pytest.fixture(scope="module")
def prepared_stream():
    """A mid-size NY-Taxi-like stream with an ALS initialisation."""
    stream, spec = generate_dataset(BENCH_DATASET, scale=BENCH_SCALE)
    config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=spec.rank, n_iterations=8, seed=0)
    return stream, spec, config, initial.decomposition


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_update_latency(benchmark, prepared_stream, name):
    """Median latency of a single factor-matrix update for one event."""
    stream, spec, config, initial = prepared_stream
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(
        name, SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0)
    )
    model.initialize(processor.window, initial)
    events = itertools.cycle(
        [delta for _, delta in processor.events(max_events=400)]
    )

    benchmark(lambda: model.update(next(events)))
    assert model.n_updates > 0


def _best_of(function, repetitions: int = 3) -> float:
    """Best wall-clock time of ``repetitions`` runs (noise-robust minimum)."""
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return min(times)


def test_batched_vs_sequential_throughput(prepared_stream):
    """Events/sec of the batched engine vs the per-event loop, side by side.

    Pure replay (no model) isolates the engine itself: scheduler drain,
    delta construction, and window maintenance.  This is where the batched
    engine's coalesced scatter-add pays off, and where the >= 3x acceptance
    bar of the batched-engine work is enforced.  The per-variant rows then
    show the end-to-end gain when the (exactly per-event-equivalent) factor
    updates dominate.
    """
    stream, spec, config, initial = prepared_stream
    n_events = scaled_events(20000, minimum=4000)
    n_model_events = scaled_events(1500, minimum=400)

    # ------------------------------------------------------------------
    # Randomised variants: seed per-event path vs the vectorised engine path
    # ------------------------------------------------------------------
    # Measured first (before the machine warms up under the rest of the
    # suite) and round-robin interleaved, so all three paths of one variant
    # see comparable conditions.  Three measurements per variant: the seed
    # per-event path (sampling="legacy" through the events() generator —
    # same algorithm and draw stream as the seed; see
    # SEED_SEQUENTIAL_EVENTS_PER_SECOND for why it is nonetheless faster
    # than the seed's own recorded run), the vectorised sampler on the same
    # per-event loop, and the engine path (vectorised sampling through
    # run_batched / update_batch).
    randomized = {}
    for name in ("sns_rnd", "sns_rnd_plus"):

        def run_randomized(sampling: str, batched: bool) -> float:
            sns_config = SNSConfig(
                rank=spec.rank,
                theta=spec.theta,
                eta=spec.eta,
                seed=0,
                sampling=sampling,
            )
            processor = ContinuousStreamProcessor(stream, config)
            model = create_algorithm(name, sns_config)
            model.initialize(processor.window, initial)
            start = time.perf_counter()
            if batched:
                processor.run_batched(model=model, max_events=n_model_events)
            else:
                for _, delta in processor.events(max_events=n_model_events):
                    model.update(delta)
            return time.perf_counter() - start

        legacy_seconds = float("inf")
        vectorized_seconds = float("inf")
        engine_seconds = float("inf")
        for _ in range(7):
            legacy_seconds = min(legacy_seconds, run_randomized("legacy", False))
            vectorized_seconds = min(
                vectorized_seconds, run_randomized("vectorized", False)
            )
            engine_seconds = min(engine_seconds, run_randomized("vectorized", True))
        legacy_sequential = n_model_events / legacy_seconds
        engine_path = n_model_events / engine_seconds
        seed_reference = SEED_SEQUENTIAL_EVENTS_PER_SECOND[name]
        randomized[name] = {
            "n_events": n_model_events,
            "legacy_sequential_events_per_second": legacy_sequential,
            "vectorized_sequential_events_per_second": n_model_events
            / vectorized_seconds,
            "vectorized_batched_events_per_second": engine_path,
            "seed_recorded_sequential_events_per_second": seed_reference,
            "speedup_engine_vs_seed_per_event": engine_path / seed_reference,
            "speedup_engine_vs_live_legacy_sequential": legacy_seconds
            / engine_seconds,
        }

    def run_sequential() -> None:
        ContinuousStreamProcessor(stream, config).run(max_events=n_events)

    def run_batched() -> None:
        ContinuousStreamProcessor(stream, config).run_batched(max_events=n_events)

    sequential_seconds = _best_of(run_sequential)
    batched_seconds = _best_of(run_batched)
    engine = {
        "n_events": n_events,
        "sequential_events_per_second": n_events / sequential_seconds,
        "batched_events_per_second": n_events / batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
    }

    variants = {}
    for name in sorted(ALGORITHMS):
        sns_config = SNSConfig(
            rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0
        )

        def run_model_sequential() -> None:
            processor = ContinuousStreamProcessor(stream, config)
            model = create_algorithm(name, sns_config)
            model.initialize(processor.window, initial)
            for _, delta in processor.events(max_events=n_model_events):
                model.update(delta)

        def run_model_batched() -> None:
            processor = ContinuousStreamProcessor(stream, config)
            model = create_algorithm(name, sns_config)
            model.initialize(processor.window, initial)
            processor.run_batched(model=model, max_events=n_model_events)

        model_sequential_seconds = _best_of(run_model_sequential)
        model_batched_seconds = _best_of(run_model_batched)
        variants[name] = {
            "n_events": n_model_events,
            "sequential_events_per_second": n_model_events
            / model_sequential_seconds,
            "batched_events_per_second": n_model_events / model_batched_seconds,
            "speedup": model_sequential_seconds / model_batched_seconds,
        }

    lines = [
        "batched event engine vs per-event loop (events/sec, best of 3)",
        "",
        f"{'workload':<16}{'sequential':>12}{'batched':>12}{'speedup':>9}",
        f"{'engine (replay)':<16}"
        f"{engine['sequential_events_per_second']:>12.0f}"
        f"{engine['batched_events_per_second']:>12.0f}"
        f"{engine['speedup']:>8.2f}x",
    ]
    for name, row in variants.items():
        lines.append(
            f"{name:<16}"
            f"{row['sequential_events_per_second']:>12.0f}"
            f"{row['batched_events_per_second']:>12.0f}"
            f"{row['speedup']:>8.2f}x"
        )
    lines += [
        "",
        "randomized variants: engine path (vectorized sampling + update_batch)",
        f"{'variant':<16}{'seed(rec)':>10}{'legacy-seq':>11}{'vec-seq':>9}"
        f"{'engine':>9}{'vs seed':>9}{'vs legacy':>10}",
    ]
    for name, row in randomized.items():
        lines.append(
            f"{name:<16}"
            f"{row['seed_recorded_sequential_events_per_second']:>10.0f}"
            f"{row['legacy_sequential_events_per_second']:>11.0f}"
            f"{row['vectorized_sequential_events_per_second']:>9.0f}"
            f"{row['vectorized_batched_events_per_second']:>9.0f}"
            f"{row['speedup_engine_vs_seed_per_event']:>8.2f}x"
            f"{row['speedup_engine_vs_live_legacy_sequential']:>9.2f}x"
        )
    # What "auto" resolves to on this machine — the backend every model
    # above actually ran on — plus the thread pinning in effect, so two
    # JSON files are only ever compared like for like.
    kernel_backend = resolve_backend().name
    lines += ["", f"kernel backend: {kernel_backend}"]
    report = "\n".join(lines)
    emit("BENCH_update_micro", report)
    emit_json(
        "BENCH_update_micro",
        {
            "benchmark": "bench_update_micro",
            "dataset": BENCH_DATASET,
            "scale": BENCH_SCALE,
            "kernel_backend": kernel_backend,
            "environment": thread_settings(),
            "engine_replay": engine,
            "variants": variants,
            "randomized": randomized,
        },
    )

    # Acceptance bars.  At the canonical full-scale workload the batched
    # engine must replay events >= 3x faster than the per-event loop, and
    # the randomised engine path must beat the seed's recorded per-event
    # throughput (same container family, same workload) by >= 3x.  On
    # scaled-down runs (CI quick mode / slow machines) absolute numbers and
    # amortisation behave differently, so relaxed live regression floors
    # apply instead.  The seed comparison is an absolute bar tied to the
    # reference container the seed numbers were recorded on; on different
    # hardware set REPRO_BENCH_SEED_BAR=0 to skip it (the relative floors
    # still apply).  Model-path batched-vs-sequential speedups at equal
    # config are informative only — exact per-event equivalence forbids
    # reordering the factor math.
    canonical = bench_scale() >= 1.0 and n_model_events == 1500
    enforce_seed_bar = os.environ.get("REPRO_BENCH_SEED_BAR", "1") != "0"
    assert engine["speedup"] >= (3.0 if canonical else 2.0), report
    for name, row in randomized.items():
        assert row["speedup_engine_vs_live_legacy_sequential"] >= 1.5, report
        if canonical and enforce_seed_bar:
            assert row["speedup_engine_vs_seed_per_event"] >= 3.0, report
