"""Micro-benchmarks: per-event update latency of every SliceNStitch variant.

These are conventional pytest-benchmark measurements (many rounds of a single
event update), complementing the experiment-level timings of Fig. 5 and
supporting Observation 2 (per-update cost ordering: SNS+_RND and SNS_RND stay
bounded by θ, SNS_VEC scales with the row degree, SNS_MAT touches the whole
window).

``test_batched_vs_sequential_throughput`` additionally compares the batched
event engine (``run_batched`` / ``update_batch``) against the per-event loop
— pure window replay and every variant, events/sec side by side — and writes
the numbers to ``results/BENCH_update_micro.json``.
"""

from __future__ import annotations

import itertools
import time

import pytest

from benchmarks._reporting import emit, emit_json
from benchmarks.conftest import scaled_events

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_dataset
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


#: Workload of every benchmark in this module (also recorded in the JSON).
BENCH_DATASET = "nyc_taxi"
BENCH_SCALE = 0.2


@pytest.fixture(scope="module")
def prepared_stream():
    """A mid-size NY-Taxi-like stream with an ALS initialisation."""
    stream, spec = generate_dataset(BENCH_DATASET, scale=BENCH_SCALE)
    config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=spec.rank, n_iterations=8, seed=0)
    return stream, spec, config, initial.decomposition


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_update_latency(benchmark, prepared_stream, name):
    """Median latency of a single factor-matrix update for one event."""
    stream, spec, config, initial = prepared_stream
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(
        name, SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0)
    )
    model.initialize(processor.window, initial)
    events = itertools.cycle(
        [delta for _, delta in processor.events(max_events=400)]
    )

    benchmark(lambda: model.update(next(events)))
    assert model.n_updates > 0


def _best_of(function, repetitions: int = 3) -> float:
    """Best wall-clock time of ``repetitions`` runs (noise-robust minimum)."""
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return min(times)


def test_batched_vs_sequential_throughput(prepared_stream):
    """Events/sec of the batched engine vs the per-event loop, side by side.

    Pure replay (no model) isolates the engine itself: scheduler drain,
    delta construction, and window maintenance.  This is where the batched
    engine's coalesced scatter-add pays off, and where the >= 3x acceptance
    bar of the batched-engine work is enforced.  The per-variant rows then
    show the end-to-end gain when the (exactly per-event-equivalent) factor
    updates dominate.
    """
    stream, spec, config, initial = prepared_stream
    n_events = scaled_events(20000, minimum=4000)
    n_model_events = scaled_events(1500, minimum=400)

    def run_sequential() -> None:
        ContinuousStreamProcessor(stream, config).run(max_events=n_events)

    def run_batched() -> None:
        ContinuousStreamProcessor(stream, config).run_batched(max_events=n_events)

    sequential_seconds = _best_of(run_sequential)
    batched_seconds = _best_of(run_batched)
    engine = {
        "n_events": n_events,
        "sequential_events_per_second": n_events / sequential_seconds,
        "batched_events_per_second": n_events / batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
    }

    variants = {}
    for name in sorted(ALGORITHMS):
        sns_config = SNSConfig(
            rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0
        )

        def run_model_sequential() -> None:
            processor = ContinuousStreamProcessor(stream, config)
            model = create_algorithm(name, sns_config)
            model.initialize(processor.window, initial)
            for _, delta in processor.events(max_events=n_model_events):
                model.update(delta)

        def run_model_batched() -> None:
            processor = ContinuousStreamProcessor(stream, config)
            model = create_algorithm(name, sns_config)
            model.initialize(processor.window, initial)
            processor.run_batched(model=model, max_events=n_model_events)

        model_sequential_seconds = _best_of(run_model_sequential)
        model_batched_seconds = _best_of(run_model_batched)
        variants[name] = {
            "n_events": n_model_events,
            "sequential_events_per_second": n_model_events
            / model_sequential_seconds,
            "batched_events_per_second": n_model_events / model_batched_seconds,
            "speedup": model_sequential_seconds / model_batched_seconds,
        }

    lines = [
        "batched event engine vs per-event loop (events/sec, best of 3)",
        "",
        f"{'workload':<16}{'sequential':>12}{'batched':>12}{'speedup':>9}",
        f"{'engine (replay)':<16}"
        f"{engine['sequential_events_per_second']:>12.0f}"
        f"{engine['batched_events_per_second']:>12.0f}"
        f"{engine['speedup']:>8.2f}x",
    ]
    for name, row in variants.items():
        lines.append(
            f"{name:<16}"
            f"{row['sequential_events_per_second']:>12.0f}"
            f"{row['batched_events_per_second']:>12.0f}"
            f"{row['speedup']:>8.2f}x"
        )
    report = "\n".join(lines)
    emit("BENCH_update_micro", report)
    emit_json(
        "BENCH_update_micro",
        {
            "benchmark": "bench_update_micro",
            "dataset": BENCH_DATASET,
            "scale": BENCH_SCALE,
            "engine_replay": engine,
            "variants": variants,
        },
    )

    # Acceptance bar: the batched engine replays events at least 3x faster
    # than the per-event loop.  Model-path speedups are informative only —
    # exact per-event equivalence forbids reordering the factor math.
    assert engine["speedup"] >= 3.0, report
