"""Benchmark-wide fixtures and sizing knobs.

The environment variable ``REPRO_BENCH_SCALE`` (default ``1.0``) scales every
benchmark's workload: values below 1 make the whole suite faster (useful on
slow machines or in CI), values above 1 stress larger streams.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Global multiplier applied to benchmark workload sizes."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def workload_scale() -> float:
    """Session fixture exposing the global benchmark scale."""
    return bench_scale()


def scaled_events(base: int, minimum: int = 200) -> int:
    """Scale an event count by the global benchmark scale."""
    return max(int(base * bench_scale()), minimum)
