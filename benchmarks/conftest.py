"""Benchmark-wide fixtures and sizing knobs.

The environment variable ``REPRO_BENCH_SCALE`` (default ``1.0``) scales every
benchmark's workload: values below 1 make the whole suite faster (useful on
slow machines or in CI), values above 1 stress larger streams.

Thread pinning: committed baseline numbers are only comparable when BLAS /
OpenMP worker pools are the same size on both sides, so this conftest pins
every recognised thread-count knob to 1 at import time (before numpy's BLAS
spins up its pool) unless the variable is already set in the environment or
``REPRO_BENCH_PIN_THREADS=0`` opts out.  :func:`thread_settings` reports
what actually applied so benchmark JSON can record it next to the numbers.
"""

from __future__ import annotations

import os

import pytest

#: Thread-count knobs recognised by the numeric stack used here: OpenMP
#: (and its vendor-prefixed variants read by BLAS builds), OpenBLAS, MKL,
#: numexpr, and numba's own pool.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "NUMBA_NUM_THREADS",
)


def _pin_threads() -> None:
    """Pin unset thread knobs to 1 (no-op under REPRO_BENCH_PIN_THREADS=0).

    ``setdefault`` semantics: an operator who exported an explicit count
    keeps it — the point is a deterministic default, not a straitjacket.
    """
    if os.environ.get("REPRO_BENCH_PIN_THREADS", "1") == "0":
        return
    for variable in _THREAD_ENV_VARS:
        os.environ.setdefault(variable, "1")


# Import time, not fixture time: BLAS pools size themselves when the shared
# library first loads, which happens as soon as any test module imports numpy.
_pin_threads()


def thread_settings() -> dict[str, object]:
    """The machine/thread context benchmark JSON should record."""
    return {
        "cpu_count": os.cpu_count(),
        "pinned": os.environ.get("REPRO_BENCH_PIN_THREADS", "1") != "0",
        "thread_env": {
            variable: os.environ.get(variable)
            for variable in _THREAD_ENV_VARS
        },
    }


def bench_scale() -> float:
    """Global multiplier applied to benchmark workload sizes."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def workload_scale() -> float:
    """Session fixture exposing the global benchmark scale."""
    return bench_scale()


def scaled_events(base: int, minimum: int = 200) -> int:
    """Scale an event count by the global benchmark scale."""
    return max(int(base * bench_scale()), minimum)
