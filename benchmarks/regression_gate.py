"""Performance regression gate over the committed ``BENCH_*.json`` baselines.

Compares a freshly generated results directory against the committed
baseline files and fails (exit code 1) when a watched metric regresses
beyond its tolerance.  Usage (what CI does)::

    cp -r benchmarks/results /tmp/bench-baseline   # committed numbers
    ... run the benchmarks, overwriting benchmarks/results ...
    python benchmarks/regression_gate.py \
        --baseline /tmp/bench-baseline --current benchmarks/results \
        --slack 2.5

Metric semantics
----------------
Each watched metric has a direction and a relative tolerance:

* ``higher``: fail when ``current < baseline * (1 - tolerance)``;
* ``lower``:  fail when ``current > baseline * (1 + tolerance)``.

``--slack`` multiplies every tolerance, absorbing machine-to-machine and
quick-mode (``REPRO_BENCH_SCALE < 1``) variance: committed baselines come
from one box, CI runners are another.  The gate is meant to catch *large*
regressions (an accidentally quadratic path, a dropped fast path), not to
police single-digit percentages across different hardware.

Files absent from either side are reported and skipped — a benchmark that
did not run must not turn the gate green or red by accident — unless
``--require`` names them, in which case absence fails the gate.

``--min-ratio FILE:dotted.path:VALUE`` (repeatable) additionally enforces an
*absolute* floor on a current-side metric, independent of the baseline and
of ``--slack``.  This is how CI pins acceptance bars that are relative by
construction (speedup ratios measured on the same box within one run), e.g.
the compiled-kernel leg requiring a >= 10x engine-vs-seed speedup::

    python benchmarks/regression_gate.py --current benchmarks/results \
        --min-ratio \
        BENCH_update_micro.json:randomized.sns_rnd.speedup_engine_vs_seed_per_event:10

A ``--min-ratio`` target that is missing (file or metric) fails the gate:
an explicitly demanded bar cannot be skipped.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any


@dataclasses.dataclass(frozen=True)
class Metric:
    """One watched number inside a benchmark JSON."""

    path: str  # dotted path into the JSON payload
    direction: str  # "higher" | "lower" is better
    tolerance: float  # base relative tolerance before --slack


#: Watched metrics per committed benchmark file.  Throughput numbers get a
#: wide base tolerance (hardware-bound); wall-clock latencies wider still.
WATCHED: dict[str, tuple[Metric, ...]] = {
    "BENCH_update_micro.json": (
        Metric("engine_replay.batched_events_per_second", "higher", 0.30),
        Metric("engine_replay.speedup", "higher", 0.25),
        Metric("variants.sns_vec.batched_events_per_second", "higher", 0.30),
        Metric(
            "randomized.sns_rnd_plus.vectorized_batched_events_per_second",
            "higher",
            0.30,
        ),
    ),
    "BENCH_checkpoint.json": (
        Metric("replay_events_per_second", "higher", 0.30),
        Metric("save_seconds", "lower", 0.50),
        Metric("load_seconds", "lower", 0.50),
    ),
    "BENCH_service.json": (
        Metric("ingest.events_per_second", "higher", 0.30),
        Metric("ingest.records_per_second", "higher", 0.30),
        Metric("durability.checkpoint_all_seconds", "lower", 0.50),
        Metric("durability.recover_all_seconds", "lower", 0.50),
    ),
    # Goodput under injected faults includes retry/backoff sleeps, so it is
    # noisier than clean-path throughput: widest base tolerance.
    "BENCH_chaos.json": (
        Metric("soak.goodput_records_per_second", "higher", 0.50),
    ),
    # The sharded throughput *ratios* are same-box by construction, so only
    # the exact-path throughput is speed-gated; the accuracy/speedup bars
    # live in REQUIRED_FLAGS below.
    "BENCH_sharded.json": (
        Metric("exact.sns_vec.events_per_second", "higher", 0.30),
    ),
    # BENCH_parallel.json is intentionally not speed-gated: its speedup is
    # a function of the runner's CPU count (the committed baseline ran on a
    # 1-CPU container).  Only its correctness flag is enforced.
}

#: Boolean flags that must be true on the current side whenever present.
REQUIRED_FLAGS: dict[str, tuple[str, ...]] = {
    "BENCH_parallel.json": ("results_identical",),
    "BENCH_sharded.json": ("deviation_within_bound", "meets_speedup_floor"),
    "BENCH_service.json": ("concurrent_equals_sequential",),
    "BENCH_chaos.json": ("converged_to_fault_free_state",),
}


def _lookup(payload: Any, dotted: str) -> Any:
    value = payload
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            raise KeyError(dotted)
        value = value[key]
    return value


def _load(path: Path) -> dict[str, Any] | None:
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise SystemExit(f"unreadable benchmark file {path}: {error}")
    if not isinstance(payload, dict):
        raise SystemExit(f"benchmark file {path} does not hold a JSON object")
    return payload


@dataclasses.dataclass(frozen=True)
class MinRatio:
    """An absolute current-side floor demanded on the command line."""

    filename: str
    path: str  # dotted path into the JSON payload
    floor: float


def parse_min_ratio(spec: str) -> MinRatio:
    """Parse one ``FILE:dotted.path:VALUE`` occurrence of ``--min-ratio``."""
    parts = spec.rsplit(":", 1)
    if len(parts) != 2 or ":" not in parts[0]:
        raise ValueError(f"expected FILE:dotted.path:VALUE, got {spec!r}")
    target, raw_floor = parts
    filename, path = target.split(":", 1)
    if not filename or not path:
        raise ValueError(f"expected FILE:dotted.path:VALUE, got {spec!r}")
    try:
        floor = float(raw_floor)
    except ValueError:
        raise ValueError(f"non-numeric floor {raw_floor!r} in {spec!r}")
    return MinRatio(filename=filename, path=path, floor=floor)


def check_min_ratios(
    current_dir: Path, min_ratios: list[MinRatio]
) -> list[str]:
    """Enforce the absolute floors; missing targets are failures."""
    failures: list[str] = []
    for demand in min_ratios:
        current = _load(current_dir / demand.filename)
        if current is None:
            failures.append(
                f"{demand.filename}: missing on the current side but a "
                f"--min-ratio demands {demand.path} >= {demand.floor:g}"
            )
            continue
        try:
            value = float(_lookup(current, demand.path))
        except KeyError:
            failures.append(
                f"{demand.filename}: no metric {demand.path!r} but a "
                f"--min-ratio demands it >= {demand.floor:g}"
            )
            continue
        ok = value >= demand.floor
        verdict = "ok  " if ok else "FAIL"
        print(
            f"  [{verdict}] {demand.filename}:{demand.path} "
            f"current={value:.6g} (absolute floor >= {demand.floor:g})"
        )
        if not ok:
            failures.append(
                f"{demand.filename}:{demand.path} below the absolute floor: "
                f"{value:.6g} < {demand.floor:g}"
            )
    return failures


def check(
    baseline_dir: Path, current_dir: Path, slack: float, required: set[str]
) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    for filename, metrics in WATCHED.items():
        baseline = _load(baseline_dir / filename)
        current = _load(current_dir / filename)
        if baseline is None or current is None:
            side = "baseline" if baseline is None else "current"
            message = f"{filename}: missing on the {side} side; skipped"
            if filename in required:
                failures.append(message.replace("skipped", "REQUIRED"))
            else:
                print(f"  [skip] {message}")
            continue
        for metric in metrics:
            # The two sides are deliberately looked up separately: a metric
            # the baseline never had is skipped (old baseline, new metric),
            # but a metric the baseline has and the fresh run dropped is a
            # failure — a silently vanished number must not turn the gate
            # green.
            try:
                base_value = float(_lookup(baseline, metric.path))
            except KeyError:
                print(
                    f"  [skip] {filename}: baseline has no metric "
                    f"{metric.path!r}; skipped"
                )
                continue
            try:
                curr_value = float(_lookup(current, metric.path))
            except KeyError:
                message = (
                    f"{filename}: current run is missing metric "
                    f"{metric.path!r} (baseline has {base_value:.6g})"
                )
                print(f"  [FAIL] {message}")
                failures.append(message)
                continue
            tolerance = metric.tolerance * slack
            if metric.direction == "higher":
                floor = base_value * (1.0 - tolerance)
                ok = curr_value >= floor
                bound = f">= {floor:.6g}"
            else:
                ceiling = base_value * (1.0 + tolerance)
                ok = curr_value <= ceiling
                bound = f"<= {ceiling:.6g}"
            verdict = "ok  " if ok else "FAIL"
            print(
                f"  [{verdict}] {filename}:{metric.path} "
                f"current={curr_value:.6g} baseline={base_value:.6g} ({bound})"
            )
            if not ok:
                failures.append(
                    f"{filename}:{metric.path} regressed: {curr_value:.6g} "
                    f"vs baseline {base_value:.6g} (allowed {bound})"
                )
    for filename, flags in REQUIRED_FLAGS.items():
        current = _load(current_dir / filename)
        if current is None:
            continue
        for flag in flags:
            try:
                value = _lookup(current, flag)
            except KeyError:
                continue
            if value is not True:
                failures.append(f"{filename}:{flag} is {value!r}, expected true")
            else:
                print(f"  [ok  ] {filename}:{flag} is true")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "results",
        help="directory holding the baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=1.0,
        help=(
            "multiplier on every metric tolerance (use > 1 on hardware that "
            "differs from the baseline box, or under REPRO_BENCH_SCALE quick "
            "mode)"
        ),
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FILE",
        help="benchmark file that must exist on both sides (repeatable)",
    )
    parser.add_argument(
        "--min-ratio",
        action="append",
        default=[],
        metavar="FILE:dotted.path:VALUE",
        help=(
            "absolute floor on a current-side metric, checked without "
            "baseline or slack; a missing file/metric fails the gate "
            "(repeatable)"
        ),
    )
    args = parser.parse_args(argv)
    if args.slack <= 0:
        parser.error("--slack must be positive")
    try:
        min_ratios = [parse_min_ratio(spec) for spec in args.min_ratio]
    except ValueError as error:
        parser.error(f"--min-ratio: {error}")
    print(
        f"regression gate: baseline={args.baseline} current={args.current} "
        f"slack={args.slack}"
    )
    failures = check(args.baseline, args.current, args.slack, set(args.require))
    failures += check_min_ratios(args.current, min_ratios)
    if failures:
        print(f"\ngate FAILED ({len(failures)} regression(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
