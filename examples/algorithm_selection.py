"""Practitioner's guide in action: choosing a SliceNStitch variant (Section VI-F).

The paper recommends picking, among SNS_MAT, SNS+_VEC, and SNS+_RND, the most
accurate variant that fits your per-update latency budget, and warns against
the unclipped variants.  This example runs all five variants (plus the ALS
reference) on the same crime-report-like stream and prints the speed/fitness
trade-off so the recommendation can be checked on your own data.

Run with::

    python examples/algorithm_selection.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_experiment

METHODS = ("sns_mat", "sns_vec", "sns_rnd", "sns_vec_plus", "sns_rnd_plus", "als")

#: Per-update latency budgets (microseconds) to illustrate the selection rule.
BUDGETS_MICROSECONDS = (300.0, 1000.0, 5000.0)


def main() -> None:
    settings = ExperimentSettings(
        dataset="chicago_crime",
        scale=0.15,
        max_events=2_500,
        n_checkpoints=10,
        als_iterations=10,
    )
    experiment = run_experiment(settings, METHODS)

    rows = []
    for name in METHODS:
        outcome = experiment.methods[name]
        rows.append(
            (
                outcome.label,
                outcome.kind,
                outcome.mean_update_microseconds,
                experiment.average_relative_fitness(name),
            )
        )
    print(
        format_table(
            ("method", "kind", "update time [us]", "avg relative fitness"),
            rows,
            title="Speed / fitness trade-off (Chicago-Crime-like stream)",
        )
    )

    # Apply the paper's selection rule for a few latency budgets: among the
    # *stable* variants, pick the most accurate one within budget.
    stable = ("sns_mat", "sns_vec_plus", "sns_rnd_plus")
    print("\npractitioner's guide (Section VI-F):")
    for budget in BUDGETS_MICROSECONDS:
        affordable = [
            name
            for name in stable
            if experiment.methods[name].mean_update_microseconds <= budget
        ]
        if affordable:
            best = max(affordable, key=experiment.average_relative_fitness)
            label = experiment.methods[best].label
            print(f"  budget {budget:7.0f} us/update -> use {label}")
        else:
            print(f"  budget {budget:7.0f} us/update -> no stable variant fits; "
                  "lower the rank R or the sampling threshold theta")


if __name__ == "__main__":
    main()
