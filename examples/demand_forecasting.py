"""Short-horizon demand forecasting from the streaming CP decomposition.

CP decomposition is a standard preprocessing step for downstream machine
learning (Section VII-C of the paper): the factor matrices summarise the
stream, and the time-mode factor carries the temporal dynamics.  This example
uses the continuously updated factors of SNS+_RND on a bike-sharing-like
stream to forecast the demand of the *next* tensor unit for every
(source, destination) pair:

* at each period boundary, the next unit's time-factor row is extrapolated
  from the last rows of the time factor (an exponentially weighted average),
* the predicted unit is compared against what actually arrives one period
  later, and against a naive "repeat the last unit" baseline.

Run with::

    python examples/demand_forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContinuousStreamProcessor,
    SNSConfig,
    WindowConfig,
    create_algorithm,
    decompose,
)
from repro.data import generate_dataset

#: Exponential weights (newest first) used to extrapolate the next time row.
EXTRAPOLATION_WEIGHTS = np.array([0.6, 0.25, 0.15])


def forecast_next_unit(model) -> np.ndarray:
    """Predict the next tensor unit as a dense (N1, N2) matrix."""
    time_factor = model.factors[model.time_mode]
    recent = time_factor[-len(EXTRAPOLATION_WEIGHTS):, :][::-1]
    next_row = EXTRAPOLATION_WEIGHTS[: recent.shape[0]] @ recent
    categorical = model.factors[: model.time_mode]
    return np.einsum("ir,jr,r->ij", categorical[0], categorical[1], next_row)


def actual_unit(window, unit_index: int) -> np.ndarray:
    """Materialise one tensor unit of the window as a dense matrix."""
    dense = np.zeros(window.shape[:-1])
    for coordinate, value in window.unit_entries(unit_index):
        dense[coordinate[:-1]] += value
    return dense


def main() -> None:
    stream, spec = generate_dataset("divvy_bikes", scale=0.3)
    window_config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, window_config)
    initial = decompose(processor.window.tensor, rank=spec.rank, n_iterations=10, seed=0)
    model = create_algorithm(
        "sns_rnd_plus",
        SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, nonnegative=True),
    )
    model.initialize(processor.window, initial.decomposition)

    period = window_config.period
    newest = window_config.window_length - 1
    next_boundary = processor.start_time + period
    pending_forecast: np.ndarray | None = None
    naive_forecast: np.ndarray | None = None
    forecast_errors: list[float] = []
    naive_errors: list[float] = []

    print("boundary | forecast RMSE | naive RMSE (repeat last unit)")
    for event, delta in processor.events(max_events=20_000):
        model.update(delta)
        if event.time < next_boundary:
            continue
        # A period just completed: score the forecast made one period ago,
        # then issue the forecast for the upcoming period.
        truth = actual_unit(processor.window, newest)
        if pending_forecast is not None and naive_forecast is not None:
            forecast_rmse = float(np.sqrt(np.mean((pending_forecast - truth) ** 2)))
            naive_rmse = float(np.sqrt(np.mean((naive_forecast - truth) ** 2)))
            forecast_errors.append(forecast_rmse)
            naive_errors.append(naive_rmse)
            print(
                f"{next_boundary:8.0f} | {forecast_rmse:13.4f} | {naive_rmse:10.4f}"
            )
        pending_forecast = forecast_next_unit(model)
        naive_forecast = truth
        next_boundary += period

    if forecast_errors:
        print(
            f"\nmean RMSE — factor forecast: {np.mean(forecast_errors):.4f}, "
            f"naive repeat: {np.mean(naive_errors):.4f}"
        )
        print(
            "the factor-based forecast smooths the noisy per-pair counts using "
            "the low-rank structure maintained continuously by SliceNStitch."
        )


if __name__ == "__main__":
    main()
