"""Why not just use a finer time granularity?  (Fig. 1 of the paper.)

The obvious alternative to continuous CP decomposition is shrinking the
period of a conventional tensor so updates happen more often.  This example
reproduces the paper's motivating comparison on a taxi-like stream: as the
period shrinks, the fitness of conventional CPD collapses and its parameter
count explodes, while continuous CPD (SNS_RND at the coarse period) keeps the
coarse model size, comparable fitness, and microsecond updates.

Run with::

    python examples/granularity_tradeoff.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentSettings
from repro.experiments.granularity import format_granularity, run_granularity


def main() -> None:
    settings = ExperimentSettings(
        dataset="nyc_taxi",
        scale=0.2,
        max_events=2_000,
        n_checkpoints=10,
        als_iterations=8,
    )
    result = run_granularity(settings, divisors=(60, 20, 10, 4, 2, 1))
    print(format_granularity(result))

    conventional = result.conventional()
    continuous = result.continuous()
    finest, coarsest = conventional[0], conventional[-1]
    print()
    print(
        f"shrinking the period {coarsest.update_interval / finest.update_interval:.0f}x "
        f"costs {finest.n_parameters / coarsest.n_parameters:.1f}x more parameters "
        f"and drops fitness from {coarsest.fitness:.3f} to {finest.fitness:.3f}."
    )
    print(
        f"continuous CPD keeps {continuous.n_parameters} parameters "
        f"(same as the coarse model), reaches fitness {continuous.fitness:.3f}, "
        f"and updates in {continuous.update_microseconds:.0f} microseconds per event."
    )


if __name__ == "__main__":
    main()
