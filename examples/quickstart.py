"""Quickstart: continuous CP decomposition of a synthetic traffic stream.

This example walks through the full SliceNStitch pipeline on a synthetic
source x destination traffic stream:

1. generate a multi-aspect data stream,
2. build the continuous tensor window (Definition 4 / Algorithm 1),
3. initialise the factor matrices with batch ALS on the initial window,
4. stream events through SNS+_RND (the paper's recommended variant),
5. report fitness and per-update latency.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    ContinuousStreamProcessor,
    SNSConfig,
    WindowConfig,
    create_algorithm,
    decompose,
)
from repro.data import generate_synthetic_stream


def main() -> None:
    # 1. A synthetic stream of (source, destination, count, timestamp) tuples.
    stream = generate_synthetic_stream(
        mode_sizes=(50, 50),
        rank=6,
        n_records=20_000,
        period=300.0,
        records_per_period=500.0,
        seed=42,
        mode_names=("source", "destination"),
    )
    print(f"stream: {len(stream)} records over {stream.duration:.0f} time units")

    # 2. The continuous tensor window: W = 8 units of T = 300 time units each.
    window_config = WindowConfig(mode_sizes=(50, 50), window_length=8, period=300.0)
    processor = ContinuousStreamProcessor(stream, window_config)
    print(
        f"initial window: shape {processor.window.shape}, "
        f"{processor.window.nnz} non-zeros"
    )

    # 3. Batch ALS initialisation on the initial window.
    initial = decompose(processor.window.tensor, rank=10, n_iterations=15, seed=0)
    print(f"ALS initialisation fitness: {initial.fitness:.3f}")

    # 4. Stream events through SNS+_RND, updating the factors on every event.
    model = create_algorithm("sns_rnd_plus", SNSConfig(rank=10, theta=20, eta=1000.0))
    model.initialize(processor.window, initial.decomposition)

    n_events = 10_000
    started = time.perf_counter()
    for position, (event, delta) in enumerate(processor.events(max_events=n_events)):
        model.update(delta)
        if (position + 1) % 2_000 == 0:
            print(
                f"  processed {position + 1:>6} events "
                f"(t = {event.time:8.0f}), fitness = {model.fitness():.3f}"
            )
    elapsed = time.perf_counter() - started

    # 5. Summary.
    print(f"final fitness: {model.fitness():.3f}")
    print(f"mean update latency: {1e6 * elapsed / n_events:.1f} microseconds/event")
    print(f"model parameters: {model.n_parameters}")


if __name__ == "__main__":
    main()
