"""Real-time anomaly detection on a taxi-like traffic stream (Section VI-G).

The scenario the paper motivates: a city traffic operator wants to notice a
suspicious burst of trips between two zones the moment it happens, not at the
end of the hour.  This example:

1. generates a NY-Taxi-like synthetic stream,
2. injects 20 abnormally large trips (5x the largest normal trip count),
3. streams the corrupted data through SNS+_RND, scoring every arriving trip
   by the Z-score of its reconstruction error *before* the model adapts,
4. reports which injected anomalies landed in the top-20 scores and how long
   detection took, and contrasts it with a once-per-period detector.

Run with::

    python examples/traffic_anomaly_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContinuousStreamProcessor,
    EventKind,
    SNSConfig,
    WindowConfig,
    create_algorithm,
    decompose,
)
from repro.anomaly import ZScoreDetector, inject_anomalies
from repro.data import generate_dataset


def main() -> None:
    # 1. Clean synthetic stream shaped like the New York Taxi dataset.
    clean_stream, spec = generate_dataset("nyc_taxi", scale=0.2)
    window_config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    start_time = clean_stream.start_time + window_config.span
    replay_end = start_time + 4 * window_config.period

    # 2. Inject 20 anomalies of 5x the largest normal value.
    stream, anomalies = inject_anomalies(
        clean_stream,
        n_anomalies=20,
        magnitude_factor=5.0,
        start_time=start_time,
        end_time=replay_end - window_config.period,
        rng=np.random.default_rng(7),
    )
    print(f"injected {len(anomalies)} anomalies of value {anomalies[0].value:.0f}")

    # 3. Initialise and stream through SNS+_RND, scoring arrivals on the fly.
    processor = ContinuousStreamProcessor(stream, window_config, start_time=start_time)
    initial = decompose(processor.window.tensor, rank=spec.rank, n_iterations=10, seed=0)
    model = create_algorithm(
        "sns_rnd_plus", SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta)
    )
    model.initialize(processor.window, initial.decomposition)

    detector = ZScoreDetector(warmup=50)
    for event, delta in processor.events(end_time=replay_end):
        if event.kind is EventKind.ARRIVAL:
            coordinate = delta.entries[0][0]
            observed = processor.window.tensor.get(coordinate)
            predicted = model.reconstruction_at(coordinate)
            detector.observe(
                coordinate, observed - predicted,
                event_time=event.record.time, detection_time=event.time,
            )
        model.update(delta)

    # 4. Evaluate the top-20 scores against the injected ground truth.
    truth_by_indices = {anomaly.indices: anomaly for anomaly in anomalies}
    hits = 0
    print("\ntop-20 anomaly scores (z-score, source, destination, time):")
    for score in detector.top_k(20):
        categorical = score.coordinate[:-1]
        anomaly = truth_by_indices.get(categorical)
        is_hit = anomaly is not None and abs(anomaly.time - score.event_time) < 1e-6
        hits += int(is_hit)
        marker = "ANOMALY" if is_hit else "       "
        print(
            f"  z = {score.z_score:7.1f}  ({categorical[0]:3d} -> {categorical[1]:3d})"
            f"  t = {score.event_time:8.0f}  {marker}"
        )
    print(f"\nprecision @ top-20: {hits / 20:.2f}")
    print(
        "detection delay: every flagged arrival was scored the instant it "
        "occurred; a once-per-period detector would have waited up to "
        f"{window_config.period:.0f} time units for the next boundary."
    )


if __name__ == "__main__":
    main()
