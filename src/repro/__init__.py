"""SliceNStitch: continuous CP decomposition of sparse tensor streams.

A from-scratch reproduction of Kwon et al., "SliceNStitch: Continuous CP
Decomposition of Sparse Tensor Streams" (ICDE 2021).

Quickstart
----------
>>> import numpy as np
>>> from repro import (
...     SNSConfig, WindowConfig, ContinuousStreamProcessor,
...     create_algorithm, decompose,
... )
>>> from repro.data import generate_synthetic_stream
>>> stream = generate_synthetic_stream(
...     mode_sizes=(20, 20), rank=3, n_records=2000, period=60.0, seed=0)
>>> config = WindowConfig(mode_sizes=(20, 20), window_length=5, period=60.0)
>>> processor = ContinuousStreamProcessor(stream, config)
>>> start = decompose(processor.window.tensor, rank=5, n_iterations=10)
>>> model = create_algorithm("sns_rnd_plus", SNSConfig(rank=5))
>>> model.initialize(processor.window, start.decomposition)
>>> for event, delta in processor.events(max_events=500):
...     model.update(delta)
>>> round(model.fitness(), 3)  # doctest: +SKIP
0.9
"""

from repro.version import __version__
from repro.exceptions import (
    ConfigurationError,
    DataGenerationError,
    IndexOutOfBoundsError,
    NotFittedError,
    RankError,
    ReproError,
    ShapeError,
    StreamOrderError,
    UnknownAlgorithmError,
)
from repro.tensor import KruskalTensor, SparseTensor
from repro.stream import (
    ContinuousStreamProcessor,
    Delta,
    EventKind,
    MultiAspectStream,
    StreamRecord,
    TensorWindow,
    WindowConfig,
)
from repro.als import ALS, ALSConfig, ALSResult, decompose
from repro.core import (
    ALGORITHMS,
    ContinuousCPD,
    SNSConfig,
    SNSMat,
    SNSRnd,
    SNSRndPlus,
    SNSVec,
    SNSVecPlus,
    available_algorithms,
    create_algorithm,
)

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ShapeError",
    "IndexOutOfBoundsError",
    "RankError",
    "StreamOrderError",
    "ConfigurationError",
    "NotFittedError",
    "UnknownAlgorithmError",
    "DataGenerationError",
    # tensors
    "SparseTensor",
    "KruskalTensor",
    # streams
    "MultiAspectStream",
    "StreamRecord",
    "EventKind",
    "Delta",
    "TensorWindow",
    "WindowConfig",
    "ContinuousStreamProcessor",
    # batch ALS
    "ALS",
    "ALSConfig",
    "ALSResult",
    "decompose",
    # SliceNStitch
    "ContinuousCPD",
    "SNSConfig",
    "SNSMat",
    "SNSVec",
    "SNSRnd",
    "SNSVecPlus",
    "SNSRndPlus",
    "ALGORITHMS",
    "available_algorithms",
    "create_algorithm",
]
