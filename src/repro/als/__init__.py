"""Batch CP decomposition via Alternating Least Squares (Section II).

ALS plays three roles in the reproduction, as it does in the paper:

* the standard offline algorithm against which *fitness* is normalised
  ("relative fitness", Section VI-A),
* a conventional-CPD baseline evaluated once per period,
* the initialiser of every streaming algorithm (Section VI-A: "we initialized
  factor matrices using ALS on the initial tensor window").
"""

from repro.als.als import ALS, ALSConfig, ALSResult, decompose
from repro.als.initialization import initialize_factors
from repro.als.mttkrp import mttkrp

__all__ = [
    "ALS",
    "ALSConfig",
    "ALSResult",
    "decompose",
    "initialize_factors",
    "mttkrp",
]
