"""Alternating Least Squares for CP decomposition of sparse tensors (Eq. 4).

The implementation follows the textbook sparse-ALS recipe: in every sweep,
for every mode ``n``,

    A(n)  <-  MTTKRP(X, {A}, n)  @  pinv( *_{m != n} A(m)'A(m) )

with optional Tikhonov regularisation for numerical safety, and a fitness
trace for convergence monitoring.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.als.initialization import initialize_factors
from repro.als.mttkrp import mttkrp
from repro.exceptions import ConfigurationError, RankError
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.products import gram, hadamard_all
from repro.tensor.sparse import SparseTensor


@dataclasses.dataclass(frozen=True, slots=True)
class ALSConfig:
    """Configuration of a batch ALS run.

    Attributes
    ----------
    rank:
        CP rank ``R``.
    n_iterations:
        Maximum number of ALS sweeps.
    tolerance:
        Stop early when the fitness improvement between sweeps drops below
        this value.  ``0`` disables early stopping.
    regularization:
        Tikhonov term added to the Gram-product diagonal before inversion.
    init:
        Initialisation strategy, ``"random"`` or ``"svd"``.
    seed:
        Seed of the random generator used by the initialiser.
    """

    rank: int
    n_iterations: int = 20
    tolerance: float = 1e-6
    regularization: float = 1e-12
    init: str = "random"
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise RankError(f"rank must be positive, got {self.rank}")
        if self.n_iterations <= 0:
            raise ConfigurationError(
                f"n_iterations must be positive, got {self.n_iterations}"
            )
        if self.tolerance < 0:
            raise ConfigurationError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.regularization < 0:
            raise ConfigurationError(
                f"regularization must be >= 0, got {self.regularization}"
            )


@dataclasses.dataclass(slots=True)
class ALSResult:
    """Output of a batch ALS run."""

    decomposition: KruskalTensor
    fitness_history: list[float]
    n_iterations: int
    converged: bool

    @property
    def fitness(self) -> float:
        """Final fitness value."""
        return self.fitness_history[-1] if self.fitness_history else float("nan")


class ALS:
    """Batch CP decomposition of a sparse tensor by alternating least squares."""

    def __init__(self, config: ALSConfig) -> None:
        self._config = config

    @property
    def config(self) -> ALSConfig:
        """The run configuration."""
        return self._config

    def fit(
        self,
        tensor: SparseTensor,
        initial_factors: list[np.ndarray] | None = None,
    ) -> ALSResult:
        """Decompose ``tensor`` and return the factorization plus diagnostics."""
        config = self._config
        rng = np.random.default_rng(config.seed)
        if initial_factors is None:
            factors = initialize_factors(tensor, config.rank, config.init, rng)
        else:
            factors = [np.array(f, dtype=np.float64, copy=True) for f in initial_factors]
            self._check_initial(tensor, factors)
        grams = [gram(factor) for factor in factors]
        fitness_history: list[float] = []
        converged = False
        iterations_done = 0
        for iteration in range(config.n_iterations):
            for mode in range(tensor.order):
                factors[mode] = self._solve_mode(tensor, factors, grams, mode)
                grams[mode] = gram(factors[mode])
            decomposition = KruskalTensor(factors)
            fitness_history.append(decomposition.fitness(tensor))
            iterations_done = iteration + 1
            if (
                config.tolerance > 0
                and len(fitness_history) >= 2
                and abs(fitness_history[-1] - fitness_history[-2]) < config.tolerance
            ):
                converged = True
                break
        return ALSResult(
            decomposition=KruskalTensor(factors),
            fitness_history=fitness_history,
            n_iterations=iterations_done,
            converged=converged,
        )

    def _solve_mode(
        self,
        tensor: SparseTensor,
        factors: list[np.ndarray],
        grams: list[np.ndarray],
        mode: int,
    ) -> np.ndarray:
        """One least-squares update of factor matrix ``mode`` (Eq. 4)."""
        numerator = mttkrp(tensor, factors, mode)
        hadamard_grams = hadamard_all(
            [g for other_mode, g in enumerate(grams) if other_mode != mode]
        )
        if self._config.regularization > 0:
            hadamard_grams = hadamard_grams + self._config.regularization * np.eye(
                self._config.rank
            )
        return numerator @ np.linalg.pinv(hadamard_grams)

    def _check_initial(
        self, tensor: SparseTensor, factors: list[np.ndarray]
    ) -> None:
        if len(factors) != tensor.order:
            raise ConfigurationError(
                f"{len(factors)} initial factors for an order-{tensor.order} tensor"
            )
        for mode, factor in enumerate(factors):
            expected = (tensor.shape[mode], self._config.rank)
            if factor.shape != expected:
                raise ConfigurationError(
                    f"initial factor {mode} has shape {factor.shape}, expected {expected}"
                )


def decompose(
    tensor: SparseTensor,
    rank: int,
    n_iterations: int = 20,
    tolerance: float = 1e-6,
    seed: int | None = 0,
    init: str = "random",
) -> ALSResult:
    """One-call convenience wrapper around :class:`ALS`."""
    config = ALSConfig(
        rank=rank,
        n_iterations=n_iterations,
        tolerance=tolerance,
        seed=seed,
        init=init,
    )
    return ALS(config).fit(tensor)
