"""Factor-matrix initialisation strategies for ALS and the streaming methods."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse.linalg

from repro.exceptions import ConfigurationError, RankError
from repro.tensor.matricization import unfold_sparse
from repro.tensor.sparse import SparseTensor

#: Supported initialisation strategy names.
STRATEGIES = ("random", "svd")


def initialize_factors(
    tensor: SparseTensor,
    rank: int,
    strategy: str = "random",
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Return initial factor matrices for a CP decomposition of ``tensor``.

    Parameters
    ----------
    tensor:
        The sparse tensor to be decomposed.
    rank:
        CP rank ``R``.
    strategy:
        ``"random"`` — i.i.d. uniform entries in ``[0, 1)`` (the paper's
        setting for non-negative count data);
        ``"svd"`` — leading left singular vectors of each mode unfolding,
        padded with random columns when the unfolding has fewer than ``R``
        informative singular vectors.
    rng:
        Random generator used for random entries and padding.
    """
    if rank <= 0:
        raise RankError(f"rank must be positive, got {rank}")
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown initialisation strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    rng = np.random.default_rng() if rng is None else rng
    if strategy == "random":
        return [rng.random((length, rank)) for length in tensor.shape]
    return _svd_factors(tensor, rank, rng)


def _svd_factors(
    tensor: SparseTensor, rank: int, rng: np.random.Generator
) -> list[np.ndarray]:
    factors: list[np.ndarray] = []
    for mode, length in enumerate(tensor.shape):
        unfolding = unfold_sparse(tensor, mode)
        # svds needs 1 <= k < min(shape); fall back to random columns otherwise.
        max_k = min(unfolding.shape) - 1
        k = min(rank, max_k) if max_k >= 1 else 0
        factor = rng.random((length, rank))
        if k >= 1 and unfolding.nnz > 0:
            try:
                u, _, _ = scipy.sparse.linalg.svds(unfolding.asfptype(), k=k)
                factor[:, :k] = np.abs(u[:, ::-1])
            except (scipy.sparse.linalg.ArpackError, ValueError):
                pass  # keep the random columns; ALS will recover
        factors.append(factor)
    return factors


def pad_factor(
    factor: np.ndarray, n_rows: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Grow ``factor`` to ``n_rows`` rows by appending small random rows.

    Streaming baselines that append time-mode rows use this helper.
    """
    factor = np.asarray(factor, dtype=np.float64)
    if factor.shape[0] >= n_rows:
        return factor
    rng = np.random.default_rng() if rng is None else rng
    extra = 1e-3 * rng.random((n_rows - factor.shape[0], factor.shape[1]))
    return np.vstack([factor, extra])


def copy_factors(factors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Deep-copy a list of factor matrices."""
    return [np.array(factor, dtype=np.float64, copy=True) for factor in factors]
