"""Matricized-tensor times Khatri-Rao product (MTTKRP) for sparse tensors.

The MTTKRP ``X_(m) (KR_{n != m} A(n))`` is the workhorse of ALS (Eq. 4) and of
the SliceNStitch row updates (Eqs. 9 and 12).  For a sparse tensor it reduces
to a sum over non-zeros of the entry value times the Hadamard product of the
other modes' factor rows.

The array math itself lives in :mod:`repro.kernels` — these functions build
the COO / slice arrays and dispatch to a kernel backend.  Every function
takes an optional ``kernels`` argument (a
:class:`~repro.kernels.KernelBackend`); the model classes pass their
configured backend, and the default is the numpy reference, which performs
bit-for-bit the operations these functions historically inlined.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.api import KernelBackend
from repro.kernels.registry import numpy_backend
from repro.tensor.sparse import SparseTensor


def mttkrp(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    kernels: KernelBackend | None = None,
) -> np.ndarray:
    """Return ``X_(mode) (KR_{n != mode} A(n))`` as an ``(N_mode, R)`` array."""
    if len(factors) != tensor.order:
        raise ShapeError(
            f"{len(factors)} factor matrices for an order-{tensor.order} tensor"
        )
    if not 0 <= mode < tensor.order:
        raise ShapeError(f"mode {mode} out of range for order {tensor.order}")
    indices, values = tensor.to_coo_arrays()
    return mttkrp_coo(
        indices, values, factors, mode, tensor.shape[mode], kernels=kernels
    )


def mttkrp_coo(
    indices: np.ndarray,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
    mode_size: int,
    kernels: KernelBackend | None = None,
) -> np.ndarray:
    """MTTKRP over prebuilt COO arrays (``(nnz, M)`` indices, ``(nnz,)`` values).

    Identical — operation for operation — to :func:`mttkrp` on the tensor
    those arrays came from.  Callers that solve several modes against the
    same tensor state (one ALS sweep, or SNS_MAT's per-event sweep inside
    ``update_batch``) build the arrays once and amortise the
    ``SparseTensor.to_coo_arrays`` conversion across modes.
    """
    if kernels is None:
        kernels = numpy_backend()
    return kernels.mttkrp_coo(indices, values, factors, mode, mode_size)


def mttkrp_row(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    index: int,
    extra_entries: Sequence[tuple[tuple[int, ...], float]] = (),
    kernels: KernelBackend | None = None,
) -> np.ndarray:
    """Single row ``X_(mode)(index, :) (KR_{n != mode} A(n))`` of the MTTKRP.

    Only the non-zeros whose ``mode``-th coordinate equals ``index`` are
    visited — this is the ``Omega(m)_{i_m}`` sum of Eqs. (12) and (21).
    ``extra_entries`` lets callers fold in the (at most two) entries of a
    delta ``ΔX`` that may not be stored in ``tensor`` yet; entries whose
    ``mode``-th coordinate differs from ``index`` are ignored.

    Both paths use the slice arrays the tensor builds in one pass; the
    delta entries are appended after the stored ones — the same entries in
    the same order the historical iterator path visited, so results are
    bit-identical.
    """
    if kernels is None:
        kernels = numpy_backend()
    index_array, value_array = tensor.mode_slice_arrays(mode, index)
    if extra_entries:
        kept = [
            (coordinate, value)
            for coordinate, value in extra_entries
            if coordinate[mode] == index
        ]
        if kept:
            extra_indices = np.array(
                [coordinate for coordinate, _value in kept], dtype=np.int64
            )
            extra_values = np.array(
                [value for _coordinate, value in kept], dtype=np.float64
            )
            if value_array.size:
                index_array = np.concatenate((index_array, extra_indices), axis=0)
                value_array = np.concatenate((value_array, extra_values))
            else:
                index_array, value_array = extra_indices, extra_values
    return kernels.mttkrp_rows(index_array, value_array, factors, mode)


def _other_rows_product(
    factors: Sequence[np.ndarray], mode: int, coordinate: Sequence[int]
) -> np.ndarray:
    """Hadamard product of the other modes' factor rows at ``coordinate``."""
    rank = factors[0].shape[1]
    product = np.ones(rank, dtype=np.float64)
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[coordinate[other_mode], :]
    return product
