"""Matricized-tensor times Khatri-Rao product (MTTKRP) for sparse tensors.

The MTTKRP ``X_(m) (KR_{n != m} A(n))`` is the workhorse of ALS (Eq. 4) and of
the SliceNStitch row updates (Eqs. 9 and 12).  For a sparse tensor it reduces
to a sum over non-zeros of the entry value times the Hadamard product of the
other modes' factor rows.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor.sparse import SparseTensor


def mttkrp(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Return ``X_(mode) (KR_{n != mode} A(n))`` as an ``(N_mode, R)`` array."""
    if len(factors) != tensor.order:
        raise ShapeError(
            f"{len(factors)} factor matrices for an order-{tensor.order} tensor"
        )
    if not 0 <= mode < tensor.order:
        raise ShapeError(f"mode {mode} out of range for order {tensor.order}")
    indices, values = tensor.to_coo_arrays()
    return mttkrp_coo(indices, values, factors, mode, tensor.shape[mode])


def mttkrp_coo(
    indices: np.ndarray,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
    mode_size: int,
) -> np.ndarray:
    """MTTKRP over prebuilt COO arrays (``(nnz, M)`` indices, ``(nnz,)`` values).

    Identical — operation for operation — to :func:`mttkrp` on the tensor
    those arrays came from.  Callers that solve several modes against the
    same tensor state (one ALS sweep, or SNS_MAT's per-event sweep inside
    ``update_batch``) build the arrays once and amortise the
    ``SparseTensor.to_coo_arrays`` conversion across modes.
    """
    rank = factors[0].shape[1]
    result = np.zeros((mode_size, rank), dtype=np.float64)
    if values.size == 0:
        return result
    product = np.broadcast_to(values[:, None], (values.size, rank)).copy()
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[indices[:, other_mode], :]
    np.add.at(result, indices[:, mode], product)
    return result


def mttkrp_row(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    index: int,
    extra_entries: Sequence[tuple[tuple[int, ...], float]] = (),
) -> np.ndarray:
    """Single row ``X_(mode)(index, :) (KR_{n != mode} A(n))`` of the MTTKRP.

    Only the non-zeros whose ``mode``-th coordinate equals ``index`` are
    visited — this is the ``Omega(m)_{i_m}`` sum of Eqs. (12) and (21).
    ``extra_entries`` lets callers fold in the (at most two) entries of a
    delta ``ΔX`` that may not be stored in ``tensor`` yet; entries whose
    ``mode``-th coordinate differs from ``index`` are ignored.
    """
    rank = factors[0].shape[1]
    if not extra_entries:
        # Hot path (the SNS row updates): the slice arrays are built by the
        # tensor in one pass — same entries in the same order as the
        # iterator path below, so results are bit-identical.
        index_array, value_array = tensor.mode_slice_arrays(mode, index)
        if value_array.size == 0:
            return np.zeros(rank, dtype=np.float64)
    else:
        coordinates: list[tuple[int, ...]] = []
        values: list[float] = []
        for coordinate, value in tensor.mode_slice(mode, index):
            coordinates.append(coordinate)
            values.append(value)
        for coordinate, value in extra_entries:
            if coordinate[mode] != index:
                continue
            coordinates.append(tuple(coordinate))
            values.append(value)
        if not coordinates:
            return np.zeros(rank, dtype=np.float64)
        index_array = np.asarray(coordinates, dtype=np.int64)
        value_array = np.asarray(values, dtype=np.float64)
    product = np.broadcast_to(
        value_array[:, None], (value_array.size, rank)
    ).copy()
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[index_array[:, other_mode], :]
    return product.sum(axis=0)


def _other_rows_product(
    factors: Sequence[np.ndarray], mode: int, coordinate: Sequence[int]
) -> np.ndarray:
    """Hadamard product of the other modes' factor rows at ``coordinate``."""
    rank = factors[0].shape[1]
    product = np.ones(rank, dtype=np.float64)
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[coordinate[other_mode], :]
    return product
