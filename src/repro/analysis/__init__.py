"""Static analysis: AST-based invariant checkers for the codebase.

The package is both a library (the checker framework plus the project's
five invariant checkers) and a tool (``repro lint`` /
``python -m repro.analysis``).  See the README's "Static analysis"
section for the rule catalog and the suppression workflow.
"""

from repro.analysis.findings import Finding, Rule
from repro.analysis.framework import (
    Checker,
    LintResult,
    all_rules,
    run_checkers,
)
from repro.analysis.source import Project, SourceFile

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "run_checkers",
]
