"""Committed-baseline support: accept known findings, fail on new ones.

A baseline is a JSON file of finding keys.  ``repro lint --baseline FILE``
subtracts the recorded findings from the run; only *new* findings fail the
lint.  ``--update-baseline`` rewrites the file from the current run.

Keys are ``(rule, module, message)`` — the dotted module name instead of a
filesystem path (stable across invocation directories) and no line number
(stable across unrelated edits above the finding).

The shipped baseline is empty by design: every finding on the tree is
either fixed or carries an inline ``# repro: allow[...]`` justification.
The baseline mechanism exists for adopting new rules incrementally without
blocking the gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding
from repro.exceptions import ConfigurationError

_FORMAT = "repro-lint-baseline"
_VERSION = 1

BaselineKey = tuple[str, str, str]


def finding_key(finding: Finding) -> BaselineKey:
    return (finding.rule, finding.module, finding.message)


def load_baseline(path: str | Path) -> set[BaselineKey]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"cannot read lint baseline {path}: {error}"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _FORMAT
        or not isinstance(payload.get("findings"), list)
    ):
        raise ConfigurationError(
            f"{path} is not a {_FORMAT} file (expected a JSON object with "
            f'"format": "{_FORMAT}" and a "findings" list)'
        )
    keys: set[BaselineKey] = set()
    for entry in payload["findings"]:
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"{path}: baseline entries must be objects, got {entry!r}"
            )
        try:
            keys.add(
                (
                    str(entry["rule"]),
                    str(entry["module"]),
                    str(entry["message"]),
                )
            )
        except KeyError as error:
            raise ConfigurationError(
                f"{path}: baseline entry is missing the {error} field"
            ) from error
    return keys


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the new baseline (sorted, deduplicated)."""
    entries = sorted(
        {finding_key(finding) for finding in findings}
    )
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "findings": [
            {"rule": rule, "module": module, "message": message}
            for rule, module, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def split_by_baseline(
    findings: Sequence[Finding], baseline: set[BaselineKey]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into ``(new, baselined)`` against the recorded keys."""
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        if finding_key(finding) in baseline:
            known.append(finding)
        else:
            new.append(finding)
    return new, known
