"""The project-specific checkers enforced by ``repro lint``."""

from __future__ import annotations

from repro.analysis.checkers.async_safety import AsyncSafetyChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exception_discipline import (
    ExceptionDisciplineChecker,
)
from repro.analysis.checkers.kernel_parity import KernelParityChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker

#: The standing lint gate, in report order.
ALL_CHECKERS = (
    DeterminismChecker(),
    AsyncSafetyChecker(),
    LockDisciplineChecker(),
    KernelParityChecker(),
    ExceptionDisciplineChecker(),
)

__all__ = [
    "ALL_CHECKERS",
    "AsyncSafetyChecker",
    "DeterminismChecker",
    "ExceptionDisciplineChecker",
    "KernelParityChecker",
    "LockDisciplineChecker",
]
