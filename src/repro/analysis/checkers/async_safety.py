"""Async-safety checker: no blocking work on the event-loop hot path.

The streaming service promises that queries answer *during* ingestion and
that ``health`` answers during stalls.  That holds only while nothing
blocks the event loop: every sleep must be ``asyncio.sleep``, every
filesystem/subprocess touch and every numpy-heavy session/manager method
must run through ``asyncio.to_thread`` (or an executor).  Passing a bound
method *to* ``asyncio.to_thread`` is fine — the rules fire on direct
*calls* in async code.

``blocking-call``
    Inside an ``async def`` in :mod:`repro.service`: a direct call to a
    known-blocking callable — ``time.sleep``, ``open``, ``subprocess.*``,
    ``os.system``, ``shutil`` tree operations — or to a known numpy-heavy
    session/manager method (``ingest``, ``factors``, ``checkpoint_*``,
    ``recover``, ...).  Awaited calls are exempt (an ``await x.start()``
    is an async method, not the blocking session one).

``sleep-under-lock``
    ``await asyncio.sleep(...)`` while lexically holding a stream lock
    (``async with <x>.lock`` / ``with <x>._lock``).  Sleeping under the
    lock blocks every query on that stream for the duration; deliberate
    stall injection carries an allow-comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Rule
from repro.analysis.framework import Checker
from repro.analysis.source import SourceFile
from repro.analysis.symbols import ImportTable

#: Packages whose async code serves the hot path.
ASYNC_SCOPES = ("repro.service",)

#: Fully-qualified callables that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "socket.create_connection",
        "shutil.rmtree",
        "shutil.copytree",
        "shutil.copy",
        "shutil.copy2",
        "shutil.move",
        "json.dump",
        "json.load",
        "open",
    }
)

_BLOCKING_PREFIXES = ("subprocess.",)

#: Method names of the session/manager layer that grind numpy or disk;
#: calling one directly from async code stalls the loop.  (Handing the
#: bound method to ``asyncio.to_thread`` does not call it and is fine.)
BLOCKING_METHODS = frozenset(
    {
        "ingest",
        "advance",
        "start",
        "factors",
        "fitness",
        "anomalies",
        "stats",
        "telemetry_snapshot",
        "save",
        "load",
        "recover",
        "checkpoint_stream",
        "checkpoint_all",
        "drop_stream",
        "extend",
        "decompose",
    }
)


def _in_scope(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".")
        for scope in ASYNC_SCOPES
    )


def _is_lock_expr(node: ast.AST) -> bool:
    """Heuristic: the expression names a lock (``x.lock``, ``self._lock``)."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    return name == "lock" or name.endswith("_lock")


def _holds_lock(node: ast.AST, source: SourceFile) -> bool:
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expression = item.context_expr
                # ``async with self.lock:`` or ``with lock.acquire():``.
                if isinstance(expression, ast.Call):
                    expression = expression.func
                    if isinstance(expression, ast.Attribute) and (
                        expression.attr == "acquire"
                    ):
                        expression = expression.value
                if _is_lock_expr(expression):
                    return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


class AsyncSafetyChecker(Checker):
    name = "async-safety"
    rules = (
        Rule(
            id="blocking-call",
            severity=SEVERITY_ERROR,
            summary="blocking call inside async code",
            rationale=(
                "the event loop must stay responsive while numpy grinds; "
                "route blocking work through asyncio.to_thread or an "
                "executor"
            ),
        ),
        Rule(
            id="sleep-under-lock",
            severity=SEVERITY_ERROR,
            summary="await asyncio.sleep while holding a stream lock",
            rationale=(
                "sleeping under the lock blocks every query on the stream "
                "for the duration; release the lock first"
            ),
        ),
    )

    def check_file(self, source: SourceFile) -> Iterator:
        if not _in_scope(source.module):
            return
        imports = ImportTable.from_tree(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(node, source, imports)

    def _check_async_body(
        self,
        function: ast.AsyncFunctionDef,
        source: SourceFile,
        imports: ImportTable,
    ) -> Iterator:
        for node in self._own_nodes(function):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved == "asyncio.sleep":
                if _holds_lock(node, source):
                    yield self.finding(
                        "sleep-under-lock",
                        source,
                        node.lineno,
                        node.col_offset,
                        "asyncio.sleep awaited while holding a stream "
                        "lock; every query on the stream blocks until it "
                        "returns",
                    )
                continue
            if isinstance(source.parents.get(node), ast.Await):
                continue  # awaited calls are async, not blocking
            if resolved is not None and (
                resolved in BLOCKING_CALLS
                or resolved.startswith(_BLOCKING_PREFIXES)
            ):
                yield self.finding(
                    "blocking-call",
                    source,
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() blocks the event loop inside async "
                    f"function {function.name!r}; use asyncio.to_thread "
                    "(or asyncio.sleep for delays)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_METHODS
                and not imports.is_import_rooted(node.func)
            ):
                yield self.finding(
                    "blocking-call",
                    source,
                    node.lineno,
                    node.col_offset,
                    f"direct call to numpy-heavy method "
                    f".{node.func.attr}() inside async function "
                    f"{function.name!r}; wrap it in asyncio.to_thread",
                )

    @staticmethod
    def _own_nodes(function: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes whose nearest enclosing function is ``function`` (nested
        defs are skipped: a nested closure may legitimately be handed to
        ``asyncio.to_thread`` and run off-loop)."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(function))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
