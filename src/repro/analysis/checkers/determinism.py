"""Determinism checker: seeded-RNG discipline, wall clocks, set iteration.

The exactness contract of this codebase — bit-exact batched/sequential
equivalence, checkpoint/restore, chaos convergence — holds only while all
randomness flows through injected, seedable generators and no
iteration-order or wall-clock entropy reaches numeric state.  These rules
make the three historical ways of breaking that contract un-shippable:

``global-random``
    Calls to the process-global RNGs — ``random.random()`` and friends,
    or legacy ``numpy.random.*`` module functions.  Constructing an
    *instance* (``random.Random(seed)``, ``np.random.default_rng(seed)``,
    bit generators) is the sanctioned pattern and stays allowed.

``wall-clock``
    ``time.time()`` / ``datetime.now()``-family calls inside the
    state-affecting packages (core, stream, tensor, anomaly, service,
    shard).
    Replayed runs must not read the clock; observability timestamps that
    genuinely need wall time carry an explicit allow-comment.

``set-iteration``
    Iterating a set expression (literal, ``set()``/``frozenset()`` call,
    set algebra) in the state-affecting packages.  Set iteration order
    varies with insertion history and hash seeds — exactly the hazard the
    checkpoint work fixed by hand when restored inverted-index buckets
    enumerated differently than the originals.  ``sorted(... for x in
    set(...))`` is fine: the sort re-imposes a deterministic order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Rule
from repro.analysis.framework import Checker
from repro.analysis.source import SourceFile
from repro.analysis.symbols import ImportTable

#: Packages whose code feeds numeric/replayed state.
STATE_SCOPES = (
    "repro.core",
    "repro.stream",
    "repro.tensor",
    "repro.anomaly",
    "repro.service",
    "repro.shard",
)

#: ``random`` module attributes that are fine to call: instance
#: constructors, not draws from the process-global generator.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` attributes that construct injectable generators.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def in_scope(module: str, scopes: tuple[str, ...] = STATE_SCOPES) -> bool:
    return any(
        module == scope or module.startswith(scope + ".") for scope in scopes
    )


def _is_set_expr(node: ast.AST, imports: ImportTable) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return imports.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left, imports) or _is_set_expr(
            node.right, imports
        )
    return False


def _feeds_sorted(comp: ast.AST, source: SourceFile, imports: ImportTable) -> bool:
    """True when the comprehension is directly an argument of ``sorted``."""
    parent = source.parents.get(comp)
    return (
        isinstance(parent, ast.Call)
        and comp in parent.args
        and imports.resolve(parent.func) == "sorted"
    )


class DeterminismChecker(Checker):
    name = "determinism"
    rules = (
        Rule(
            id="global-random",
            severity=SEVERITY_ERROR,
            summary="call to a process-global RNG",
            rationale=(
                "all randomness must flow through an injected, seedable "
                "generator so replays and chaos tests reproduce bit-exactly"
            ),
        ),
        Rule(
            id="wall-clock",
            severity=SEVERITY_ERROR,
            summary="wall-clock read in a state-affecting package",
            rationale=(
                "replayed state must be a pure function of the event "
                "sequence; use time.monotonic()/perf_counter() for "
                "durations, or allow-comment genuine timestamps"
            ),
        ),
        Rule(
            id="set-iteration",
            severity=SEVERITY_ERROR,
            summary="iteration over a set expression",
            rationale=(
                "set order depends on insertion history and hashing; wrap "
                "the iteration in sorted() or use an insertion-ordered dict"
            ),
        ),
    )

    def check_file(self, source: SourceFile) -> Iterator:
        imports = ImportTable.from_tree(source.tree)
        scoped = in_scope(source.module)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, source, imports, scoped)
            elif scoped and isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, imports):
                    yield self._set_finding(node, source)
            elif scoped and isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if _is_set_expr(generator.iter, imports) and not (
                        _feeds_sorted(node, source, imports)
                    ):
                        yield self._set_finding(generator.iter, source)

    def _check_call(
        self,
        node: ast.Call,
        source: SourceFile,
        imports: ImportTable,
        scoped: bool,
    ) -> Iterator:
        resolved = imports.resolve(node.func)
        if resolved is None:
            return
        if resolved.startswith("random."):
            attribute = resolved.split(".", 1)[1]
            if "." not in attribute and attribute not in _RANDOM_ALLOWED:
                yield self.finding(
                    "global-random",
                    source,
                    node.lineno,
                    node.col_offset,
                    f"call to the process-global RNG {resolved}(); draw "
                    "from an injected random.Random instance instead",
                )
        elif resolved.startswith("numpy.random."):
            attribute = resolved.rsplit(".", 1)[1]
            if attribute not in _NUMPY_RANDOM_ALLOWED:
                yield self.finding(
                    "global-random",
                    source,
                    node.lineno,
                    node.col_offset,
                    f"call to the legacy global numpy RNG {resolved}(); "
                    "use an injected numpy.random.Generator instead",
                )
        elif scoped and resolved in _WALL_CLOCK_CALLS:
            yield self.finding(
                "wall-clock",
                source,
                node.lineno,
                node.col_offset,
                f"{resolved}() read in state-affecting module "
                f"{source.module}; use time.monotonic()/perf_counter() "
                "for durations",
            )

    def _set_finding(self, node: ast.AST, source: SourceFile):
        return self.finding(
            "set-iteration",
            source,
            node.lineno,
            node.col_offset,
            "iteration over a set expression has nondeterministic order; "
            "wrap it in sorted() or keep an insertion-ordered dict",
        )
