"""Exception-discipline checker: no silently swallowed broad excepts.

``broad-except``
    An ``except Exception`` / ``except BaseException`` / bare ``except``
    handler whose body neither re-raises nor records what happened
    (logging, ``warnings.warn``, ``traceback`` formatting, or appending
    the error to a result structure the caller inspects).  Also flags
    ``contextlib.suppress(Exception)``.

Broad handlers are sometimes right — a worker loop must survive any
fault, a protocol boundary must answer malformed requests — but those
sites must either log the error or carry an inline
``# repro: allow[broad-except]`` comment stating why swallowing is safe.
The checker's job is to make the *silent* swallow — the one that turns an
ENOSPC during checkpoint into a mystery three restarts later — impossible
to ship unannotated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Rule
from repro.analysis.framework import Checker
from repro.analysis.source import SourceFile
from repro.analysis.symbols import ImportTable

_BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Attribute/function names whose presence in the handler body counts as
#: "the error was recorded": loggers, warnings, traceback formatting.
_RECORDING_ATTRS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
        "warn",
        "print_exc",
        "format_exc",
        "print_exception",
        "format_exception",
    }
)


def _is_broad_type(node: ast.AST | None, imports: ImportTable) -> bool:
    """True for a bare handler, ``Exception``/``BaseException``, or a
    tuple containing one of them."""
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_is_broad_type(element, imports) for element in node.elts)
    resolved = imports.resolve(node)
    if resolved is None:
        return False
    return resolved.rsplit(".", 1)[-1] in _BROAD_NAMES


def _handler_records_error(handler: ast.ExceptHandler) -> bool:
    """The body re-raises, or calls something that records the error, or
    stores the caught exception object somewhere the caller can see."""
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            function = node.func
            name = (
                function.attr
                if isinstance(function, ast.Attribute)
                else function.id
                if isinstance(function, ast.Name)
                else None
            )
            if name in _RECORDING_ATTRS:
                return True
        if bound is not None and isinstance(node, ast.Name):
            # The caught exception is *used* — formatted into a message,
            # appended to a failure dict, returned — not just dropped.
            if node.id == bound and isinstance(node.ctx, ast.Load):
                return True
    return False


class ExceptionDisciplineChecker(Checker):
    name = "exception-discipline"
    rules = (
        Rule(
            id="broad-except",
            severity=SEVERITY_ERROR,
            summary="broad except handler swallows the error silently",
            rationale=(
                "a swallowed Exception turns checkpoint corruption and "
                "injected faults into mysteries; narrow the type, record "
                "the error, or allow-comment the deliberate swallow"
            ),
        ),
    )

    def check_file(self, source: SourceFile) -> Iterator:
        imports = ImportTable.from_tree(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                if not _is_broad_type(node.type, imports):
                    continue
                if _handler_records_error(node):
                    continue
                label = (
                    "bare except:"
                    if node.type is None
                    else "except Exception"
                )
                yield self.finding(
                    "broad-except",
                    source,
                    node.lineno,
                    node.col_offset,
                    f"{label} handler neither re-raises nor records the "
                    "error; narrow the exception type or log what was "
                    "swallowed",
                )
            elif isinstance(node, ast.Call):
                if imports.resolve(node.func) != "contextlib.suppress":
                    continue
                if any(
                    _is_broad_type(argument, imports)
                    and not isinstance(argument, ast.Tuple)
                    for argument in node.args
                ):
                    yield self.finding(
                        "broad-except",
                        source,
                        node.lineno,
                        node.col_offset,
                        "contextlib.suppress(Exception) swallows every "
                        "error silently; suppress specific types or "
                        "allow-comment the deliberate swallow",
                    )
