"""Kernel-parity checker: every backend implements the whole kernel API.

The backend registry promises that switching ``SNSConfig.backend`` never
changes *what* is computed, only how fast.  Statically that decomposes
into three invariants over :mod:`repro.kernels`:

``kernel-missing``
    Every name in ``KERNEL_NAMES`` (parsed from ``kernels/api.py``) is a
    top-level function in every backend module.

``kernel-signature``
    Each backend kernel's positional parameters match the numpy
    reference's, name for name in order (annotations and defaults are the
    backend's business; the *calling convention* is not).

``kernel-nopython-call``
    Functions compiled ``nopython`` in the numba backend (decorated with
    ``@_jit`` / ``@njit``) only call a small allowlist of
    nopython-compilable callables: scalar builtins, the handful of numpy
    constructors LLVM lowers, and sibling jitted functions.  Anything
    else would either fail to compile at first call (the failure mode the
    lazy-compilation design hides until production) or silently fall back
    to object mode.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Rule
from repro.analysis.framework import Checker
from repro.analysis.source import Project, SourceFile
from repro.analysis.symbols import ImportTable

API_MODULE = "repro.kernels.api"
REFERENCE_BACKEND = "repro.kernels.numpy_backend"
#: Backends checked against the reference, plus whether their jitted
#: functions must respect the nopython allowlist.
BACKEND_MODULES = (
    (REFERENCE_BACKEND, False),
    ("repro.kernels.numba_backend", True),
)

_JIT_DECORATORS = frozenset({"_jit", "njit", "jit"})

#: Callables safe inside nopython code: scalar builtins plus the numpy
#: constructors/ufuncs numba lowers without object mode.
NOPYTHON_ALLOWED_CALLS = frozenset(
    {
        "range",
        "len",
        "min",
        "max",
        "abs",
        "int",
        "float",
        "bool",
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.zeros_like",
        "numpy.empty_like",
        "numpy.sqrt",
        "numpy.abs",
        "numpy.dot",
    }
)


def parse_kernel_names(source: SourceFile) -> list[str]:
    """The ``KERNEL_NAMES`` tuple of the API module (empty if absent)."""
    for node in source.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "KERNEL_NAMES"
            for target in node.targets
        ):
            continue
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return []
        names = []
        for element in node.value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
        return names
    return []


def _top_level_functions(source: SourceFile) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in source.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _positional_names(function: ast.FunctionDef) -> list[str]:
    arguments = function.args
    return [arg.arg for arg in arguments.posonlyargs + arguments.args]


def _is_jitted(function: ast.FunctionDef) -> bool:
    for decorator in function.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id in _JIT_DECORATORS:
            return True
        if isinstance(target, ast.Attribute) and target.attr in _JIT_DECORATORS:
            return True
    return False


class KernelParityChecker(Checker):
    name = "kernel-parity"
    rules = (
        Rule(
            id="kernel-missing",
            severity=SEVERITY_ERROR,
            summary="backend does not implement a declared kernel",
            rationale=(
                "KERNEL_NAMES is the backend contract; a missing kernel "
                "surfaces as an AttributeError at registry load time"
            ),
        ),
        Rule(
            id="kernel-signature",
            severity=SEVERITY_ERROR,
            summary="backend kernel signature differs from the reference",
            rationale=(
                "call sites are written once against the API; positional "
                "parameters must match the numpy reference name for name"
            ),
        ),
        Rule(
            id="kernel-nopython-call",
            severity=SEVERITY_ERROR,
            summary="non-allowlisted call inside a nopython kernel",
            rationale=(
                "nopython code that calls unsupported functions fails at "
                "first (lazy) compile — in production, not at import"
            ),
        ),
    )

    def check_project(self, project: Project) -> Iterator:
        api = project.get(API_MODULE)
        if api is None:
            return
        kernel_names = parse_kernel_names(api)
        if not kernel_names:
            return
        reference = project.get(REFERENCE_BACKEND)
        reference_functions = (
            _top_level_functions(reference) if reference is not None else {}
        )
        for module_name, nopython in BACKEND_MODULES:
            source = project.get(module_name)
            if source is None:
                continue
            functions = _top_level_functions(source)
            for kernel in kernel_names:
                function = functions.get(kernel)
                if function is None:
                    yield self.finding(
                        "kernel-missing",
                        source,
                        1,
                        0,
                        f"backend {module_name} does not define kernel "
                        f"{kernel!r} declared in {API_MODULE}.KERNEL_NAMES",
                    )
                    continue
                reference_function = reference_functions.get(kernel)
                if (
                    reference_function is not None
                    and function is not reference_function
                ):
                    expected = _positional_names(reference_function)
                    actual = _positional_names(function)
                    if actual != expected:
                        yield self.finding(
                            "kernel-signature",
                            source,
                            function.lineno,
                            function.col_offset,
                            f"kernel {kernel!r} takes {actual}, but the "
                            f"numpy reference takes {expected}",
                        )
            if nopython:
                yield from self._check_nopython(source, functions)

    def _check_nopython(
        self, source: SourceFile, functions: dict[str, ast.FunctionDef]
    ) -> Iterator:
        imports = ImportTable.from_tree(source.tree)
        jitted_names = {
            name for name, function in functions.items() if _is_jitted(function)
        }
        for name in sorted(jitted_names):
            for node in ast.walk(functions[name]):
                if not isinstance(node, ast.Call):
                    continue
                resolved = imports.resolve(node.func)
                if resolved is None:
                    # Attribute calls on runtime objects (array methods
                    # like .copy()/.sum()) are numba's to support; the
                    # allowlist governs free-function calls.
                    continue
                if resolved in NOPYTHON_ALLOWED_CALLS:
                    continue
                if resolved in jitted_names:
                    continue
                yield self.finding(
                    "kernel-nopython-call",
                    source,
                    node.lineno,
                    node.col_offset,
                    f"nopython kernel {name!r} calls {resolved}(), which "
                    "is not on the nopython-safe allowlist",
                )
