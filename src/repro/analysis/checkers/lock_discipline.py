"""Lock-discipline checker: declared lock-guarded methods stay guarded.

The service's atomic-snapshot guarantee — a query never observes a
half-applied chunk — rests on one convention: every touch of a stream's
numeric state happens inside ``async with <stream>.lock``.  The convention
is *declared in the code it governs*: a module opts in by defining::

    LOCK_GUARDED_METHODS = frozenset({
        "session.ingest", "manager.checkpoint_stream", ...
    })

Each entry is ``receiver.method``.  The checker then requires every
mention of ``<...receiver>.<method>`` in that module — a direct call *or*
a bound method handed to ``asyncio.to_thread`` — to sit lexically inside
a ``with`` / ``async with`` block whose context manager names a lock
(``x.lock``, ``self._lock``, ``lock.acquire()``).  Deliberate unguarded
mentions (e.g. shutdown paths after every worker has stopped) carry an
inline ``# repro: allow[lock-discipline]`` justification.

Modules without a declaration are untouched, so the rule costs nothing
until a module opts into the contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Rule
from repro.analysis.framework import Checker
from repro.analysis.source import SourceFile
from repro.analysis.symbols import receiver_name

DECLARATION_NAME = "LOCK_GUARDED_METHODS"


def _string_elements(node: ast.AST) -> list[str] | None:
    """Constant strings of a set/tuple/list literal, possibly wrapped in a
    ``set(...)`` / ``frozenset(...)`` call; ``None`` if not that shape."""
    if isinstance(node, ast.Call) and len(node.args) == 1:
        function = node.func
        if isinstance(function, ast.Name) and function.id in (
            "set",
            "frozenset",
        ):
            node = node.args[0]
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return values


def parse_declaration(tree: ast.Module) -> dict[str, set[str]] | None:
    """``{method: {receivers...}}`` from the module's declaration, or
    ``None`` when the module does not declare lock-guarded methods."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == DECLARATION_NAME
            for target in node.targets
        ):
            continue
        entries = _string_elements(node.value)
        if entries is None:
            return None
        guarded: dict[str, set[str]] = {}
        for entry in entries:
            receiver, _, method = entry.rpartition(".")
            if receiver and method:
                guarded.setdefault(method, set()).add(receiver)
        return guarded
    return None


def _inside_lock_scope(node: ast.AST, source: SourceFile) -> bool:
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expression = item.context_expr
                if isinstance(expression, ast.Call):
                    function = expression.func
                    if (
                        isinstance(function, ast.Attribute)
                        and function.attr == "acquire"
                    ):
                        expression = function.value
                if isinstance(expression, ast.Attribute):
                    name = expression.attr
                elif isinstance(expression, ast.Name):
                    name = expression.id
                else:
                    continue
                if name == "lock" or name.endswith("_lock"):
                    return True
    return False


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = (
        Rule(
            id="lock-discipline",
            severity=SEVERITY_ERROR,
            summary="declared lock-guarded method used outside a lock scope",
            rationale=(
                "the atomic-snapshot read path holds only while every "
                "mention of a guarded session/manager method sits inside "
                "an async with <stream>.lock block"
            ),
        ),
    )

    def check_file(self, source: SourceFile) -> Iterator:
        guarded = parse_declaration(source.tree)
        if not guarded:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            receivers = guarded.get(node.attr)
            if receivers is None:
                continue
            if receiver_name(node) not in receivers:
                continue
            if _inside_lock_scope(node, source):
                continue
            yield self.finding(
                "lock-discipline",
                source,
                node.lineno,
                node.col_offset,
                f"lock-guarded method .{node.attr} used outside an "
                "async with <stream>.lock scope (declared in "
                f"{DECLARATION_NAME})",
            )
