"""``repro lint`` — run the invariant checkers over the source tree.

Exit status is 0 when no *new* findings remain after inline suppressions
and the baseline, 1 otherwise, 2 on usage/configuration errors.  The JSON
format is stable and machine-consumed by CI (uploaded as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.framework import all_rules, run_checkers
from repro.analysis.source import Project
from repro.exceptions import ConfigurationError


def _default_root() -> Path:
    """The installed ``repro`` package directory (lint's default target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Statically check the determinism, async-safety, lock, kernel-"
            "parity, and exception-discipline invariants of the codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=(
            "package directories to scan (default: the installed repro "
            "package)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings; only findings not in the "
            "baseline fail the run (a missing file is an empty baseline)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings waived by inline allow-comments",
    )
    return parser


def _print_rules() -> None:
    for checker in ALL_CHECKERS:
        print(f"{checker.name}:")
        for rule in checker.rules:
            print(f"  {rule.id} ({rule.severity}): {rule.summary}")
            print(f"      {rule.rationale}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _print_rules()
        return 0
    if options.update_baseline and options.baseline is None:
        parser.error("--update-baseline requires --baseline FILE")

    roots = options.paths or [_default_root()]
    files: dict = {}
    errors: list = []
    for root in roots:
        if not root.is_dir():
            print(f"repro lint: not a directory: {root}", file=sys.stderr)
            return 2
        project = Project.load(root)
        files.update(project.files)
        errors.extend(project.errors)
    project = Project(files=files, errors=errors)

    result = run_checkers(project, ALL_CHECKERS)

    try:
        baseline = (
            load_baseline(options.baseline)
            if options.baseline is not None
            else set()
        )
    except ConfigurationError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    new, baselined = split_by_baseline(result.findings, baseline)

    if options.update_baseline:
        write_baseline(options.baseline, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {options.baseline}"
        )
        return 0

    if options.format == "json":
        payload = {
            "files_checked": result.files_checked,
            "rules": [rule.id for rule in all_rules(ALL_CHECKERS)],
            "findings": [finding.to_dict() for finding in new],
            "baselined": [finding.to_dict() for finding in baselined],
            "suppressed": [
                finding.to_dict() for finding in result.suppressed
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.format_text())
        if options.show_suppressed:
            for finding in result.suppressed:
                print(f"{finding.format_text()} (suppressed)")
        summary = (
            f"{result.files_checked} file(s) checked, "
            f"{len(new)} finding(s)"
        )
        if baselined:
            summary += f", {len(baselined)} baselined"
        if result.suppressed:
            summary += f", {len(result.suppressed)} suppressed"
        print(summary)

    return 0 if not new else 1


if __name__ == "__main__":
    sys.exit(main())
