"""The finding model of the static analyzer.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain data: checkers yield them, the framework filters suppressed ones,
the CLI formats them, and the baseline stores stable keys for them.
"""

from __future__ import annotations

import dataclasses
from typing import Any

#: Finding severities, in decreasing order of urgency.  Severity is
#: informational — any unsuppressed, non-baselined finding fails the lint.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclasses.dataclass(frozen=True, slots=True)
class Rule:
    """Metadata of one enforced invariant."""

    id: str
    severity: str
    summary: str
    #: Why the invariant matters for this codebase (shown by --list-rules).
    rationale: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.id!r} severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: str
    #: Dotted module name (``repro.service.server``) — the stable coordinate
    #: used by baselines; does not depend on the invocation directory.
    module: str
    #: Path as scanned (diagnostic; may be absolute or ``<memory>``).
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[Any, ...]:
        return (
            SEVERITIES.index(self.severity)
            if self.severity in SEVERITIES
            else len(SEVERITIES),
            self.module,
            self.line,
            self.col,
            self.rule,
        )

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )
