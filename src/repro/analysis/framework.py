"""Checker base class and the lint driver.

A :class:`Checker` owns a set of :class:`~repro.analysis.findings.Rule`\\ s
and yields :class:`~repro.analysis.findings.Finding`\\ s over a
:class:`~repro.analysis.source.Project`.  Most checkers are per-file
(override :meth:`Checker.check_file`); cross-file checkers like kernel
parity override :meth:`Checker.check_project` directly.

:func:`run_checkers` is the driver: it runs every checker, routes each
finding through its file's inline ``# repro: allow[rule]`` suppressions,
and returns the partitioned result.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding, Rule
from repro.analysis.source import Project, SourceFile
from repro.exceptions import ConfigurationError


class Checker:
    """One family of enforced invariants."""

    #: Short machine name of the checker (CLI filtering, reports).
    name: str = ""
    #: The rules this checker can emit, keyed for --list-rules.
    rules: tuple[Rule, ...] = ()

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise ConfigurationError(
            f"checker {self.name!r} has no rule {rule_id!r}"
        )

    def finding(
        self,
        rule_id: str,
        source: SourceFile,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Build a finding for one of this checker's rules."""
        rule = self.rule(rule_id)
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            module=source.module,
            path=source.path,
            line=line,
            col=col,
            message=message,
        )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for source in project:
            yield from self.check_file(source)

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        return ()


@dataclasses.dataclass(slots=True)
class LintResult:
    """Outcome of one lint run, suppressions already applied."""

    #: Findings that count against the run, sorted most-severe first.
    findings: list[Finding]
    #: Findings waived by an inline ``# repro: allow[...]`` comment.
    suppressed: list[Finding]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings


def run_checkers(
    project: Project, checkers: Sequence[Checker]
) -> LintResult:
    """Run every checker over the project and apply inline suppressions."""
    active: list[Finding] = list(project.errors)
    suppressed: list[Finding] = []
    for checker in checkers:
        for finding in checker.check_project(project):
            source = project.get(finding.module)
            if source is not None and source.is_suppressed(finding):
                suppressed.append(finding)
            else:
                active.append(finding)
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return LintResult(
        findings=active, suppressed=suppressed, files_checked=len(project)
    )


def all_rules(checkers: Sequence[Checker]) -> list[Rule]:
    """Every rule of ``checkers``, in checker order."""
    rules: list[Rule] = []
    for checker in checkers:
        rules.extend(checker.rules)
    return rules
