"""Source loading: files, modules, parse trees, parents, suppressions.

A :class:`SourceFile` bundles everything a checker needs about one module:
its dotted name, raw text, parsed AST, a child->parent node map (for the
lexical-scope questions the checkers ask — "is this call inside an ``async
with ... lock`` block?"), and the inline suppressions.

Suppressions
------------
A finding on line ``N`` is suppressed when line ``N`` (trailing) or line
``N - 1`` (its own line) carries::

    # repro: allow[rule-id] optional one-line justification
    # repro: allow[rule-a, rule-b] several rules at once

The justification text after the bracket is free-form and encouraged — the
comment is the audit trail for why the invariant is deliberately waived.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Finding

_ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")


def _extract_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _ALLOW_PATTERN.search(line)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        if rules:
            suppressions[lineno] = rules
    return suppressions


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


@dataclasses.dataclass(slots=True)
class SourceFile:
    """One parsed module plus the lexical context checkers rely on."""

    module: str
    path: str
    text: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST]
    suppressions: dict[int, frozenset[str]]

    @classmethod
    def from_source(
        cls, text: str, module: str, path: str = "<memory>"
    ) -> "SourceFile":
        """Build from an in-memory snippet (the test-fixture entry point)."""
        tree = ast.parse(text, filename=path)
        return cls(
            module=module,
            path=path,
            text=text,
            tree=tree,
            parents=_parent_map(tree),
            suppressions=_extract_suppressions(text),
        )

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "SourceFile":
        """Load one file under ``root``; the module name comes from the
        path relative to ``root``'s parent (so ``<root>/service/server.py``
        with root ``.../repro`` becomes ``repro.service.server``)."""
        text = path.read_text(encoding="utf-8")
        relative = path.relative_to(root.parent)
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return cls.from_source(text, module=".".join(parts), path=str(path))

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an allow-comment on the finding's line (or the line
        directly above it) names the finding's rule."""
        for lineno in (finding.line, finding.line - 1):
            if finding.rule in self.suppressions.get(lineno, frozenset()):
                return True
        return False

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's enclosing nodes, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)


@dataclasses.dataclass(slots=True)
class Project:
    """Every loaded module of one lint run, keyed by dotted module name."""

    files: dict[str, SourceFile]
    #: Files that failed to parse, reported as ``syntax-error`` findings.
    errors: list[Finding]

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files.values())

    def __len__(self) -> int:
        return len(self.files)

    def get(self, module: str) -> SourceFile | None:
        return self.files.get(module)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """Build from ``{module: source}`` snippets (fixture entry point)."""
        files = {
            module: SourceFile.from_source(text, module=module)
            for module, text in sources.items()
        }
        return cls(files=files, errors=[])

    @classmethod
    def load(cls, root: Path) -> "Project":
        """Load every ``*.py`` file under the package directory ``root``."""
        root = root.resolve()
        files: dict[str, SourceFile] = {}
        errors: list[Finding] = []
        for path in sorted(root.rglob("*.py")):
            try:
                source = SourceFile.from_path(path, root)
            except (SyntaxError, ValueError, OSError) as error:
                module = str(path.relative_to(root.parent).with_suffix(""))
                errors.append(
                    Finding(
                        rule="syntax-error",
                        severity=SEVERITY_ERROR,
                        module=module.replace("/", "."),
                        path=str(path),
                        line=getattr(error, "lineno", None) or 1,
                        col=0,
                        message=f"cannot parse file: {error}",
                    )
                )
                continue
            files[source.module] = source
        return cls(files=files, errors=errors)
