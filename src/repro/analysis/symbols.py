"""Import-aware symbol resolution for the checkers.

The checkers ask one question constantly: *what fully-qualified name does
this call refer to?*  :class:`ImportTable` answers it from the module's
import statements — ``import numpy as np`` makes ``np.random.rand``
resolve to ``numpy.random.rand``; ``from time import time`` makes a bare
``time()`` resolve to ``time.time``.

This is deliberately a *module-scoped* table with no flow analysis: local
variables that shadow an import are not tracked.  For the invariants
enforced here (RNG discipline, wall-clock calls, blocking calls) the
module-level view is what matters, and the occasional shadowing miss is an
accepted false negative, never a false positive on clean code.
"""

from __future__ import annotations

import ast


class ImportTable:
    """Alias -> fully-qualified dotted name, built from import statements."""

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportTable":
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        table._aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the root name.
                        root = alias.name.split(".", 1)[0]
                        table._aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    # Relative imports resolve inside the package; the
                    # invariants here target stdlib/numpy names, so skip.
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    table._aliases[bound] = f"{node.module}.{alias.name}"
        return table

    @staticmethod
    def _name_chain(node: ast.AST) -> list[str] | None:
        """The dotted chain of a Name/Attribute expression, or ``None`` when
        the base is not a plain name (``self.x.y``, calls, subscripts)."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        return parts

    def is_import_rooted(self, node: ast.AST) -> bool:
        """True when the expression's base name is a known import alias
        (``np.random.rand`` with ``import numpy as np``) — i.e. the chain
        names a module member, not an attribute of a runtime object."""
        parts = self._name_chain(node)
        return parts is not None and parts[0] in self._aliases

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of a Name/Attribute expression.

        Unimported bare names resolve to themselves (builtins like ``open``
        and ``sorted`` keep their name).  Attribute chains on non-name bases
        resolve to ``None``.
        """
        parts = self._name_chain(node)
        if parts is None:
            return None
        head = self._aliases.get(parts[0])
        if head is not None:
            parts = head.split(".") + parts[1:]
        return ".".join(parts)


def receiver_name(node: ast.AST) -> str | None:
    """Trailing identifier of an attribute's receiver expression.

    ``session.ingest`` -> ``"session"``; ``self.manager.checkpoint_all`` ->
    ``"manager"``; receivers that end in a call or subscript -> ``None``.
    """
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None
