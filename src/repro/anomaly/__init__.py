"""Anomaly detection on tensor streams (Section VI-G of the paper).

The application study injects abnormally large changes into a stream and asks
each method to flag them by the Z-score of its reconstruction error on the
newest tensor unit.  :mod:`repro.anomaly.injection` creates the corrupted
stream (and remembers the ground truth); :mod:`repro.anomaly.detector`
maintains the running error statistics and the top-K scoreboard.
"""

from repro.anomaly.injection import InjectedAnomaly, inject_anomalies
from repro.anomaly.detector import AnomalyScore, ZScoreDetector
from repro.anomaly.scoring import score_batch

__all__ = [
    "InjectedAnomaly",
    "inject_anomalies",
    "AnomalyScore",
    "ZScoreDetector",
    "score_batch",
]
