"""Z-score anomaly detector over reconstruction errors (Section VI-G).

The detector keeps running statistics (mean and variance, via Welford's
algorithm) of the reconstruction errors it observes, and converts each new
error into a Z-score.  A fixed-size scoreboard of the highest scores supports
the "precision at top-20" evaluation, and the recorded detection times
support the "time gap between occurrence and detection" metric.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping
from typing import Any

from repro.exceptions import CheckpointError

Coordinate = tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class AnomalyScore:
    """One scored observation."""

    coordinate: Coordinate
    z_score: float
    error: float
    event_time: float
    detection_time: float
    #: True for warm-up placeholders emitted before the error statistics
    #: existed; their ``z_score`` of 0.0 carries no evidence.  Recorded
    #: explicitly so a genuine post-warm-up score of exactly 0.0 (an error
    #: equal to the running mean) is not mistaken for a placeholder.
    is_warmup: bool = False

    @property
    def detection_delay(self) -> float:
        """Seconds between the observation's event time and its detection."""
        return self.detection_time - self.event_time


class ZScoreDetector:
    """Online Z-score scoring of reconstruction errors.

    Parameters
    ----------
    warmup:
        Number of observations used purely to establish the error statistics
        before any score is emitted (scores during warm-up are 0.0).
    """

    def __init__(self, warmup: int = 30) -> None:
        self._warmup = max(int(warmup), 1)
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._scores: list[AnomalyScore] = []

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean of observed errors."""
        return self._mean

    @property
    def std(self) -> float:
        """Running standard deviation of observed errors."""
        if self._count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self._count - 1))

    @property
    def scores(self) -> list[AnomalyScore]:
        """Every score emitted so far (in observation order)."""
        return list(self._scores)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        coordinate: Coordinate,
        error: float,
        event_time: float,
        detection_time: float | None = None,
    ) -> AnomalyScore:
        """Score one reconstruction error and fold it into the statistics.

        The Z-score is computed against the statistics *before* the new
        observation is added, so a huge anomaly does not dilute its own score.
        """
        error = abs(float(error))
        is_warmup = not (self._count >= self._warmup and self.std > 0.0)
        z_score = 0.0 if is_warmup else (error - self._mean) / self.std
        score = AnomalyScore(
            coordinate=tuple(int(i) for i in coordinate),
            z_score=z_score,
            error=error,
            event_time=float(event_time),
            detection_time=float(
                event_time if detection_time is None else detection_time
            ),
            is_warmup=is_warmup,
        )
        self._scores.append(score)
        self._update_statistics(error)
        return score

    def _update_statistics(self, error: float) -> None:
        self._count += 1
        delta = error - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (error - self._mean)

    # ------------------------------------------------------------------
    # Checkpoint state protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Full running state as a JSON-serializable dict.

        Covers everything :meth:`observe` mutates — the observation count,
        the Welford mean/M2 accumulators (float repr round-trips exactly
        through JSON), the warm-up threshold, and every recorded score —
        so a detector restored with :meth:`from_state` continues on the
        exact same score stream as an uninterrupted one.  Streaming-run
        checkpoints store this in their ``extra`` payload.
        """
        return {
            "warmup": self._warmup,
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
            "scores": [
                {
                    "coordinate": list(score.coordinate),
                    "z_score": score.z_score,
                    "error": score.error,
                    "event_time": score.event_time,
                    "detection_time": score.detection_time,
                    "is_warmup": score.is_warmup,
                }
                for score in self._scores
            ],
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore the running state saved by :meth:`state_dict`."""
        try:
            self._warmup = max(int(state["warmup"]), 1)
            self._count = int(state["count"])
            self._mean = float(state["mean"])
            self._m2 = float(state["m2"])
            self._scores = [
                AnomalyScore(
                    coordinate=tuple(int(i) for i in entry["coordinate"]),
                    z_score=float(entry["z_score"]),
                    error=float(entry["error"]),
                    event_time=float(entry["event_time"]),
                    detection_time=float(entry["detection_time"]),
                    is_warmup=bool(entry.get("is_warmup", False)),
                )
                for entry in state["scores"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"detector state payload is unreadable: {error}"
            ) from error

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ZScoreDetector":
        """Build a detector whose state continues the saved run exactly."""
        detector = cls()
        detector.load_state(state)
        return detector

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def top_k(self, k: int) -> list[AnomalyScore]:
        """The ``k`` highest-scoring observations (ties broken by error size).

        Warm-up placeholders (emitted before the error statistics exist) are
        excluded: they carry no evidence and must not occupy scoreboard slots
        on short runs.  A genuine post-warm-up score of 0.0 stays eligible.
        """
        scored = [s for s in self._scores if not s.is_warmup]
        return sorted(scored, key=lambda s: (s.z_score, s.error), reverse=True)[
            : int(k)
        ]

    def precision_at_k(
        self, k: int, true_coordinates: set[Coordinate]
    ) -> float:
        """Fraction of the top-``k`` scoreboard whose coordinate is a true anomaly.

        The denominator is ``k`` itself, not the number of scores available:
        with fewer than ``k`` scored observations the missing slots count as
        misses, so short runs cannot silently inflate the metric.
        """
        k = int(k)
        if k <= 0:
            return 0.0
        top = self.top_k(k)
        hits = sum(1 for score in top if score.coordinate in true_coordinates)
        return hits / k

    def mean_detection_delay(
        self, k: int, true_coordinates: set[Coordinate]
    ) -> float:
        """Mean detection delay of the true anomalies inside the top-``k``."""
        delays = [
            score.detection_delay
            for score in self.top_k(k)
            if score.coordinate in true_coordinates
        ]
        if not delays:
            return float("nan")
        return float(sum(delays) / len(delays))
