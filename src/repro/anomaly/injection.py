"""Injection of synthetic anomalies into a multi-aspect data stream.

Following Section VI-G of the paper: "we injected abnormally large changes
(specifically, 5 times the maximum change in 1 second in the data stream) in
20 randomly chosen entries".  Here an injected anomaly is a stream record
whose value is ``magnitude_factor`` times the largest single-record value of
the clean stream, placed at a random time inside the requested interval and
at random categorical indices.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import DataGenerationError
from repro.stream.events import StreamRecord
from repro.stream.stream import MultiAspectStream


@dataclasses.dataclass(frozen=True, slots=True)
class InjectedAnomaly:
    """Ground truth for one injected anomaly."""

    indices: tuple[int, ...]
    value: float
    time: float

    @property
    def record(self) -> StreamRecord:
        """The stream record representation of the anomaly."""
        return StreamRecord(indices=self.indices, value=self.value, time=self.time)


def inject_anomalies(
    stream: MultiAspectStream,
    n_anomalies: int = 20,
    magnitude_factor: float = 5.0,
    start_time: float | None = None,
    end_time: float | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[MultiAspectStream, list[InjectedAnomaly]]:
    """Return a corrupted copy of ``stream`` plus the injected ground truth.

    Parameters
    ----------
    stream:
        The clean stream.
    n_anomalies:
        Number of anomalies to inject (the paper uses 20).
    magnitude_factor:
        Anomaly value as a multiple of the stream's largest record value
        (the paper uses 5x the maximum one-second change).
    start_time, end_time:
        Interval in which anomaly timestamps are drawn; defaults to the
        stream's own span.
    rng:
        Random generator (for reproducibility).
    """
    if n_anomalies <= 0:
        raise DataGenerationError(f"n_anomalies must be positive, got {n_anomalies}")
    if magnitude_factor <= 0:
        raise DataGenerationError(
            f"magnitude_factor must be positive, got {magnitude_factor}"
        )
    rng = np.random.default_rng() if rng is None else rng
    start = stream.start_time if start_time is None else float(start_time)
    end = stream.end_time if end_time is None else float(end_time)
    if end <= start:
        raise DataGenerationError(
            f"end_time ({end}) must be greater than start_time ({start})"
        )
    magnitude = magnitude_factor * stream.max_abs_value()
    anomalies: list[InjectedAnomaly] = []
    for _ in range(n_anomalies):
        indices = tuple(
            int(rng.integers(0, size)) for size in stream.mode_sizes
        )
        time = float(np.floor(rng.uniform(start, end)))
        anomalies.append(InjectedAnomaly(indices=indices, value=magnitude, time=time))
    corrupted_records = list(stream.records) + [a.record for a in anomalies]
    corrupted = MultiAspectStream(
        corrupted_records,
        mode_sizes=stream.mode_sizes,
        mode_names=stream.mode_names,
        sort=True,
    )
    return corrupted, anomalies
