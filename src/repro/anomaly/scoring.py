"""Arrival scoring on the batched engine.

The per-event anomaly loop scores each arrival the instant it fires: the
observed value is read from the window *after* the arrival is applied, the
prediction comes from the factors *before* the model adapts, and only then is
the model updated.  :func:`score_batch` reproduces those semantics at batch
granularity:

* **observed** is exact per event — an overlay dictionary starts from the
  pre-batch window values and accumulates the batch's entry changes in event
  order, so each arrival reads the same window value it would have seen on
  the per-event engine (including earlier same-batch shifts/expiries and
  repeated hits on the same coordinate);
* **predicted** uses the factors at the *start* of the batch for every
  arrival in it (the model adapts once per batch, so there is no
  mid-batch factor state to predict from);
* the model's ``update_batch`` runs only after every arrival is scored, so
  an anomaly can never dilute its own score.

Because predictions use batch-start factors, scores differ slightly from the
per-event engine's (which re-predicts after every update) — the two engines
are compared on detection *quality*, not bit-equality.  Within the batched
engine the scores are exactly resumable: batch boundaries are a deterministic
function of the processor's pending-event state, so a checkpoint taken
between batches (with the detector's state in the ``extra`` payload) restores
a run that emits the identical score stream.
"""

from __future__ import annotations

from repro.anomaly.detector import AnomalyScore, ZScoreDetector
from repro.stream.deltas import DeltaBatch

Coordinate = tuple[int, ...]


def score_batch(
    model,
    batch: DeltaBatch,
    detector: ZScoreDetector,
) -> list[AnomalyScore]:
    """Score every arrival in ``batch``, then hand it to ``model.update_batch``.

    ``model`` is a :class:`~repro.core.base.ContinuousCPD` that was
    initialised on the window the batch will be applied to; the batch is
    consumed exactly once (by the model), so callers must *not* apply it
    again.  Returns the scores in event order.
    """
    tensor = model.window.tensor
    overlay: dict[Coordinate, float] = {}
    pending: list[tuple[Coordinate, float, float]] = []
    for record, step, entries in batch.entry_groups():
        for coordinate, change in entries:
            base = overlay.get(coordinate)
            if base is None:
                base = tensor.get(coordinate)
            overlay[coordinate] = base + change
        if step == 0:
            coordinate = entries[0][0]
            error = overlay[coordinate] - model.reconstruction_at(coordinate)
            # An arrival fires at its record's timestamp, so detection is
            # immediate — the same zero-delay semantics as the per-event loop.
            pending.append((coordinate, error, record.time))
    scores = [
        detector.observe(
            coordinate=coordinate,
            error=error,
            event_time=time,
            detection_time=time,
        )
        for coordinate, error, time in pending
    ]
    model.update_batch(batch)
    return scores
