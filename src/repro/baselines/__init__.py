"""Conventional-CPD baselines used in the paper's evaluation (Section VI-A).

All baselines operate on the tensor window but, unlike SliceNStitch, they
update their factor matrices only **once per period** ``T`` — the defining
limitation the paper's continuous model removes.  Following the paper, each
baseline was "modified ... to decompose the tensor window" rather than the
ever-growing full tensor.

* :class:`~repro.baselines.periodic_als.PeriodicALS` — batch ALS re-run on the
  window every period; also the reference for *relative fitness*.
* :class:`~repro.baselines.online_scp.OnlineSCP` — Zhou et al., "Online CP
  decomposition for sparse tensors" (ICDM 2018): incremental auxiliary
  matrices per non-time mode, adapted to a sliding window by subtracting the
  contribution of the slice that leaves the window.
* :class:`~repro.baselines.cp_stream.CPStream` — Smith et al., "Streaming
  tensor factorization for infinite data sources" (SDM 2018): a forgetting
  factor weighs historical information when the non-time factors are updated.
* :class:`~repro.baselines.necpd.NeCPD` — Anaissi et al.: stochastic gradient
  descent with Nesterov acceleration, ``n`` passes over the window's
  non-zeros per period.
"""

from repro.baselines.base import BaselineConfig, PeriodicCPD
from repro.baselines.periodic_als import PeriodicALS
from repro.baselines.online_scp import OnlineSCP
from repro.baselines.cp_stream import CPStream
from repro.baselines.necpd import NeCPD
from repro.baselines.registry import (
    BASELINES,
    available_baselines,
    create_baseline,
)

__all__ = [
    "BaselineConfig",
    "PeriodicCPD",
    "PeriodicALS",
    "OnlineSCP",
    "CPStream",
    "NeCPD",
    "BASELINES",
    "available_baselines",
    "create_baseline",
]
