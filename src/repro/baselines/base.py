"""Shared interface of the once-per-period baseline methods.

A :class:`PeriodicCPD` mirrors :class:`repro.core.base.ContinuousCPD` but its
``update_period(window)`` hook is invoked by the experiment runner only when a
period boundary is crossed, with the window already advanced to the boundary.
Between boundaries its factor matrices are frozen — exactly the behaviour the
paper contrasts SliceNStitch against (Fig. 4 shows baselines as dots once per
period while SliceNStitch is a continuous line).
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, RankError, ShapeError
from repro.stream.window import TensorWindow
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.sparse import SparseTensor


@dataclasses.dataclass(frozen=True, slots=True)
class BaselineConfig:
    """Hyper-parameters shared by the baseline methods.

    Attributes
    ----------
    rank:
        CP rank ``R``.
    n_iterations:
        Inner iterations per period (ALS sweeps for :class:`PeriodicALS`,
        SGD passes for :class:`NeCPD`; ignored by the closed-form updates of
        OnlineSCP / CP-stream).
    forgetting:
        Forgetting factor of CP-stream (weight of historical information).
    learning_rate:
        SGD step size of NeCPD.
    momentum:
        Nesterov momentum coefficient of NeCPD.
    regularization:
        Ridge added before inverting ``R x R`` systems.
    seed:
        Seed of the random generator (SGD shuffling).
    """

    rank: int
    n_iterations: int = 1
    forgetting: float = 0.98
    learning_rate: float = 1e-4
    momentum: float = 0.5
    regularization: float = 1e-9
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise RankError(f"rank must be positive, got {self.rank}")
        if self.n_iterations <= 0:
            raise ConfigurationError(
                f"n_iterations must be positive, got {self.n_iterations}"
            )
        if not 0.0 < self.forgetting <= 1.0:
            raise ConfigurationError(
                f"forgetting must lie in (0, 1], got {self.forgetting}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if not 0.0 <= self.momentum < 1.0:
            raise ConfigurationError(
                f"momentum must lie in [0, 1), got {self.momentum}"
            )
        if self.regularization < 0:
            raise ConfigurationError(
                f"regularization must be >= 0, got {self.regularization}"
            )


class PeriodicCPD(abc.ABC):
    """Base class of the once-per-period conventional-CPD baselines."""

    #: Registry name, set by subclasses.
    name: str = "periodic_cpd"

    def __init__(self, config: BaselineConfig) -> None:
        self._config = config
        self._window: TensorWindow | None = None
        self._factors: list[np.ndarray] = []
        self._rng = np.random.default_rng(config.seed)
        self._n_period_updates = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def config(self) -> BaselineConfig:
        """Hyper-parameters of this instance."""
        return self._config

    @property
    def rank(self) -> int:
        """CP rank ``R``."""
        return self._config.rank

    @property
    def window(self) -> TensorWindow:
        """The tensor window this baseline tracks."""
        self._require_initialized()
        return self._window  # type: ignore[return-value]

    @property
    def factors(self) -> list[np.ndarray]:
        """The live factor matrices."""
        self._require_initialized()
        return self._factors

    @property
    def n_period_updates(self) -> int:
        """Number of period updates performed so far."""
        return self._n_period_updates

    @property
    def order(self) -> int:
        """Tensor order ``M``."""
        return self.window.order

    @property
    def time_mode(self) -> int:
        """Index of the time mode (the last mode)."""
        return self.window.order - 1

    @property
    def decomposition(self) -> KruskalTensor:
        """Current factorization as a :class:`KruskalTensor`."""
        self._require_initialized()
        return KruskalTensor([factor.copy() for factor in self._factors])

    @property
    def n_parameters(self) -> int:
        """Number of model parameters (factor-matrix entries)."""
        self._require_initialized()
        return int(sum(factor.size for factor in self._factors))

    def _require_initialized(self) -> None:
        if self._window is None:
            raise NotFittedError(
                f"{type(self).__name__} must be initialized before use"
            )

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    def initialize(
        self,
        window: TensorWindow,
        factors: Sequence[np.ndarray] | KruskalTensor,
    ) -> None:
        """Adopt the current window and starting factor matrices."""
        if isinstance(factors, KruskalTensor):
            factors = factors.absorb_weights().factors
        factors = [np.array(f, dtype=np.float64, copy=True) for f in factors]
        if len(factors) != window.order:
            raise ShapeError(
                f"{len(factors)} factor matrices for an order-{window.order} window"
            )
        for mode, factor in enumerate(factors):
            expected = (window.shape[mode], self._config.rank)
            if factor.shape != expected:
                raise ShapeError(
                    f"factor {mode} has shape {factor.shape}, expected {expected}"
                )
        self._window = window
        self._factors = factors
        self._n_period_updates = 0
        self._post_initialize()

    def _post_initialize(self) -> None:
        """Hook for subclasses that maintain auxiliary state."""

    def update_period(self) -> None:
        """React to a period boundary: the window has advanced by ``T``."""
        self._require_initialized()
        self._update_period()
        self._n_period_updates += 1

    @abc.abstractmethod
    def _update_period(self) -> None:
        """Algorithm-specific once-per-period update."""

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def fitness(self, tensor: SparseTensor | None = None) -> float:
        """Fitness of the current factorization against ``tensor`` (default: the window)."""
        target = self.window.tensor if tensor is None else tensor
        return self.decomposition.fitness(target)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _solve(self, gram_product: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``x @ gram_product = rhs`` rows with a ridge, i.e. ``rhs @ pinv``."""
        ridge = self._config.regularization * np.eye(gram_product.shape[0])
        try:
            return np.linalg.solve((gram_product + ridge).T, rhs.T).T
        except np.linalg.LinAlgError:
            return rhs @ np.linalg.pinv(gram_product + ridge)
