"""CP-stream baseline (Smith, Huang, Sidiropoulos, Karypis — SDM 2018).

CP-stream factorises an infinite stream of tensor slices: every period it

1. projects the newly completed slice onto the current non-time factors to
   obtain the new time-factor row (a ridge-regularised least-squares solve),
2. updates each non-time factor from accumulated statistics in which older
   slices are down-weighted by a forgetting factor ``γ`` — the defining
   difference from OnlineSCP's unweighted accumulation.

As in the paper's evaluation, the baseline is adapted to score the tensor
window: the time factor exposed for fitness evaluation is the stack of the
``W`` most recent slice rows.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.baselines.base import BaselineConfig, PeriodicCPD
from repro.tensor.products import hadamard_all

Coordinate = tuple[int, ...]


class CPStream(PeriodicCPD):
    """Streaming CP decomposition with a forgetting factor."""

    name = "cp_stream"

    def __init__(self, config: BaselineConfig) -> None:
        super().__init__(config)
        self._gram_acc: list[np.ndarray] = []
        self._mttkrp_acc: list[np.ndarray] = []
        self._recent_rows: collections.deque[np.ndarray] = collections.deque()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _post_initialize(self) -> None:
        """Seed the accumulators by replaying the initial window's units."""
        window = self.window
        n_categorical = self.order - 1
        self._gram_acc = [
            np.zeros((self.rank, self.rank)) for _ in range(n_categorical)
        ]
        self._mttkrp_acc = [
            np.zeros_like(self._factors[m]) for m in range(n_categorical)
        ]
        self._recent_rows = collections.deque(maxlen=window.window_length)
        for unit in range(window.window_length):
            entries = list(window.unit_entries(unit))
            time_row = self._factors[self.time_mode][unit, :].copy()
            self._accumulate(entries, time_row)
            self._recent_rows.append(time_row)

    # ------------------------------------------------------------------
    # Once-per-period update
    # ------------------------------------------------------------------
    def _update_period(self) -> None:
        window = self.window
        newest = window.window_length - 1
        entries = list(window.unit_entries(newest))
        time_row = self._solve_time_row(entries)
        self._accumulate(entries, time_row)
        self._recent_rows.append(time_row)
        for mode in range(self.order - 1):
            self._factors[mode] = self._solve(
                self._gram_acc[mode], self._mttkrp_acc[mode]
            )
        time_factor = np.zeros_like(self._factors[self.time_mode])
        offset = window.window_length - len(self._recent_rows)
        for position, row in enumerate(self._recent_rows):
            time_factor[offset + position, :] = row
        self._factors[self.time_mode] = time_factor

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _solve_time_row(self, entries: list[tuple[Coordinate, float]]) -> np.ndarray:
        numerator = np.zeros(self.rank, dtype=np.float64)
        for coordinate, value in entries:
            numerator += value * self._categorical_product(coordinate)
        grams = hadamard_all(
            [
                self._factors[m].T @ self._factors[m]
                for m in range(self.order - 1)
            ]
        )
        return self._solve(grams, numerator[None, :])[0]

    def _categorical_product(
        self, coordinate: Coordinate, skip: int | None = None
    ) -> np.ndarray:
        product = np.ones(self.rank, dtype=np.float64)
        for mode in range(self.order - 1):
            if mode == skip:
                continue
            product *= self._factors[mode][coordinate[mode], :]
        return product

    def _accumulate(
        self, entries: list[tuple[Coordinate, float]], time_row: np.ndarray
    ) -> None:
        """Fold one slice into the forgetting-weighted accumulators."""
        forgetting = self._config.forgetting
        n_categorical = self.order - 1
        time_outer = np.outer(time_row, time_row)
        for mode in range(n_categorical):
            other_grams = [
                self._factors[m].T @ self._factors[m]
                for m in range(n_categorical)
                if m != mode
            ]
            base = hadamard_all(other_grams) if other_grams else np.ones(
                (self.rank, self.rank)
            )
            self._gram_acc[mode] = forgetting * self._gram_acc[mode] + base * time_outer
            slice_mttkrp = np.zeros_like(self._factors[mode])
            for coordinate, value in entries:
                partial = self._categorical_product(coordinate, skip=mode) * time_row
                slice_mttkrp[coordinate[mode], :] += value * partial
            self._mttkrp_acc[mode] = (
                forgetting * self._mttkrp_acc[mode] + slice_mttkrp
            )
