"""NeCPD baseline (Anaissi, Suleiman, Zandavi — arXiv 2020).

NeCPD performs stochastic gradient descent with Nesterov's accelerated
gradient over the non-zeros of the tensor, updating every factor matrix row
touched by each non-zero.  The paper evaluates ``NeCPD(n)`` with ``n``
SGD passes per period; here ``n`` is ``BaselineConfig.n_iterations``.

The squared-error objective for one non-zero ``x_J`` is
``(x_J - sum_r prod_m a(m)_{j_m r})^2``; its gradient with respect to the row
``A(m)(j_m, :)`` is ``-2 e * prod_{n != m} A(n)(j_n, :)`` with
``e = x_J - x̂_J``.  Nesterov momentum is applied per factor matrix with a
velocity buffer of the same shape (only touched rows carry non-zero
velocity).

Because the window tensor is sparse, optimising over the non-zeros alone lets
the reconstruction grow unchecked on the (implicitly zero) rest of the
window, which hurts fitness.  Each SGD pass therefore also visits one
uniformly sampled coordinate per non-zero whose target is the stored window
value (almost always zero) — the standard negative-sampling treatment of
sparse tensor SGD.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, PeriodicCPD


class NeCPD(PeriodicCPD):
    """SGD with Nesterov acceleration, ``n_iterations`` passes per period."""

    name = "necpd"

    def __init__(self, config: BaselineConfig) -> None:
        super().__init__(config)
        self._velocities: list[np.ndarray] = []

    def _post_initialize(self) -> None:
        self._velocities = [np.zeros_like(factor) for factor in self._factors]

    # ------------------------------------------------------------------
    # Once-per-period update
    # ------------------------------------------------------------------
    def _update_period(self) -> None:
        # Keep the warm start aligned with the slid window (one unit older).
        time_factor = self._factors[self.time_mode]
        time_factor[:-1, :] = time_factor[1:, :]
        self._velocities[self.time_mode][:] = 0.0
        tensor = self.window.tensor
        indices, values = tensor.to_coo_arrays()
        if values.size == 0:
            return
        n_nonzeros = values.size
        shape = tensor.shape
        for iteration in range(self._config.n_iterations):
            # Diminishing step size across passes keeps multi-pass runs stable.
            step_scale = 1.0 / (1.0 + iteration)
            order = self._rng.permutation(n_nonzeros)
            negatives = np.column_stack(
                [self._rng.integers(0, length, size=n_nonzeros) for length in shape]
            )
            for position in order:
                self._sgd_step(indices[position], values[position], step_scale)
                negative = negatives[position]
                self._sgd_step(
                    negative, tensor.get(tuple(int(i) for i in negative)), step_scale
                )

    # ------------------------------------------------------------------
    # One SGD step
    # ------------------------------------------------------------------
    def _sgd_step(
        self, coordinate: np.ndarray, value: float, step_scale: float = 1.0
    ) -> None:
        learning_rate = self._config.learning_rate * step_scale
        momentum = self._config.momentum
        # Nesterov look-ahead rows.
        lookahead_rows = []
        for mode, factor in enumerate(self._factors):
            index = int(coordinate[mode])
            lookahead_rows.append(
                factor[index, :] + momentum * self._velocities[mode][index, :]
            )
        # Error at the look-ahead point.
        product = np.ones(self.rank, dtype=np.float64)
        for row in lookahead_rows:
            product = product * row
        error = float(product.sum()) - float(value)
        # Per-mode gradient and velocity/parameter update.
        for mode in range(self.order):
            index = int(coordinate[mode])
            others = np.ones(self.rank, dtype=np.float64)
            for other_mode, row in enumerate(lookahead_rows):
                if other_mode == mode:
                    continue
                others = others * row
            gradient = error * others
            velocity = (
                momentum * self._velocities[mode][index, :]
                - learning_rate * gradient
            )
            self._velocities[mode][index, :] = velocity
            self._factors[mode][index, :] += velocity
