"""OnlineSCP baseline (Zhou, Erfani, Bailey — ICDM 2018), window-adapted.

OnlineSCP incrementally maintains, for every non-time mode ``m``, the two
auxiliary matrices that define the least-squares solution of ``A(m)``:

* ``P(m)`` — the accumulated MTTKRP contributions of the slices seen so far,
* ``Q(m)`` — the accumulated Hadamard-of-Grams weights of those slices,

so that ``A(m) = P(m) Q(m)^+`` after each new slice, and the time factor
simply grows by one row per slice (the least-squares projection of the new
slice onto the current non-time factors).

As in the paper's evaluation, the baseline here decomposes the **tensor
window** rather than the full history: the per-slice contributions are kept
in a deque of length ``W`` and the contribution of the slice that leaves the
window is subtracted from ``P(m)`` and ``Q(m)``.  Contributions are computed
with the factor matrices current at the time the slice entered — the same
"stale auxiliary" approximation the original incremental method makes.

The update fires once per period, on the unit that has just been completed
(the newest window unit at a period boundary).
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro.baselines.base import BaselineConfig, PeriodicCPD
from repro.tensor.products import hadamard_all

Coordinate = tuple[int, ...]


@dataclasses.dataclass(slots=True)
class _SliceContribution:
    """Per-slice auxiliary contributions kept while the slice is in the window."""

    time_row: np.ndarray
    mttkrp: list[np.ndarray]  # one (N_m, R) array per non-time mode
    gram_weight: list[np.ndarray]  # one (R, R) array per non-time mode


class OnlineSCP(PeriodicCPD):
    """Sliding-window OnlineSCP: closed-form updates from accumulated auxiliaries."""

    name = "online_scp"

    def __init__(self, config: BaselineConfig) -> None:
        super().__init__(config)
        self._contributions: collections.deque[_SliceContribution] = collections.deque()
        self._p_matrices: list[np.ndarray] = []
        self._q_matrices: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _post_initialize(self) -> None:
        """Seed the auxiliaries from the initial window and factors."""
        window = self.window
        n_categorical = self.order - 1
        self._p_matrices = [
            np.zeros_like(self._factors[m]) for m in range(n_categorical)
        ]
        self._q_matrices = [
            np.zeros((self.rank, self.rank)) for _ in range(n_categorical)
        ]
        self._contributions.clear()
        for unit in range(window.window_length):
            entries = list(window.unit_entries(unit))
            time_row = self._factors[self.time_mode][unit, :].copy()
            contribution = self._build_contribution(entries, time_row)
            self._push_contribution(contribution)

    # ------------------------------------------------------------------
    # Once-per-period update
    # ------------------------------------------------------------------
    def _update_period(self) -> None:
        window = self.window
        newest = window.window_length - 1
        entries = list(window.unit_entries(newest))
        # 1. Project the newly completed slice onto the current non-time
        #    factors to obtain its time-factor row.
        time_row = self._solve_time_row(entries)
        # 2. Add its contribution, dropping the slice that left the window.
        contribution = self._build_contribution(entries, time_row)
        self._push_contribution(contribution)
        while len(self._contributions) > window.window_length:
            self._pop_contribution()
        # 3. Closed-form update of every non-time factor from the auxiliaries.
        for mode in range(self.order - 1):
            self._factors[mode] = self._solve(
                self._q_matrices[mode], self._p_matrices[mode]
            )
        # 4. The time factor is the stack of the in-window slices' rows.
        time_factor = np.zeros_like(self._factors[self.time_mode])
        offset = window.window_length - len(self._contributions)
        for position, stored in enumerate(self._contributions):
            time_factor[offset + position, :] = stored.time_row
        self._factors[self.time_mode] = time_factor

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _solve_time_row(self, entries: list[tuple[Coordinate, float]]) -> np.ndarray:
        numerator = np.zeros(self.rank, dtype=np.float64)
        for coordinate, value in entries:
            numerator += value * self._categorical_product(coordinate)
        grams = hadamard_all(
            [
                self._factors[m].T @ self._factors[m]
                for m in range(self.order - 1)
            ]
        )
        return self._solve(grams, numerator[None, :])[0]

    def _categorical_product(
        self, coordinate: Coordinate, skip: int | None = None
    ) -> np.ndarray:
        """Hadamard product of the categorical factor rows at ``coordinate``."""
        product = np.ones(self.rank, dtype=np.float64)
        for mode in range(self.order - 1):
            if mode == skip:
                continue
            product *= self._factors[mode][coordinate[mode], :]
        return product

    def _build_contribution(
        self, entries: list[tuple[Coordinate, float]], time_row: np.ndarray
    ) -> _SliceContribution:
        n_categorical = self.order - 1
        mttkrp = [np.zeros_like(self._factors[m]) for m in range(n_categorical)]
        for coordinate, value in entries:
            for mode in range(n_categorical):
                partial = self._categorical_product(coordinate, skip=mode) * time_row
                mttkrp[mode][coordinate[mode], :] += value * partial
        gram_weight = []
        time_outer = np.outer(time_row, time_row)
        for mode in range(n_categorical):
            other_grams = [
                self._factors[m].T @ self._factors[m]
                for m in range(n_categorical)
                if m != mode
            ]
            base = hadamard_all(other_grams) if other_grams else np.ones(
                (self.rank, self.rank)
            )
            gram_weight.append(base * time_outer)
        return _SliceContribution(
            time_row=time_row.copy(), mttkrp=mttkrp, gram_weight=gram_weight
        )

    def _push_contribution(self, contribution: _SliceContribution) -> None:
        self._contributions.append(contribution)
        for mode in range(self.order - 1):
            self._p_matrices[mode] += contribution.mttkrp[mode]
            self._q_matrices[mode] += contribution.gram_weight[mode]

    def _pop_contribution(self) -> None:
        expired = self._contributions.popleft()
        for mode in range(self.order - 1):
            self._p_matrices[mode] -= expired.mttkrp[mode]
            self._q_matrices[mode] -= expired.gram_weight[mode]
