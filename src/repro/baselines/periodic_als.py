"""Batch ALS re-run on the tensor window once per period.

This is the "ALS" baseline of the paper's evaluation and the denominator of
the *relative fitness* metric.  Warm-starting from the previous factors keeps
the per-period cost reasonable while matching the offline algorithm's
accuracy after a few sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp
from repro.baselines.base import PeriodicCPD
from repro.tensor.products import hadamard_all


class PeriodicALS(PeriodicCPD):
    """Full ALS sweeps over the window at every period boundary."""

    name = "als"

    def _update_period(self) -> None:
        tensor = self.window.tensor
        # Between two boundaries the window slid by exactly one tensor unit,
        # so rolling the time factor keeps the warm start aligned with the
        # data before re-fitting.
        time_factor = self._factors[self.time_mode]
        time_factor[:-1, :] = time_factor[1:, :]
        grams = [factor.T @ factor for factor in self._factors]
        for _ in range(self._config.n_iterations):
            for mode in range(self.order):
                numerator = mttkrp(tensor, self._factors, mode)
                hadamard = hadamard_all(
                    [g for other, g in enumerate(grams) if other != mode]
                )
                self._factors[mode] = self._solve(hadamard, numerator)
                grams[mode] = self._factors[mode].T @ self._factors[mode]


class OracleALS(PeriodicALS):
    """ALS from a fresh random start with more sweeps (offline reference).

    Used by the relative-fitness computation when a stronger offline
    reference than the warm-started periodic ALS is wanted.
    """

    name = "oracle_als"

    def _update_period(self) -> None:
        self._factors = [
            self._rng.random(factor.shape) for factor in self._factors
        ]
        for _ in range(3):
            super()._update_period()
