"""Registry mapping baseline names to classes (plus paper-style labels)."""

from __future__ import annotations

from repro.baselines.base import BaselineConfig, PeriodicCPD
from repro.baselines.cp_stream import CPStream
from repro.baselines.necpd import NeCPD
from repro.baselines.online_scp import OnlineSCP
from repro.baselines.periodic_als import OracleALS, PeriodicALS
from repro.exceptions import UnknownAlgorithmError

#: Name -> class for every once-per-period baseline.
BASELINES: dict[str, type[PeriodicCPD]] = {
    PeriodicALS.name: PeriodicALS,
    OracleALS.name: OracleALS,
    OnlineSCP.name: OnlineSCP,
    CPStream.name: CPStream,
    NeCPD.name: NeCPD,
}

#: Display labels matching the paper's figures.
DISPLAY_NAMES: dict[str, str] = {
    "als": "ALS",
    "oracle_als": "ALS (cold start)",
    "online_scp": "OnlineSCP",
    "cp_stream": "CP-stream",
    "necpd": "NeCPD",
}


def available_baselines() -> list[str]:
    """Names of all registered baselines."""
    return sorted(BASELINES)


def create_baseline(name: str, config: BaselineConfig) -> PeriodicCPD:
    """Instantiate a baseline by name.

    ``"necpd(n)"`` style names (e.g. ``"necpd(10)"``) are accepted and set
    the number of SGD passes, matching the paper's ``NeCPD(1)`` /
    ``NeCPD(10)`` notation.
    """
    if name.startswith("necpd(") and name.endswith(")"):
        n_iterations = int(name[len("necpd(") : -1])
        config = BaselineConfig(
            rank=config.rank,
            n_iterations=n_iterations,
            forgetting=config.forgetting,
            learning_rate=config.learning_rate,
            momentum=config.momentum,
            regularization=config.regularization,
            seed=config.seed,
        )
        name = "necpd"
    try:
        baseline_class = BASELINES[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown baseline {name!r}; available: {available_baselines()}"
        ) from None
    return baseline_class(config)


def display_name(name: str) -> str:
    """Paper-style label for a baseline name (falls back to the raw name)."""
    if name.startswith("necpd(") and name.endswith(")"):
        return f"NeCPD ({name[len('necpd('):-1]})"
    return DISPLAY_NAMES.get(name, name)
