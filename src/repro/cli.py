"""Command-line interface: regenerate any experiment from a terminal.

Examples
--------
::

    python -m repro.cli fig4 --dataset chicago_crime --max-events 2000
    python -m repro.cli fig5 --max-events 1500
    python -m repro.cli table2
    slicenstitch fig9 --dataset nyc_taxi
    slicenstitch serve --port 7342 --checkpoint-root ./state
    slicenstitch lint --format json

``serve`` starts the multi-tenant streaming service
(:mod:`repro.service`); ``lint`` runs the static invariant checkers
(:mod:`repro.analysis`); every other subcommand reproduces one experiment.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.data.datasets import DATASETS, PAPER_DATASETS
from repro.experiments.anomaly_experiment import (
    format_anomaly_experiment,
    run_anomaly_experiment,
)
from repro.experiments.config import ExperimentSettings, table_iii_rows
from repro.experiments.eta_sweep import format_eta_sweep, run_eta_sweep
from repro.experiments.fitness_over_time import (
    format_fitness_over_time,
    run_fitness_over_time,
)
from repro.experiments.granularity import format_granularity, run_granularity
from repro.experiments.reporting import format_table
from repro.experiments.scalability import format_scalability, run_scalability
from repro.experiments.speed_fitness import format_speed_fitness, run_speed_fitness
from repro.experiments.theta_sweep import format_theta_sweep, run_theta_sweep

EXPERIMENTS = (
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table2",
    "table3",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="slicenstitch",
        description="Reproduce the SliceNStitch (ICDE 2021) experiments.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS, help="experiment to run")
    parser.add_argument(
        "--dataset",
        default="nyc_taxi",
        choices=sorted(DATASETS),
        help="synthetic dataset to use (single-dataset experiments)",
    )
    parser.add_argument(
        "--max-events", type=int, default=2000, help="events replayed after warm-up"
    )
    parser.add_argument(
        "--scale", type=float, default=0.3, help="dataset size multiplier"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--n-checkpoints",
        type=int,
        default=20,
        metavar="N",
        help=(
            "number of fitness samples taken over the replay (the cadence "
            "is max-events / N); keep the implied cadence fixed across an "
            "interrupted run and its --resume continuation to get "
            "identically-placed samples"
        ),
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help=(
            "replay events through the batched engine (run_batched / "
            "update_batch): higher throughput, results equivalent for the "
            "SliceNStitch variants and for the periodic baselines (both "
            "engines update baselines at exact period boundaries)"
        ),
    )
    parser.add_argument(
        "--sampling",
        choices=("vectorized", "legacy"),
        default="vectorized",
        help=(
            "slice sampler of the randomised variants (SNS-RND / SNS-RND+): "
            "'vectorized' draws all θ coordinates in one batched pass (fast "
            "default), 'legacy' reproduces the original per-draw stream "
            "bit-for-bit"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help=(
            "kernel backend for the model hot path: 'numpy' is the "
            "always-available reference, 'numba' JIT-compiles the kernels "
            "(falls back to numpy with a warning when numba is not "
            "importable), 'auto' (default) picks numba when available "
            "and honours REPRO_KERNEL_BACKEND"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "shard count for the relaxed-consistency sharded update path "
            "(repro.shard): every batch is partitioned into N shared-nothing "
            "shards whose factor-row updates run as parallel kernel calls "
            "against a shared snapshot.  1 (default) keeps the exact path; "
            "> 1 implies --batched"
        ),
    )
    parser.add_argument(
        "--staleness",
        type=int,
        default=0,
        metavar="S",
        help=(
            "batches between Gram synchronizations of the sharded path: 0 "
            "(default) re-snapshots the factors every batch, S lets shards "
            "work against state up to S batches old (faster, bounded "
            "fitness deviation — see benchmarks/results/BENCH_sharded.json)."
            "  > 0 implies --batched"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist the full run state of every continuous method under "
            "DIR/<method> (window, scheduler, factors, RNG stream); an "
            "interrupted run restarted with --resume continues exactly "
            "where it stopped"
        ),
    )
    parser.add_argument(
        "--checkpoint-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --checkpoint-dir: save a checkpoint every N replayed "
            "events (default: only at the end of the run)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume each continuous method from its checkpoint under "
            "--checkpoint-dir when one exists, replaying only the remaining "
            "events up to --max-events; the result is exactly what an "
            "uninterrupted run would have produced"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the experiment fan-out: prepare once, "
            "snapshot the prepared state, and replay independent "
            "method/sweep-point tasks in parallel (results identical to a "
            "sequential run; a killed worker's task resumes from its "
            "crash-recovery checkpoint).  1 (default) runs sequentially "
            "in-process"
        ),
    )
    return parser


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        dataset=args.dataset,
        scale=args.scale,
        max_events=args.max_events,
        n_checkpoints=args.n_checkpoints,
        seed=args.seed,
        batched=args.batched or args.shards > 1 or args.staleness > 0,
        sampling=args.sampling,
        backend=args.backend,
        shards=args.shards,
        staleness=args.staleness,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_events=args.checkpoint_events,
        resume=args.resume,
        n_workers=args.workers,
    )


def run(argv: Sequence[str] | None = None) -> str:
    """Run the selected experiment and return its text report.

    The ``serve`` subcommand is special: it starts the streaming service
    (which blocks until shutdown) and returns an empty report.  ``lint``
    is too: it runs the static checkers and exits with their status
    (0 clean, 1 findings) via :class:`SystemExit`.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["serve"]:
        from repro.service.cli import main as serve_main

        serve_main(argv[1:])
        return ""
    if argv[:1] == ["lint"]:
        from repro.analysis.cli import main as lint_main

        raise SystemExit(lint_main(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.backend != "auto":
        # Pin the process-wide default too, so helper models constructed
        # outside ExperimentSettings (warm-up ALS, ad-hoc scoring) resolve
        # to the same backend as the streamed methods.
        from repro.kernels.registry import set_default_backend

        set_default_backend(args.backend)
    if args.experiment == "fig1":
        return format_granularity(run_granularity(_settings(args)))
    if args.experiment == "fig4":
        return format_fitness_over_time(run_fitness_over_time(_settings(args)))
    if args.experiment == "fig5":
        overrides = {
            "scale": args.scale,
            "max_events": args.max_events,
            "n_checkpoints": args.n_checkpoints,
            "seed": args.seed,
            "batched": args.batched or args.shards > 1 or args.staleness > 0,
            "sampling": args.sampling,
            "backend": args.backend,
            "shards": args.shards,
            "staleness": args.staleness,
            "checkpoint_dir": args.checkpoint_dir,
            "checkpoint_events": args.checkpoint_events,
            "resume": args.resume,
            "n_workers": args.workers,
        }
        return format_speed_fitness(run_speed_fitness(settings_overrides=overrides))
    if args.experiment == "fig6":
        return format_scalability(run_scalability(_settings(args)))
    if args.experiment == "fig7":
        return format_theta_sweep(run_theta_sweep(_settings(args)))
    if args.experiment == "fig8":
        return format_eta_sweep(run_eta_sweep(_settings(args)))
    if args.experiment == "fig9":
        return format_anomaly_experiment(run_anomaly_experiment(_settings(args)))
    if args.experiment == "table2":
        rows = [
            (
                info.name,
                info.description,
                "x".join(str(n) for n in info.shape),
                info.n_nonzeros,
                info.density,
            )
            for info in PAPER_DATASETS.values()
        ]
        return format_table(
            ("name", "description", "size", "# non-zeros", "density"),
            rows,
            title="Table II — real datasets of the paper (metadata only)",
        )
    if args.experiment == "table3":
        return format_table(
            ("dataset", "R", "W", "T (period)", "theta", "eta"),
            table_iii_rows(),
            title="Table III — default hyper-parameters (synthetic equivalents)",
        )
    raise AssertionError(f"unhandled experiment {args.experiment}")


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    print(run(argv))
    return 0


if __name__ == "__main__":
    sys.exit(main())
