"""SliceNStitch: online CP decomposition in the continuous tensor model.

This package contains the paper's primary contribution — the family of online
update algorithms of Section V:

* :class:`~repro.core.sns_mat.SNSMat` — one ALS sweep per event (Algorithm 2),
* :class:`~repro.core.sns_vec.SNSVec` — row-wise least-squares updates
  (Algorithms 3-4, Eqs. 9/12/13),
* :class:`~repro.core.sns_rnd.SNSRnd` — sampled row updates bounded by the
  threshold ``θ`` (Eqs. 16/17),
* :class:`~repro.core.sns_vec_plus.SNSVecPlus` and
  :class:`~repro.core.sns_rnd_plus.SNSRndPlus` — coordinate-descent updates
  with clipping at ``η`` (Algorithm 5, Eqs. 20-26), the paper's recommended
  stable variants.

All algorithms share the :class:`~repro.core.base.ContinuousCPD` interface:
``initialize`` with a window and starting factors, then ``update`` once per
window event (arrival / shift / expiry).
"""

from repro.core.base import ContinuousCPD, SNSConfig
from repro.core.sns_mat import SNSMat
from repro.core.sns_vec import SNSVec
from repro.core.sns_rnd import SNSRnd
from repro.core.sns_vec_plus import SNSVecPlus
from repro.core.sns_rnd_plus import SNSRndPlus
from repro.core.registry import ALGORITHMS, available_algorithms, create_algorithm

__all__ = [
    "ContinuousCPD",
    "SNSConfig",
    "SNSMat",
    "SNSVec",
    "SNSRnd",
    "SNSVecPlus",
    "SNSRndPlus",
    "ALGORITHMS",
    "available_algorithms",
    "create_algorithm",
]
