"""Shared infrastructure of the SliceNStitch algorithm family.

Every algorithm in :mod:`repro.core` follows the same life cycle:

1. ``initialize(window, factors)`` — adopt the current tensor window and a
   starting CP decomposition (in the paper and in our experiments, the result
   of batch ALS on the initial window), and build the Gram matrices
   ``Q(m) = A(m)'A(m)`` that all update rules rely on.
2. ``update(delta)`` — react to one window event.  The caller (normally
   :class:`repro.stream.processor.ContinuousStreamProcessor` via the
   experiment runner) applies the delta to the window *before* calling
   ``update``, so ``self.window.tensor`` always equals the paper's
   ``X + ΔX`` while ``delta`` carries ``ΔX`` itself.
3. ``update_batch(batch)`` — react to a coalesced
   :class:`~repro.stream.deltas.DeltaBatch` of events drained by the batched
   engine (``ContinuousStreamProcessor.run_batched``).  Here the model owns
   the window mutation and interleaves it with the factor updates, so the
   result is exactly equivalent to the per-event path; the default loops over
   the batch, and the deterministic variants override it to share per-event
   setup (hoisted Hadamard-of-Gram inverses, one COO conversion per sweep).

The base class also centralises the bookkeeping helpers shared by several
variants: rank-one Gram updates (Eq. 13 / Eqs. 24-25), previous-Gram updates
(Eq. 17 / Eq. 26), pseudo-inverses of Hadamard-of-Gram matrices, and the
fitness computation used by the evaluation.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, RankError, ShapeError
from repro.kernels.api import flatten_row_overrides
from repro.kernels.registry import resolve_backend
from repro.stream.deltas import Delta, DeltaBatch
from repro.stream.window import TensorWindow
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.products import hadamard_all
from repro.tensor.sparse import SparseTensor


@dataclasses.dataclass(frozen=True, slots=True)
class SNSConfig:
    """Hyper-parameters shared by the SliceNStitch algorithms (Table III).

    Attributes
    ----------
    rank:
        CP rank ``R``.
    theta:
        Sampling threshold ``θ`` used by the randomised variants
        (``SNSRnd`` / ``SNSRndPlus``); ignored by the others.
    eta:
        Clipping threshold ``η`` used by the stable variants
        (``SNSVecPlus`` / ``SNSRndPlus``); ignored by the others.
    regularization:
        Small Tikhonov term added before pseudo-inverting Hadamard-of-Gram
        matrices.  The paper's C++ implementation relies on exact
        pseudo-inverses; a tiny ridge keeps float64 pinv well-behaved without
        changing results materially.
    nonnegative:
        Extension beyond the paper: when True, the coordinate-descent variants
        (``SNSVecPlus`` / ``SNSRndPlus``) project every updated entry onto
        ``[0, η]`` instead of ``[-η, η]``, yielding a non-negative streaming
        CP decomposition (the constraint CP-stream supports offline; listed as
        future work for SliceNStitch).  Ignored by the other variants.
    seed:
        Seed for the sampling generator of the randomised variants.
    sampling:
        Slice-sampling implementation used by the randomised variants
        (``SNSRnd`` / ``SNSRndPlus``); ignored by the others.
        ``"vectorized"`` (the default) draws the θ coordinates in bulk over
        linearised slice offsets and hands the update rules an ``(n, M)``
        int64 array — the engine-fast path.  ``"legacy"`` reproduces the
        original per-draw tuple sampler bit-for-bit (same draw stream, same
        goldens); both sample uniformly without replacement from the same
        eligible set.
    backend:
        Kernel backend for the hot-path array math (see
        :mod:`repro.kernels`).  ``"auto"`` (the default) defers to the CLI
        ``--backend`` knob / the ``REPRO_KERNEL_BACKEND`` environment
        variable and otherwise auto-detects (numba when importable, else
        the numpy reference).  An execution detail, not a model
        hyper-parameter: checkpoints restore across backends, and the
        ``"legacy"`` sampler always runs the numpy reference to keep its
        bit-for-bit pin.
    shards:
        Number of shared-nothing shards the batched update path partitions
        each :class:`~repro.stream.deltas.DeltaBatch` into (see
        :mod:`repro.shard`).  ``1`` (the default) with ``staleness == 0``
        runs the exact single-core path — bit-identical to older releases.
        ``> 1`` engages the relaxed-consistency
        :class:`~repro.shard.executor.ShardedExecutor`: categorical factor
        rows are updated shard-locally against a shared factor snapshot and
        the temporal mode and Gram state are reconciled in a deterministic
        merge step, trading a bounded fitness deviation (measured by
        ``benchmarks/bench_sharded.py``) for parallel row updates.
    staleness:
        Number of batches that may elapse between snapshot/Gram
        synchronizations of the sharded path: ``0`` refreshes the shared
        snapshot every batch, ``s > 0`` lets shards work against factors up
        to ``s`` batches old before the next synchronization.  Any value
        ``> 0`` engages the sharded executor even with ``shards == 1``.
        Ignored by the per-event path.
    """

    rank: int
    theta: int = 20
    eta: float = 1000.0
    regularization: float = 1e-12
    nonnegative: bool = False
    seed: int | None = 0
    sampling: str = "vectorized"
    backend: str = "auto"
    shards: int = 1
    staleness: int = 0

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise RankError(f"rank must be positive, got {self.rank}")
        if self.theta <= 0:
            raise ConfigurationError(f"theta must be positive, got {self.theta}")
        if self.eta <= 0:
            raise ConfigurationError(f"eta must be positive, got {self.eta}")
        if self.regularization < 0:
            raise ConfigurationError(
                f"regularization must be >= 0, got {self.regularization}"
            )
        if self.sampling not in ("vectorized", "legacy"):
            raise ConfigurationError(
                f"sampling must be 'vectorized' or 'legacy', got {self.sampling!r}"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(
                f"backend must be a backend name or 'auto', got {self.backend!r}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.staleness < 0:
            raise ConfigurationError(
                f"staleness must be >= 0, got {self.staleness}"
            )


class ContinuousCPD(abc.ABC):
    """Base class for online CP decomposition in the continuous tensor model."""

    #: Registry name, set by subclasses (e.g. ``"sns_rnd_plus"``).
    name: str = "continuous_cpd"

    #: Sharded-path row rule (see :mod:`repro.shard.executor`): ``True`` on
    #: the clipped coordinate-descent variants (SNS+_VEC / SNS+_RND), which
    #: update shard-local rows with
    #: :func:`repro.core.rowmath.clipped_coordinate_descent`; ``False`` on
    #: the least-squares variants, which use the batched regularized solve.
    shard_clipped: bool = False

    #: ``True`` on the θ-sampled variants (SNS_RND / SNS+_RND): shard rows
    #: whose slice degree exceeds ``θ`` use the sampled residual
    #: approximation against the shard snapshot instead of the exact MTTKRP.
    shard_sampled: bool = False

    def __init__(self, config: SNSConfig) -> None:
        self._config = config
        self._window: TensorWindow | None = None
        self._factors: list[np.ndarray] = []
        self._grams: list[np.ndarray] = []
        self._rng = np.random.default_rng(config.seed)
        self._n_updates = 0
        # rank x rank ridge term added by _pinv, built once instead of per call.
        self._ridge: np.ndarray | None = (
            config.regularization * np.eye(config.rank)
            if config.regularization > 0
            else None
        )
        # Scratch buffers for the rank-one Gram updates (hot path: reused
        # instead of allocating three temporaries per row update).
        self._gram_scratch_new = np.empty((config.rank, config.rank))
        self._gram_scratch_old = np.empty((config.rank, config.rank))
        # Hot-path array kernels; unavailable explicit backends degrade to
        # the numpy reference with one warning (see repro.kernels.registry).
        self._kernels = resolve_backend(config.backend)
        # Relaxed-consistency sharded executor (repro.shard); attached by
        # initialize()/load_state() when the config asks for one, None on
        # the exact path.
        self._sharded: Any | None = None

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def config(self) -> SNSConfig:
        """Hyper-parameters of this instance."""
        return self._config

    @property
    def rank(self) -> int:
        """CP rank ``R``."""
        return self._config.rank

    @property
    def window(self) -> TensorWindow:
        """The tensor window this model tracks."""
        self._require_initialized()
        return self._window  # type: ignore[return-value]

    @property
    def factors(self) -> list[np.ndarray]:
        """The live factor matrices (mutated in place by updates)."""
        self._require_initialized()
        return self._factors

    @property
    def grams(self) -> list[np.ndarray]:
        """The maintained Gram matrices ``A(m)'A(m)``."""
        self._require_initialized()
        return self._grams

    @property
    def n_updates(self) -> int:
        """Number of ``update`` calls processed so far."""
        return self._n_updates

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend actually executing the hot path.

        May differ from ``config.backend``: ``"auto"`` resolves to a
        concrete backend, an unavailable backend degrades to ``"numpy"``,
        and the legacy sampler pins the randomised variants to the
        reference.
        """
        return self._kernels.name

    @property
    def order(self) -> int:
        """Tensor order ``M`` of the tracked window."""
        return self.window.order

    @property
    def time_mode(self) -> int:
        """Index of the time mode (the last mode)."""
        return self.window.order - 1

    @property
    def decomposition(self) -> KruskalTensor:
        """Current factorization as a :class:`KruskalTensor`."""
        self._require_initialized()
        return KruskalTensor([factor.copy() for factor in self._factors])

    @property
    def n_parameters(self) -> int:
        """Number of model parameters (factor-matrix entries, Fig. 1d)."""
        self._require_initialized()
        return int(sum(factor.size for factor in self._factors))

    def _require_initialized(self) -> None:
        if self._window is None:
            raise NotFittedError(
                f"{type(self).__name__} must be initialized before use"
            )

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    def initialize(
        self,
        window: TensorWindow,
        factors: Sequence[np.ndarray] | KruskalTensor,
    ) -> None:
        """Adopt the current window and starting factor matrices.

        ``factors`` may be a plain sequence of matrices or a
        :class:`KruskalTensor`; weights of a Kruskal tensor are absorbed into
        the first factor so the streaming algorithms work with unweighted
        factors, as in the paper.
        """
        if isinstance(factors, KruskalTensor):
            factors = factors.absorb_weights().factors
        factors = [np.array(f, dtype=np.float64, copy=True) for f in factors]
        if len(factors) != window.order:
            raise ShapeError(
                f"{len(factors)} factor matrices for an order-{window.order} window"
            )
        for mode, factor in enumerate(factors):
            expected = (window.shape[mode], self._config.rank)
            if factor.shape != expected:
                raise ShapeError(
                    f"factor {mode} has shape {factor.shape}, expected {expected}"
                )
        self._window = window
        self._factors = factors
        self._grams = [factor.T @ factor for factor in factors]
        self._n_updates = 0
        self._post_initialize()
        self._attach_sharded()

    def _post_initialize(self) -> None:
        """Hook for subclasses that maintain extra state (e.g. prev-Grams)."""

    def _attach_sharded(self) -> None:
        """(Re)build the sharded executor when the config asks for one.

        ``shards == 1 and staleness == 0`` — the exact path — keeps the
        plain per-event/batched code with no executor in the way, so every
        existing golden and bit-exactness suite runs the exact code it
        always did.
        """
        config = self._config
        if config.shards > 1 or config.staleness > 0:
            # Local import: repro.shard depends on this module.
            from repro.shard.executor import ShardedExecutor

            self._sharded = ShardedExecutor(self)
            self._prepare_sharded()
        else:
            self._sharded = None

    def _prepare_sharded(self) -> None:
        """Hook run once when the sharded executor attaches.

        Variants whose exact state layout is incompatible with shard-local
        row solves normalise it here (``SNSMat`` absorbs its column weights
        ``λ`` into the first factor); the default is a no-op.
        """

    # ------------------------------------------------------------------
    # Checkpoint state protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Full serializable run state of this model.

        Returns a nested dict of plain values and numpy arrays: the registry
        ``name``, the hyper-parameter ``config`` (as a plain dict), the
        ``n_updates`` counter, the numpy ``Generator`` bit-generator state
        (so the sampling draw stream — legacy or vectorized — resumes on the
        exact same draws), the factor and Gram matrices, and a variant-
        specific ``aux`` dict (:meth:`_aux_state`).  Together with the
        window this is everything needed to continue the run exactly; see
        :mod:`repro.stream.checkpoint` for the on-disk format.
        """
        self._require_initialized()
        aux = self._aux_state()
        if self._sharded is not None:
            # Executor bookkeeping (batch counter, factor/Gram snapshot)
            # rides in aux under `shard_`-prefixed keys so sharded runs
            # checkpoint/restore deterministically mid staleness interval.
            aux.update(self._sharded.aux_state())
        return {
            "name": self.name,
            "config": dataclasses.asdict(self._config),
            "kernel_backend": self._kernels.name,
            "n_updates": int(self._n_updates),
            "rng_state": self._rng.bit_generator.state,
            "factors": [factor.copy() for factor in self._factors],
            "grams": [gram.copy() for gram in self._grams],
            "aux": aux,
        }

    def load_state(self, window: TensorWindow, state: Mapping[str, Any]) -> None:
        """Adopt ``window`` and restore the run state saved by :meth:`state_dict`.

        ``window`` must already hold the tensor state the checkpoint was
        taken at (the checkpoint restore path rebuilds it first).  The model
        must have been constructed with the same hyper-parameters as the
        saved one; a mismatch in ``name`` or ``config`` raises
        :class:`~repro.exceptions.ConfigurationError` instead of silently
        resuming a different algorithm.
        """
        name = state.get("name")
        if name != self.name:
            raise ConfigurationError(
                f"cannot load state of algorithm {name!r} into {self.name!r}"
            )
        saved_config = state.get("config")
        current_config = dataclasses.asdict(self._config)
        # The kernel backend is an execution detail, not a model
        # hyper-parameter: a checkpoint written on one backend restores on
        # any other (and pre-backend checkpoints lack the key entirely).
        current_config.pop("backend", None)
        if saved_config is not None:
            saved_config = {
                key: value
                for key, value in dict(saved_config).items()
                if key != "backend"
            }
            # Checkpoints written before the sharded execution layer lack
            # these keys; they were implicitly exact runs.
            saved_config.setdefault("shards", 1)
            saved_config.setdefault("staleness", 0)
        if saved_config is not None and saved_config != current_config:
            mismatched = sorted(
                key
                for key in set(saved_config) | set(current_config)
                if saved_config.get(key) != current_config.get(key)
            )
            raise ConfigurationError(
                f"checkpointed config does not match this instance "
                f"(differs in {mismatched})"
            )
        factors = [
            np.array(factor, dtype=np.float64, copy=True)
            for factor in state["factors"]
        ]
        if len(factors) != window.order:
            raise ShapeError(
                f"{len(factors)} factor matrices for an order-{window.order} window"
            )
        rank = self._config.rank
        for mode, factor in enumerate(factors):
            expected = (window.shape[mode], rank)
            if factor.shape != expected:
                raise ShapeError(
                    f"factor {mode} has shape {factor.shape}, expected {expected}"
                )
        grams = [
            np.array(gram, dtype=np.float64, copy=True) for gram in state["grams"]
        ]
        if len(grams) != len(factors) or any(
            gram.shape != (rank, rank) for gram in grams
        ):
            raise ShapeError("Gram matrices do not match the factor layout")
        self._window = window
        self._factors = factors
        self._grams = grams
        self._n_updates = int(state.get("n_updates", 0))
        self._rng = np.random.default_rng(self._config.seed)
        rng_state = state.get("rng_state")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state
        self._post_restore()
        self._attach_sharded()
        aux = state.get("aux") or {}
        if self._sharded is not None:
            self._sharded.load_aux_state(aux)
        self._load_aux_state(aux)

    def _aux_state(self) -> dict[str, Any]:
        """Variant-specific extra state (arrays / lists of arrays)."""
        return {}

    def _load_aux_state(self, aux: Mapping[str, Any]) -> None:
        """Restore what :meth:`_aux_state` saved (after :meth:`_post_restore`)."""

    def _post_restore(self) -> None:
        """Rebuild derived buffers after :meth:`load_state`.

        Defaults to :meth:`_post_initialize`; subclasses whose
        ``_post_initialize`` *transforms* the adopted state rather than just
        deriving scratch from it (``SNSMat`` re-normalises the factors)
        override this to skip the transformation.
        """
        self._post_initialize()

    def update(self, delta: Delta) -> None:
        """Update the factor matrices in response to one window event."""
        self._require_initialized()
        self._update(delta)
        self._n_updates += 1

    def update_batch(self, batch: DeltaBatch) -> None:
        """React to a whole :class:`DeltaBatch` of window events.

        Contract — note the difference from :meth:`update`: the caller must
        **not** have applied the batch to the window.  ``update_batch`` owns
        the window mutation so implementations can interleave it with factor
        updates and preserve exact per-event semantics: each event's update
        rule must observe the window as of *that* event, not the batch's
        final state.

        This is the plan → execute → merge dispatch point: with
        ``config.shards > 1`` (or ``staleness > 0``) the batch is handed to
        the relaxed-consistency :class:`~repro.shard.executor.ShardedExecutor`;
        otherwise the exact path :meth:`_update_batch_exact` runs, which is
        the 1-shard/0-staleness special case of the same pipeline and is bit
        for bit the historical behaviour.
        """
        self._require_initialized()
        if self._sharded is not None:
            self._sharded.update_batch(batch)
            return
        self._update_batch_exact(batch)

    def _update_batch_exact(self, batch: DeltaBatch) -> None:
        """Exact batched replay — the 1-shard/0-staleness special case.

        The default implementation replays the batch event by event, which
        is equivalent — bit for bit — to the per-event path (``apply_delta``
        followed by :meth:`update` for every event).  Subclasses override it
        to share per-event setup and vectorise within-event work while
        keeping that equivalence; see ``SNSMat``/``SNSVec``/``SNSVecPlus``.
        """
        window = self._window
        for delta in batch.deltas:
            window.apply_delta(delta)  # type: ignore[union-attr]
            self._update(delta)
            self._n_updates += 1

    @abc.abstractmethod
    def _update(self, delta: Delta) -> None:
        """Algorithm-specific reaction to one event (window already updated)."""

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def fitness(self, tensor: SparseTensor | None = None) -> float:
        """Fitness of the current factorization against ``tensor`` (default: the window)."""
        target = self.window.tensor if tensor is None else tensor
        return self.decomposition.fitness(target)

    def reconstruction_at(self, coordinate: Sequence[int]) -> float:
        """Reconstructed value at one window coordinate."""
        self._require_initialized()
        product = np.ones(self.rank, dtype=np.float64)
        for factor, index in zip(self._factors, coordinate):
            product *= factor[int(index), :]
        return float(product.sum())

    # ------------------------------------------------------------------
    # Shared linear-algebra helpers
    # ------------------------------------------------------------------
    def _hadamard_of_grams(
        self, skip: int, grams: Sequence[np.ndarray] | None = None
    ) -> np.ndarray:
        """``*_{n != skip} A(n)'A(n)`` from the maintained Gram matrices."""
        source = self._grams if grams is None else grams
        selected = [g for mode, g in enumerate(source) if mode != skip]
        # Orders 2 and 3 (one or two remaining Grams) dominate the update hot
        # path; inline them past hadamard_all's generic reduce.  Same float
        # operations, so results are bit-identical.
        if len(selected) == 1:
            return selected[0]
        if len(selected) == 2:
            return selected[0] * selected[1]
        return hadamard_all(selected)

    def _pinv(self, matrix: np.ndarray) -> np.ndarray:
        """(Pseudo-)inverse with the configured ridge for numerical safety.

        The plain inverse is attempted first because it is several times
        faster for the small ``R x R`` matrices involved; singular matrices
        fall back to the Moore-Penrose pseudo-inverse, matching the paper's
        update rules.
        """
        if self._ridge is not None:
            matrix = matrix + self._ridge
        try:
            return np.linalg.inv(matrix)
        except np.linalg.LinAlgError:
            return np.linalg.pinv(matrix)

    def _other_rows_product(
        self, mode: int, coordinate: Sequence[int]
    ) -> np.ndarray:
        """Hadamard product of the other modes' factor rows at ``coordinate``."""
        product = np.ones(self.rank, dtype=np.float64)
        for other_mode, factor in enumerate(self._factors):
            if other_mode == mode:
                continue
            product *= factor[int(coordinate[other_mode]), :]
        return product

    def _other_rows_product_batch(
        self, mode: int, coordinates: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Row-wise Hadamard products of the other modes' factor rows.

        Vectorised version of :meth:`_other_rows_product` for a batch of
        coordinates; returns an ``(n, R)`` array.
        """
        index_array = np.asarray(coordinates, dtype=np.int64)
        product = np.ones((index_array.shape[0], self.rank), dtype=np.float64)
        for other_mode, factor in enumerate(self._factors):
            if other_mode == mode:
                continue
            product *= factor[index_array[:, other_mode], :]
        return product

    def _reconstruction_batch(
        self,
        coordinates: Sequence[Sequence[int]],
        row_overrides: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Reconstructed values at a batch of coordinates.

        ``row_overrides`` maps ``(mode, index)`` to a replacement factor row;
        the randomised variants use it to evaluate the reconstruction with the
        rows as they were at the start of the current event (``X̃`` built from
        ``A_prev``).
        """
        override_modes, override_indices, override_rows = flatten_row_overrides(
            row_overrides, self.rank
        )
        return self._kernels.reconstruct_coords(
            coordinates, self._factors, override_modes, override_indices, override_rows
        )

    def _update_gram(self, mode: int, old_row: np.ndarray, new_row: np.ndarray) -> None:
        """Rank-one Gram maintenance: Eq. (13) (equivalently Eqs. 24-25).

        Written with scratch buffers instead of ``np.outer`` temporaries; the
        float operations (two outer products, one subtraction, one in-place
        add) are the same, so the result is bit-identical.

        NOTE: ``RandomizedCPD._commit_row`` inlines this exact sequence on
        the randomised hot path (a method call per row is measurable there)
        — keep the two in sync when changing the update.
        """
        scratch_new = self._gram_scratch_new
        scratch_old = self._gram_scratch_old
        np.multiply(new_row[:, None], new_row[None, :], out=scratch_new)
        np.multiply(old_row[:, None], old_row[None, :], out=scratch_old)
        np.subtract(scratch_new, scratch_old, out=scratch_new)
        self._grams[mode] += scratch_new

    def _affected_rows(self, delta: Delta) -> list[tuple[int, int]]:
        """Rows of factor matrices affected by ``delta``: (mode, index) pairs.

        Ordered as in Algorithm 3: the affected time-mode rows first (the
        subtraction's unit before the addition's unit), then one row per
        categorical mode.
        """
        rows: list[tuple[int, int]] = []
        seen_time: set[int] = set()
        for time_index in delta.time_indices:
            if time_index not in seen_time:
                rows.append((self.time_mode, time_index))
                seen_time.add(time_index)
        for mode, index in enumerate(delta.categorical_indices):
            rows.append((mode, index))
        return rows
