"""Column normalisation of factor matrices (used by SNS_MAT, Algorithm 2).

SNS_MAT keeps factor columns at unit L2 norm and stores the scales in a
weight vector ``λ`` so the factor magnitudes stay balanced across modes; the
cheaper variants skip this step (and the stable variants replace it with
clipping), exactly as discussed in Section V-C of the paper.
"""

from __future__ import annotations

import numpy as np


def normalize_columns(factor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(normalized_factor, column_norms)``.

    Columns with zero norm are left untouched and reported with norm 1.0 so
    that multiplying back by the norms is always the identity.
    """
    factor = np.asarray(factor, dtype=np.float64)
    norms = np.linalg.norm(factor, axis=0)
    safe_norms = np.where(norms > 0.0, norms, 1.0)
    return factor / safe_norms, safe_norms


def combine_weights(weight_vectors: list[np.ndarray]) -> np.ndarray:
    """Combine per-mode column norms into a single weight vector ``λ``."""
    if not weight_vectors:
        raise ValueError("combine_weights needs at least one weight vector")
    combined = np.ones_like(weight_vectors[0])
    for weights in weight_vectors:
        combined = combined * weights
    return combined
