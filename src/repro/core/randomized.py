"""Shared machinery of the randomised SliceNStitch variants (SNS_RND / SNS+_RND).

Both randomised variants follow the same Algorithm 3 outline — snapshot the
Gram matrices at the start of every event, then update each affected row —
and share the θ-bounded sampled approximation of the window: ``X ≈ X̃ + X̄``,
where ``X̃`` is the reconstruction from the rows as they were when the event
started and ``X̄`` holds the residuals at θ sampled coordinates plus the
explicit ``ΔX`` entries.  :class:`RandomizedCPD` centralises that machinery:

* previous-Gram maintenance ``A_prev(m)' A(m)`` (Eq. 17 / Eq. 26),
* the per-event core :meth:`_process_event` — affected rows, start-of-event
  row snapshots (bucketed by mode for the reconstruction), the event's
  exclusion set built once, and the time-mode matrices shared by the (up to
  two) time rows of the event,
* the sampling dispatch — ``SNSConfig.sampling = "vectorized"`` draws the θ
  coordinates in bulk as an ``(n, M)`` int64 array consumed directly by the
  fused residual kernel (no per-draw Python tuples), ``"legacy"`` reproduces
  the original tuple-at-a-time draw stream and float operations bit-for-bit,
* the batched engine entry point :meth:`update_batch`, which walks the
  batch's raw entry groups (no per-event ``Delta`` objects), interleaves the
  window mutation per event, and reuses per-batch prev-Gram snapshot buffers
  — so batched results are bit-identical to the per-event path.

Subclasses implement :meth:`_update_row` with their specific update rule
(least squares for SNS_RND, clipped coordinate descent for SNS+_RND).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.base import ContinuousCPD, SNSConfig
from repro.core.sampling import SliceSampler, sample_slice_coordinates
from repro.exceptions import ConfigurationError
from repro.kernels.api import flatten_mode_overrides
from repro.kernels.registry import numpy_backend
from repro.stream.deltas import Delta, DeltaBatch

try:  # SciPy is optional: direct LAPACK wrappers skip numpy.linalg's
    # per-call type/shape machinery (~3x cheaper for the R x R systems of
    # the update rules).  The regularized solve itself lives in
    # repro.kernels now; dtrtrs is still used by SNSRndPlus's triangular
    # sweep, and dposv is kept importable for compatibility.
    from scipy.linalg.lapack import dposv as _lapack_posv
    from scipy.linalg.lapack import dtrtrs as _lapack_trtrs
except ImportError:  # pragma: no cover - exercised only without scipy
    _lapack_posv = None
    _lapack_trtrs = None

Coordinate = tuple[int, ...]

#: One event's entry changes: ``((coordinate, value), ...)``, at most two.
Entries = tuple[tuple[Coordinate, float], ...]


class RandomizedCPD(ContinuousCPD):
    """Base class of the θ-bounded randomised variants."""

    shard_sampled = True

    def __init__(self, config: SNSConfig) -> None:
        super().__init__(config)
        if config.sampling == "legacy":
            # The legacy sampler's contract is bit-for-bit reproduction of
            # the original draw stream *and* float operations; only the
            # numpy reference honours that, so it overrides any configured
            # backend for every kernel this model touches.
            self._kernels = numpy_backend()

    def _post_initialize(self) -> None:
        # U(m) = A_prev(m)' A(m); refreshed to the plain Grams at every event.
        # The snapshot buffers are reused (np.copyto) instead of reallocated.
        self._prev_grams = [gram.copy() for gram in self._grams]
        # Per-mode slice metadata amortised across every sampled row update.
        self._slice_sampler = SliceSampler(self.window.shape)
        # Scratch for the prev-Gram rank-one update (Eq. 17 / Eq. 26) and
        # for the regularized system of _solve_regularized.
        rank = self.rank
        self._prev_gram_scratch = np.empty((rank, rank))
        self._row_diff_scratch = np.empty(rank)
        self._solve_scratch = np.empty((rank, rank))
        # Per-mode tuple of the other modes, for the lean Hadamard helper.
        order = self.order
        self._other_modes = tuple(
            tuple(n for n in range(order) if n != mode) for mode in range(order)
        )

    @property
    def prev_grams(self) -> list[np.ndarray]:
        """Maintained ``A_prev(m)' A(m)`` matrices (Eq. 17 / Eq. 26)."""
        return self._prev_grams

    def _aux_state(self):
        # Strictly, prev-Grams are re-snapshotted from the Grams at the start
        # of every event before being read — but persisting them keeps the
        # restored object state identical to the saved one, not just
        # observationally equivalent.
        return {"prev_grams": [gram.copy() for gram in self._prev_grams]}

    def _load_aux_state(self, aux) -> None:
        prev_grams = aux.get("prev_grams")
        if prev_grams is None:
            return  # _post_initialize already reset them from the Grams
        rank = self.rank
        restored = [
            np.array(gram, dtype=np.float64, copy=True) for gram in prev_grams
        ]
        if len(restored) != self.order or any(
            gram.shape != (rank, rank) for gram in restored
        ):
            raise ConfigurationError(
                "checkpointed prev-Gram matrices do not match the factor layout"
            )
        self._prev_grams = restored

    # ------------------------------------------------------------------
    # Algorithm 3 outline
    # ------------------------------------------------------------------
    def _update(self, delta: Delta) -> None:
        # Line 1 of Algorithm 3: snapshot the Grams at the start of the event.
        for buffer, gram in zip(self._prev_grams, self._grams):
            np.copyto(buffer, gram)
        # hoist=False: the sequential path is the per-event reference and,
        # as everywhere else in the family (see SNSVec), does not share
        # per-event matrices between rows — that is the engine's job.
        self._process_event(delta.entries, delta.categorical_indices, hoist=False)

    def _update_batch_exact(self, batch: DeltaBatch) -> None:
        """Exact batched path, exactly equivalent to the per-event path.

        Events are consumed as raw entry groups
        (:meth:`DeltaBatch.entry_groups`) — no ``WindowEvent`` / ``Delta``
        objects are materialised — and the window mutation is interleaved per
        event so every update rule observes the window as of *its* event.
        All remaining hoisting lives in :meth:`_process_event` and is shared
        with the per-event path, so batched and sequential execution perform
        identical float operations.
        """
        window = self.window
        prev_grams = self._prev_grams
        grams = self._grams
        trusted = batch.trusted
        for record, _step, entries in batch.entry_groups():
            window.apply_entry_changes(entries, trusted=trusted)
            for buffer, gram in zip(prev_grams, grams):
                np.copyto(buffer, gram)
            self._process_event(entries, record.indices, hoist=True)
            self._n_updates += 1

    def _process_event(
        self,
        entries: Entries,
        categorical_indices: tuple[int, ...],
        hoist: bool,
    ) -> None:
        """Update every row affected by one event (lines 2-4 of Algorithm 3).

        Shared per-event setup: the affected-row list (time rows first, as
        in ``_affected_rows``), the start-of-event row snapshots, the
        exclusion set (the event's coordinates), and the per-row degrees.
        With ``hoist=True`` (the batched engine) the time-mode matrices are
        additionally computed once and shared by the (up to two) time rows
        of the event — work that provably cannot change between those rows,
        so sharing changes no results; the sequential path keeps the
        family's per-row reference behaviour.
        """
        factors = self._factors
        tensor = self.window.tensor
        time_mode = self.time_mode
        affected: list[tuple[int, int]] = []
        seen_time: set[int] = set()
        for coordinate, _value in entries:
            time_index = coordinate[-1]
            if time_index not in seen_time:
                affected.append((time_mode, time_index))
                seen_time.add(time_index)
        for mode, index in enumerate(categorical_indices):
            affected.append((mode, index))
        prev_rows: dict[tuple[int, int], np.ndarray] = {
            (mode, index): factors[mode][index, :].copy()
            for mode, index in affected
        }
        degrees = [tensor.degree(mode, index) for mode, index in affected]
        delta_coordinates = [coordinate for coordinate, _value in entries]
        # Time-mode matrices shared by the (up to two) time rows of this
        # event; time rows come first in `affected`, so the cache is never
        # read after a categorical update invalidated it.
        time_shared: dict[str, np.ndarray] | None = {} if hoist else None
        # Rows already updated this event, bucketed by mode.  The X̃
        # reconstruction must use start-of-event rows, but the live factors
        # only differ from those on rows updated *earlier in this event* —
        # an override for a not-yet-updated row would overwrite gathered
        # rows with identical values.  Growing the bucket as rows commit
        # therefore changes nothing and lets early rows skip the override
        # scan entirely.
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]] = {}
        for position, (mode, index) in enumerate(affected):
            self._update_row(
                mode,
                index,
                degrees[position],
                entries,
                prev_rows,
                overrides_by_mode,
                delta_coordinates,
                time_shared if mode == time_mode else None,
            )
            overrides_by_mode.setdefault(mode, []).append(
                (index, prev_rows[(mode, index)])
            )

    @abc.abstractmethod
    def _update_row(
        self,
        mode: int,
        index: int,
        degree: int,
        entries: Entries,
        prev_rows: dict[tuple[int, int], np.ndarray],
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]],
        delta_coordinates: list[Coordinate],
        time_shared: dict[str, np.ndarray] | None,
    ) -> None:
        """Variant-specific row update (Algorithm 4 / Algorithm 5)."""

    # ------------------------------------------------------------------
    # Shared update helpers
    # ------------------------------------------------------------------
    def _commit_row(
        self, mode: int, index: int, old_row: np.ndarray, new_row: np.ndarray
    ) -> None:
        """Write the updated row and maintain both Gram products.

        Applies Eq. (13)/(24)-(25) — a deliberate inline of
        :meth:`ContinuousCPD._update_gram` (a method call per row is
        measurable on this hot path; keep the two in sync) — and the
        previous-Gram update Eq. (17)/(26) as a buffered form of
        ``prev_grams[mode] += np.outer(old_row, new_row - old_row)``.
        Same float operations as the seed in both cases, no temporaries.
        """
        self._factors[mode][index, :] = new_row
        old_column = old_row[:, None]
        scratch_new = self._gram_scratch_new
        scratch_old = self._gram_scratch_old
        np.multiply(new_row[:, None], new_row[None, :], out=scratch_new)
        np.multiply(old_column, old_row[None, :], out=scratch_old)
        np.subtract(scratch_new, scratch_old, out=scratch_new)
        self._grams[mode] += scratch_new
        np.subtract(new_row, old_row, out=self._row_diff_scratch)
        np.multiply(
            old_column,
            self._row_diff_scratch[None, :],
            out=self._prev_gram_scratch,
        )
        self._prev_grams[mode] += self._prev_gram_scratch

    def _hadamard_fast(
        self, mode: int, source: list[np.ndarray] | None = None
    ) -> np.ndarray:
        """``*_{n != mode} source[n]`` via precomputed other-mode indices.

        Same float operations as :meth:`_hadamard_of_grams` (identical
        results), minus the per-call list comprehension — this runs once or
        twice per row update on the randomised hot path.
        """
        grams = self._grams if source is None else source
        others = self._other_modes[mode]
        if len(others) == 1:
            return grams[others[0]]
        if len(others) == 2:
            return grams[others[0]] * grams[others[1]]
        product = grams[others[0]] * grams[others[1]]
        for other in others[2:]:
            product *= grams[other]
        return product

    def _solve_regularized(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """``rhs @ (matrix + ridge)^-1`` for symmetric PSD ``matrix`` via one solve.

        The vectorised path's replacement for materialising the inverse: a
        Cholesky solve (the Hadamard product of Gram matrices is PSD by the
        Schur product theorem, and the ridge makes it definite) through the
        configured kernel backend; non-definite / singular systems fall back
        to the Moore-Penrose pseudo-inverse exactly like :meth:`_pinv`.
        ``rhs`` may also be a ``(B, R)`` batch of rows solved against one
        shared matrix.
        """
        return self._kernels.solve_regularized(
            matrix, rhs, self._ridge, self._solve_scratch
        )

    # ------------------------------------------------------------------
    # θ-bounded sampling (Algorithm 4 line 12 / Algorithm 5 line 9)
    # ------------------------------------------------------------------
    def _sampled_contribution(
        self,
        mode: int,
        index: int,
        entries: Entries,
        prev_rows: dict[tuple[int, int], np.ndarray],
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]],
        delta_coordinates: list[Coordinate],
    ) -> np.ndarray:
        """``sum_J (x̄_J + Δx_J) * prod_{n != m} a(n)_{j_n k}`` (Eqs. 16 and 23).

        The sampled residuals use the window as it is *now* (``X + ΔX``)
        against the reconstruction ``X̃`` built from the rows at the start of
        the event; the event's own entries are excluded from the sample and
        added explicitly.
        """
        factors = self._factors
        if self._config.sampling == "legacy":
            contribution = self._legacy_sampled_residual(
                mode, index, delta_coordinates, prev_rows
            )
        else:
            samples = self._slice_sampler.sample(
                mode, index, self._config.theta, self._rng, exclude=delta_coordinates
            )
            contribution = self._vectorized_sampled_residual(
                mode, index, samples, prev_rows, overrides_by_mode, factors
            )
        for coordinate, value in entries:
            if coordinate[mode] != index:
                continue
            product: np.ndarray | None = None
            for other_mode, factor in enumerate(factors):
                if other_mode == mode:
                    continue
                row = factor[coordinate[other_mode], :]
                product = row if product is None else product * row
            contribution = contribution + value * product
        return contribution

    def _legacy_sampled_residual(
        self,
        mode: int,
        index: int,
        delta_coordinates: list[Coordinate],
        prev_rows: dict[tuple[int, int], np.ndarray],
    ) -> np.ndarray:
        """Residual term of the legacy sampler — draw stream and float
        operations pinned bit-for-bit to the original implementation."""
        tensor = self.window.tensor
        samples = sample_slice_coordinates(
            tensor.shape,
            mode,
            index,
            self._config.theta,
            self._rng,
            exclude=delta_coordinates,
        )
        if not samples:
            return np.zeros(self.rank, dtype=np.float64)
        observed = np.array([tensor.get(c) for c in samples], dtype=np.float64)
        reconstructed = self._reconstruction_batch(samples, prev_rows)
        residuals = observed - reconstructed  # the x̄_J values
        return residuals @ self._other_rows_product_batch(mode, samples)

    def _vectorized_sampled_residual(
        self,
        mode: int,
        index: int,
        samples: np.ndarray,
        prev_rows: dict[tuple[int, int], np.ndarray],
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]],
        factors: list[np.ndarray],
    ) -> np.ndarray:
        """Fused residual term ``(x - x̃) @ (Hadamard of other current rows)``.

        One pass over the other modes builds both row products —
        ``product_current`` from the live factors (the Eq. 16/23 coefficient)
        and ``product_previous`` from the start-of-event rows (the ``X̃``
        reconstruction) — sharing each mode's row gather.  Every sample has
        ``samples[:, mode] == index``, so the reconstruction's ``mode``
        factor collapses to the single row ``prev_rows[(mode, index)]``,
        applied as a final matrix-vector product.  The fused pass itself is
        the configured backend's ``sampled_residual`` kernel; the override
        buckets are flattened in insertion order, which the numpy reference
        replays exactly.
        """
        if not samples.shape[0]:
            return np.zeros(self.rank, dtype=np.float64)
        observed = self.window.tensor._get_batch_trusted(samples)
        override_modes, override_indices, override_rows = flatten_mode_overrides(
            overrides_by_mode, mode, self.rank
        )
        return self._kernels.sampled_residual(
            samples,
            observed,
            factors,
            mode,
            prev_rows[(mode, index)],
            override_modes,
            override_indices,
            override_rows,
        )
