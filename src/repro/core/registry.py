"""Registry mapping algorithm names to SliceNStitch classes.

The experiment harness, the CLI, and the benchmarks all refer to algorithms
by their short names (``"sns_rnd_plus"`` etc.), mirroring the labels used in
the paper's figures.
"""

from __future__ import annotations

from repro.core.base import ContinuousCPD, SNSConfig
from repro.core.sns_mat import SNSMat
from repro.core.sns_rnd import SNSRnd
from repro.core.sns_rnd_plus import SNSRndPlus
from repro.core.sns_vec import SNSVec
from repro.core.sns_vec_plus import SNSVecPlus
from repro.exceptions import UnknownAlgorithmError

#: Name -> class for every SliceNStitch variant.
ALGORITHMS: dict[str, type[ContinuousCPD]] = {
    SNSMat.name: SNSMat,
    SNSVec.name: SNSVec,
    SNSRnd.name: SNSRnd,
    SNSVecPlus.name: SNSVecPlus,
    SNSRndPlus.name: SNSRndPlus,
}

#: Display labels matching the paper's figures.
DISPLAY_NAMES: dict[str, str] = {
    "sns_mat": "SNS_MAT",
    "sns_vec": "SNS_VEC",
    "sns_rnd": "SNS_RND",
    "sns_vec_plus": "SNS+_VEC",
    "sns_rnd_plus": "SNS+_RND",
}


def available_algorithms() -> list[str]:
    """Names of all registered SliceNStitch variants."""
    return sorted(ALGORITHMS)


def create_algorithm(name: str, config: SNSConfig) -> ContinuousCPD:
    """Instantiate a SliceNStitch variant by name."""
    try:
        algorithm_class = ALGORITHMS[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return algorithm_class(config)


def display_name(name: str) -> str:
    """Paper-style label for an algorithm name (falls back to the raw name)."""
    return DISPLAY_NAMES.get(name, name)
