"""Row-level update arithmetic shared by the exact and sharded paths.

The clipped coordinate-descent sweep (lines 2-5 of Algorithm 5) historically
lived twice — in ``SNSVecPlus._coordinate_descent`` and in
``SNSRndPlus._coordinate_descent_reference`` — with identical float
operations.  The sharded executor (:mod:`repro.shard.executor`) needs the
same sweep as a *pure function* of arrays (no ``self``, safe to call from
worker threads and processes), so the loop lives here once and all callers
share it.  The float operations are unchanged from the seed implementation,
which keeps every golden and bit-exactness suite pinned.
"""

from __future__ import annotations

import numpy as np


def clipped_coordinate_descent(
    old_row: np.ndarray,
    numerator: np.ndarray,
    hadamard: np.ndarray,
    eta: float,
    lower: float,
    ridge: float,
) -> np.ndarray:
    """One clipped coordinate-descent sweep over a factor row (Algorithm 5).

    For each column ``k``:

    * ``c_k`` is the ``(k, k)`` entry of the Hadamard-of-Grams matrix
      (Eq. 20, first line), plus the ridge,
    * ``d_k = sum_{r != k} a_r * H_{r k}`` uses the *current* row, so
      entries updated earlier in this sweep immediately influence later
      ones (true coordinate descent),
    * the data term ``numerator[k]`` is precomputed by the caller because
      it does not depend on the row being updated,
    * the updated entry is clipped into ``[lower, eta]`` (``lower`` is
      ``0.0`` under the nonnegative constraint, ``-eta`` otherwise),
    * a non-positive ``c_k`` keeps the entry unchanged (the seed's "skip
      this entry" semantics).

    ``old_row`` is not mutated; the updated row is returned.
    """
    row = old_row.copy()
    for k in range(row.shape[0]):
        column = hadamard[:, k]
        c_k = column[k] + ridge
        if c_k <= 0.0:
            continue
        d_k = float(row @ column) - row[k] * column[k]
        updated = (numerator[k] - d_k) / c_k
        if updated > eta:
            updated = eta
        elif updated < lower:
            updated = lower
        row[k] = updated
    return row
