"""Uniform coordinate sampling inside a tensor slice (used by SNS_RND / SNS+_RND).

``SNS_RND`` bounds the per-row update cost by sampling ``θ`` coordinates of
the window "while fixing the m-th mode index to i_m" (Algorithm 4, line 12),
i.e. uniformly from the Cartesian product of the *other* modes' index ranges.
Coordinates of the current delta are excluded, as footnote 2 of the paper
prescribes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError

Coordinate = tuple[int, ...]

#: When the slice has at most this many cells the sampler enumerates it and
#: uses ``Generator.choice`` without replacement; above it, rejection sampling
#: is cheaper and collision-free sampling is practically guaranteed.
_ENUMERATION_LIMIT = 100_000


def sample_slice_coordinates(
    shape: Sequence[int],
    mode: int,
    index: int,
    count: int,
    rng: np.random.Generator,
    exclude: Sequence[Coordinate] = (),
) -> list[Coordinate]:
    """Sample up to ``count`` distinct coordinates with ``coordinate[mode] == index``.

    Coordinates listed in ``exclude`` are never returned.  If the slice holds
    fewer than ``count`` eligible cells, all of them are returned.
    """
    shape = tuple(int(n) for n in shape)
    if not 0 <= mode < len(shape):
        raise ShapeError(f"mode {mode} out of range for shape {shape}")
    if not 0 <= index < shape[mode]:
        raise ShapeError(f"index {index} out of range for mode {mode} ({shape[mode]})")
    if count <= 0:
        return []
    other_modes = [m for m in range(len(shape)) if m != mode]
    other_sizes = [shape[m] for m in other_modes]
    slice_cells = int(np.prod(other_sizes, dtype=np.int64))
    excluded = set(exclude)
    eligible = slice_cells - sum(1 for c in excluded if c[mode] == index)
    if eligible <= 0:
        return []
    count = min(count, eligible)
    if slice_cells <= _ENUMERATION_LIMIT:
        return _sample_by_enumeration(
            shape, mode, index, other_modes, other_sizes, count, rng, excluded
        )
    return _sample_by_rejection(
        shape, mode, index, other_modes, other_sizes, count, rng, excluded
    )


def _unrank(
    flat: int, mode: int, index: int, other_modes: list[int], other_sizes: list[int]
) -> Coordinate:
    """Convert a flat offset over the other modes into a full coordinate."""
    coordinate = [0] * (len(other_modes) + 1)
    coordinate[mode] = index
    remainder = int(flat)
    for other_mode, size in zip(other_modes, other_sizes):
        coordinate[other_mode] = remainder % size
        remainder //= size
    return tuple(coordinate)


def _sample_by_enumeration(
    shape: Sequence[int],
    mode: int,
    index: int,
    other_modes: list[int],
    other_sizes: list[int],
    count: int,
    rng: np.random.Generator,
    excluded: set[Coordinate],
) -> list[Coordinate]:
    slice_cells = int(np.prod(other_sizes, dtype=np.int64))
    # Oversample slightly so exclusions rarely force a second draw.
    draw = min(slice_cells, count + len(excluded))
    flats = rng.choice(slice_cells, size=draw, replace=False)
    coordinates = []
    for flat in flats:
        coordinate = _unrank(int(flat), mode, index, other_modes, other_sizes)
        if coordinate in excluded:
            continue
        coordinates.append(coordinate)
        if len(coordinates) == count:
            break
    return coordinates


def _sample_by_rejection(
    shape: Sequence[int],
    mode: int,
    index: int,
    other_modes: list[int],
    other_sizes: list[int],
    count: int,
    rng: np.random.Generator,
    excluded: set[Coordinate],
) -> list[Coordinate]:
    chosen: set[Coordinate] = set()
    coordinates: list[Coordinate] = []
    max_attempts = 50 * count + 100
    attempts = 0
    while len(coordinates) < count and attempts < max_attempts:
        attempts += 1
        coordinate = [0] * (len(other_modes) + 1)
        coordinate[mode] = index
        for other_mode, size in zip(other_modes, other_sizes):
            coordinate[other_mode] = int(rng.integers(0, size))
        candidate = tuple(coordinate)
        if candidate in excluded or candidate in chosen:
            continue
        chosen.add(candidate)
        coordinates.append(candidate)
    return coordinates
