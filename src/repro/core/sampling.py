"""Uniform coordinate sampling inside a tensor slice (used by SNS_RND / SNS+_RND).

``SNS_RND`` bounds the per-row update cost by sampling ``θ`` coordinates of
the window "while fixing the m-th mode index to i_m" (Algorithm 4, line 12),
i.e. uniformly from the Cartesian product of the *other* modes' index ranges.
Coordinates of the current delta are excluded, as footnote 2 of the paper
prescribes.

Two implementations share this module:

* :func:`sample_slice_coordinates` — the original per-draw sampler, returning
  a list of Python coordinate tuples.  Its draw stream is kept bit-identical
  to the seed implementation (``SNSConfig.sampling = "legacy"`` relies on
  this to reproduce pinned goldens), with one bugfix: when rejection sampling
  exhausts its attempt budget while eligible cells remain, it now falls back
  to enumeration instead of silently under-delivering samples.
* :func:`sample_slice_coordinates_array` — the vectorised flat-index sampler
  (``SNSConfig.sampling = "vectorized"``, the default): one batched
  ``Generator.integers`` / ``Generator.permutation`` draw over linearised
  slice offsets, exclusion and dedup via flat-key set operations, and a
  vectorised unranking into an ``(n, M)`` int64 coordinate array that the
  batched update rules consume directly — no per-draw Python tuples.  The
  draw *stream* differs from the legacy sampler (goldens were regenerated
  when it became the default) but the *distribution* is the same: uniform
  over the eligible cells, without replacement.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError

Coordinate = tuple[int, ...]

#: When the slice has at most this many cells the legacy sampler enumerates it
#: and uses ``Generator.choice`` without replacement; above it, rejection
#: sampling is cheaper and collision-free sampling is practically guaranteed.
_ENUMERATION_LIMIT = 100_000

#: Attempt budget of the legacy rejection sampler: ``PER_SAMPLE * count +
#: BASE`` candidate draws before falling back to enumeration.  Module-level so
#: tests can force the fallback deterministically.
_REJECTION_ATTEMPTS_PER_SAMPLE = 50
_REJECTION_ATTEMPTS_BASE = 100

#: The vectorised sampler switches from batched rejection rounds to explicit
#: enumeration when the requested count exceeds this fraction of the eligible
#: cells (rejection dedup becomes wasteful near exhaustion).
_DENSE_REQUEST_FRACTION = 0.25

#: Round budget of the vectorised rejection loop before it falls back to
#: enumeration.  Each round draws a fresh batch of candidates, so hitting the
#: cap requires an adversarially dense exclusion set.
_VECTORIZED_MAX_ROUNDS = 32


def _validate_slice(
    shape: Sequence[int], mode: int, index: int
) -> tuple[tuple[int, ...], list[int], list[int]]:
    """Shared validation; returns ``(shape, other_modes, other_sizes)``."""
    shape = tuple(int(n) for n in shape)
    if not 0 <= mode < len(shape):
        raise ShapeError(f"mode {mode} out of range for shape {shape}")
    if not 0 <= index < shape[mode]:
        raise ShapeError(f"index {index} out of range for mode {mode} ({shape[mode]})")
    other_modes = [m for m in range(len(shape)) if m != mode]
    other_sizes = [shape[m] for m in other_modes]
    return shape, other_modes, other_sizes


# ----------------------------------------------------------------------
# Legacy sampler (per-draw tuples, draw stream pinned by the goldens)
# ----------------------------------------------------------------------
def sample_slice_coordinates(
    shape: Sequence[int],
    mode: int,
    index: int,
    count: int,
    rng: np.random.Generator,
    exclude: Sequence[Coordinate] = (),
) -> list[Coordinate]:
    """Sample up to ``count`` distinct coordinates with ``coordinate[mode] == index``.

    Coordinates listed in ``exclude`` are never returned.  If the slice holds
    fewer than ``count`` eligible cells, all of them are returned.
    """
    shape, other_modes, other_sizes = _validate_slice(shape, mode, index)
    if count <= 0:
        return []
    slice_cells = int(np.prod(other_sizes, dtype=np.int64))
    excluded = set(exclude)
    eligible = slice_cells - sum(1 for c in excluded if c[mode] == index)
    if eligible <= 0:
        return []
    count = min(count, eligible)
    if slice_cells <= _ENUMERATION_LIMIT:
        return _sample_by_enumeration(
            shape, mode, index, other_modes, other_sizes, count, rng, excluded
        )
    return _sample_by_rejection(
        shape, mode, index, other_modes, other_sizes, count, rng, excluded
    )


def _unrank(
    flat: int, mode: int, index: int, other_modes: list[int], other_sizes: list[int]
) -> Coordinate:
    """Convert a flat offset over the other modes into a full coordinate."""
    coordinate = [0] * (len(other_modes) + 1)
    coordinate[mode] = index
    remainder = int(flat)
    for other_mode, size in zip(other_modes, other_sizes):
        coordinate[other_mode] = remainder % size
        remainder //= size
    return tuple(coordinate)


def _sample_by_enumeration(
    shape: Sequence[int],
    mode: int,
    index: int,
    other_modes: list[int],
    other_sizes: list[int],
    count: int,
    rng: np.random.Generator,
    excluded: set[Coordinate],
) -> list[Coordinate]:
    slice_cells = int(np.prod(other_sizes, dtype=np.int64))
    # Oversample slightly so exclusions rarely force a second draw.
    draw = min(slice_cells, count + len(excluded))
    flats = rng.choice(slice_cells, size=draw, replace=False)
    coordinates = []
    for flat in flats:
        coordinate = _unrank(int(flat), mode, index, other_modes, other_sizes)
        if coordinate in excluded:
            continue
        coordinates.append(coordinate)
        if len(coordinates) == count:
            break
    return coordinates


def _sample_by_rejection(
    shape: Sequence[int],
    mode: int,
    index: int,
    other_modes: list[int],
    other_sizes: list[int],
    count: int,
    rng: np.random.Generator,
    excluded: set[Coordinate],
) -> list[Coordinate]:
    chosen: set[Coordinate] = set()
    coordinates: list[Coordinate] = []
    max_attempts = _REJECTION_ATTEMPTS_PER_SAMPLE * count + _REJECTION_ATTEMPTS_BASE
    attempts = 0
    while len(coordinates) < count and attempts < max_attempts:
        attempts += 1
        coordinate = [0] * (len(other_modes) + 1)
        coordinate[mode] = index
        for other_mode, size in zip(other_modes, other_sizes):
            coordinate[other_mode] = int(rng.integers(0, size))
        candidate = tuple(coordinate)
        if candidate in excluded or candidate in chosen:
            continue
        chosen.add(candidate)
        coordinates.append(candidate)
    if len(coordinates) < count:
        # The attempt budget ran out with eligible cells remaining (the caller
        # clamped ``count`` to the eligible total).  Enumerate instead of
        # under-delivering: draw the deficit from the cells not yet taken.
        coordinates.extend(
            _sample_by_enumeration(
                shape,
                mode,
                index,
                other_modes,
                other_sizes,
                count - len(coordinates),
                rng,
                excluded | chosen,
            )
        )
    return coordinates


# ----------------------------------------------------------------------
# Vectorised sampler (flat offsets, (n, M) int64 output)
# ----------------------------------------------------------------------
class SliceSampler:
    """Vectorised slice sampler bound to one tensor shape.

    Per-mode metadata — the other modes, their sizes, the strides of the
    linearisation, and the slice cell count — is computed once at
    construction, so each :meth:`sample` call is a single batched
    ``Generator.integers`` draw plus flat-key dedup/exclusion and a
    vectorised unranking.  The randomised variants keep one instance per
    window (the window shape never changes) and call it on every sampled row
    update; :func:`sample_slice_coordinates_array` wraps it for one-shot use.
    """

    __slots__ = ("_shape", "_modes")

    def __init__(self, shape: Sequence[int]) -> None:
        shape = tuple(int(n) for n in shape)
        if not shape:
            raise ShapeError("a slice sampler needs at least one mode")
        self._shape = shape
        modes = []
        for mode in range(len(shape)):
            other_modes: tuple[int, ...] = tuple(
                m for m in range(len(shape)) if m != mode
            )
            other_sizes = tuple(shape[m] for m in other_modes)
            strides = []
            stride = 1
            for size in other_sizes:
                strides.append(stride)
                stride *= size
            modes.append((other_modes, other_sizes, tuple(strides), stride))
        # Per mode: (other_modes, other_sizes, strides, slice_cells).
        self._modes = tuple(modes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Tensor shape this sampler was built for."""
        return self._shape

    def sample(
        self,
        mode: int,
        index: int,
        count: int,
        rng: np.random.Generator,
        exclude: Sequence[Coordinate] = (),
    ) -> np.ndarray:
        """Sample up to ``count`` distinct slice coordinates as an ``(n, M)`` array.

        Same contract as :func:`sample_slice_coordinates` — coordinates with
        ``coordinate[mode] == index``, never one listed in ``exclude``, all
        eligible cells when fewer than ``count`` remain — drawn uniformly
        without replacement over linearised slice offsets.
        """
        shape = self._shape
        if not 0 <= mode < len(shape):
            raise ShapeError(f"mode {mode} out of range for shape {shape}")
        if not 0 <= index < shape[mode]:
            raise ShapeError(
                f"index {index} out of range for mode {mode} ({shape[mode]})"
            )
        other_modes, other_sizes, strides, slice_cells = self._modes[mode]
        order = len(shape)
        if count <= 0:
            return np.empty((0, order), dtype=np.int64)
        # Rank the (few) excluded coordinates into flat offsets.  A
        # coordinate with any out-of-bounds component can never be drawn
        # (and must not alias onto a valid offset), so it is dropped rather
        # than tripping the dense path's enumeration.
        excluded: set[int] = set()
        for coordinate in exclude:
            if coordinate[mode] != index:
                continue
            flat = 0
            for other_mode, size, stride in zip(other_modes, other_sizes, strides):
                component = int(coordinate[other_mode])
                if not 0 <= component < size:
                    flat = -1
                    break
                flat += component * stride
            if flat >= 0:
                excluded.add(flat)
        eligible = slice_cells - len(excluded)
        if eligible <= 0:
            return np.empty((0, order), dtype=np.int64)
        if count > eligible:
            count = eligible
        if (
            slice_cells <= _ENUMERATION_LIMIT
            and count >= eligible * _DENSE_REQUEST_FRACTION
        ):
            flats = _draw_flats_by_enumeration(slice_cells, count, rng, excluded)
        else:
            flats = self._draw_flats_by_rejection(slice_cells, count, rng, excluded)
        return self._unrank(flats, mode, index, other_modes, other_sizes)

    @staticmethod
    def _draw_flats_by_rejection(
        slice_cells: int,
        count: int,
        rng: np.random.Generator,
        excluded: set[int],
    ) -> np.ndarray:
        """Block draws with flat-key set dedup — exact rejection semantics.

        Each round draws one batched uniform block (``floor(u * n)`` over a
        single ``Generator.random`` call: markedly cheaper than
        ``Generator.integers``, uniform up to the 2^-53 float granularity);
        a set-membership pass keeps the first occurrence of each offset and
        drops exclusions, which is exactly what per-draw rejection sampling
        would have kept.  The first block is sized ``count`` and accepted
        wholesale when it is already collision- and exclusion-free — the
        common case when ``count`` (θ, tens) is far below ``slice_cells`` —
        making the happy path two numpy calls and one set construction.
        """
        first = (rng.random(count) * slice_cells).astype(np.int64)
        first_list = first.tolist()
        seen = set(first_list)
        if len(seen) == count and (not excluded or seen.isdisjoint(excluded)):
            return first
        # Collision or exclusion hit: run the drawn block through the exact
        # dedup pass (same semantics, just without the early exit) and top
        # up with fresh oversampled blocks.
        seen = set(excluded)
        chosen: list[int] = []
        for flat in first_list:
            if flat in seen:
                continue
            seen.add(flat)
            chosen.append(flat)
        for _ in range(_VECTORIZED_MAX_ROUNDS):
            need = count - len(chosen)
            if need <= 0:
                break
            block = 2 * need + len(seen)
            draw = (rng.random(block) * slice_cells).astype(np.int64).tolist()
            for flat in draw:
                if flat in seen:
                    continue
                seen.add(flat)
                chosen.append(flat)
                if len(chosen) == count:
                    break
        if len(chosen) < count:
            # Adversarially dense exclusion set: finish by enumeration (the
            # caller guaranteed at least ``count`` eligible cells exist).
            remainder = _draw_flats_by_enumeration(
                slice_cells, count - len(chosen), rng, seen
            )
            return np.concatenate(
                [np.asarray(chosen, dtype=np.int64), remainder]
            )
        return np.asarray(chosen, dtype=np.int64)

    @staticmethod
    def _unrank(
        flats: np.ndarray,
        mode: int,
        index: int,
        other_modes: tuple[int, ...],
        other_sizes: tuple[int, ...],
    ) -> np.ndarray:
        """Vectorised unranking of flat slice offsets into ``(n, M)`` coordinates."""
        coordinates = np.empty((flats.size, len(other_modes) + 1), dtype=np.int64)
        coordinates[:, mode] = index
        remainder = flats
        last = len(other_modes) - 1
        for position, (other_mode, size) in enumerate(zip(other_modes, other_sizes)):
            if position == last:
                coordinates[:, other_mode] = remainder
            else:
                coordinates[:, other_mode] = remainder % size
                remainder = remainder // size
        return coordinates


def sample_slice_coordinates_array(
    shape: Sequence[int],
    mode: int,
    index: int,
    count: int,
    rng: np.random.Generator,
    exclude: Sequence[Coordinate] = (),
) -> np.ndarray:
    """Vectorised :func:`sample_slice_coordinates`: returns an ``(n, M)`` array.

    One-shot convenience wrapper over :class:`SliceSampler`; callers sampling
    repeatedly from the same shape (the randomised variants) should hold a
    sampler instance instead to amortise the per-mode metadata.
    """
    return SliceSampler(shape).sample(mode, index, count, rng, exclude=exclude)


def _draw_flats_by_enumeration(
    slice_cells: int,
    count: int,
    rng: np.random.Generator,
    excluded: set[int],
) -> np.ndarray:
    """Materialise the eligible offsets and permute — exact, O(slice_cells)."""
    eligible_flats = np.arange(slice_cells, dtype=np.int64)
    if excluded:
        # Position == value in an arange, so deleting at the excluded
        # *positions* removes exactly the excluded *offsets*.
        eligible_flats = np.delete(
            eligible_flats, np.fromiter(excluded, dtype=np.int64, count=len(excluded))
        )
    if count >= eligible_flats.size:
        return eligible_flats
    return rng.permutation(eligible_flats)[:count]
