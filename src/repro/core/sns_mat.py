"""SNS_MAT — the naive extension of ALS to the continuous model (Algorithm 2).

On every window event SNS_MAT runs a single full ALS sweep over the updated
window, starting from the maintained (column-normalised) factor matrices,
which are strong warm starts.  Each mode solve re-normalises the updated
factor and records the column norms in ``λ``, exactly as in Algorithm 2.  It
is the most accurate and the slowest member of the family (Theorem 3).
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp, mttkrp_coo
from repro.core.base import ContinuousCPD, SNSConfig
from repro.exceptions import ConfigurationError
from repro.core.normalization import combine_weights, normalize_columns
from repro.stream.deltas import Delta, DeltaBatch
from repro.tensor.kruskal import KruskalTensor


class SNSMat(ContinuousCPD):
    """One warm-started ALS sweep per event, with column normalisation."""

    name = "sns_mat"

    def __init__(self, config: SNSConfig) -> None:
        super().__init__(config)
        self._weights = np.ones(config.rank, dtype=np.float64)

    def _post_initialize(self) -> None:
        # Normalise the initial factors so the maintained state matches the
        # invariant preserved by each per-event sweep: unit-norm columns in
        # every factor, overall scale in the weight vector λ.
        weight_vectors = []
        for mode, factor in enumerate(self._factors):
            normalized, norms = normalize_columns(factor)
            self._factors[mode] = normalized
            self._grams[mode] = normalized.T @ normalized
            weight_vectors.append(norms)
        self._weights = combine_weights(weight_vectors)

    def _aux_state(self):
        return {"weights": self._weights.copy()}

    def _load_aux_state(self, aux) -> None:
        weights = aux.get("weights")
        if weights is None:
            raise ConfigurationError("SNSMat checkpoint state is missing 'weights'")
        weights = np.array(weights, dtype=np.float64, copy=True)
        if weights.shape != (self.rank,):
            raise ConfigurationError(
                f"weights of shape {weights.shape} do not match rank {self.rank}"
            )
        self._weights = weights

    def _post_restore(self) -> None:
        # _post_initialize would re-normalise the already-normalised restored
        # factors and overwrite the saved λ; the checkpointed state is adopted
        # verbatim instead (weights arrive via _load_aux_state).
        pass

    def _prepare_sharded(self) -> None:
        # The sharded executor works with unweighted factor rows (shard-local
        # least-squares solves, as in SNS_VEC); SNS_MAT's per-sweep column
        # normalisation is inherently global and is the relaxation this
        # variant accepts under sharding.  Absorb λ into the first factor
        # once on entering sharded mode — the decomposition it represents is
        # unchanged — and keep λ ≡ 1 thereafter.  Restoring a sharded
        # checkpoint re-runs this on already-absorbed factors with λ = 1, a
        # no-op, so restore adopts the saved state verbatim.
        self._factors[0] *= self._weights[None, :]
        self._grams[0] = self._factors[0].T @ self._factors[0]
        self._weights = np.ones(self.rank, dtype=np.float64)

    @property
    def weights(self) -> np.ndarray:
        """Column weights ``λ`` produced by the latest normalisation."""
        return self._weights.copy()

    @property
    def decomposition(self) -> KruskalTensor:
        """Current factorization ``[[λ; Ā(1), ..., Ā(M)]]``."""
        self._require_initialized()
        return KruskalTensor(
            [factor.copy() for factor in self._factors], self._weights.copy()
        )

    # ------------------------------------------------------------------
    # Update rule (Algorithm 2)
    # ------------------------------------------------------------------
    def _update(self, delta: Delta) -> None:
        tensor = self.window.tensor  # already equals X + ΔX
        for mode in range(self.order):
            numerator = mttkrp(tensor, self._factors, mode, kernels=self._kernels)
            hadamard = self._hadamard_of_grams(mode)
            updated = numerator @ self._pinv(hadamard)  # Eq. (4)
            normalized, norms = normalize_columns(updated)
            self._factors[mode] = normalized
            self._weights = norms
            self._grams[mode] = normalized.T @ normalized

    def _update_batch_exact(self, batch: DeltaBatch) -> None:
        """Exact batched path: one warm-started sweep per event.

        Exactly equivalent to the per-event path — the window mutation is
        interleaved so each sweep sees the window as of its event — but the
        window's COO arrays are materialised once per event and shared by
        all ``M`` mode solves of the sweep, instead of being rebuilt by
        every :func:`mttkrp` call.  (The window does not change during a
        sweep, so the arrays, and therefore the results, are identical.)
        """
        window = self.window
        order = window.order
        for delta in batch.deltas:
            window.apply_delta(delta)
            tensor = window.tensor
            indices, values = tensor.to_coo_arrays()
            for mode in range(order):
                numerator = mttkrp_coo(
                    indices,
                    values,
                    self._factors,
                    mode,
                    tensor.shape[mode],
                    kernels=self._kernels,
                )
                hadamard = self._hadamard_of_grams(mode)
                updated = numerator @ self._pinv(hadamard)  # Eq. (4)
                normalized, norms = normalize_columns(updated)
                self._factors[mode] = normalized
                self._weights = norms
                self._grams[mode] = normalized.T @ normalized
            self._n_updates += 1
