"""SNS_RND — sampled row updates bounded by the threshold ``θ`` (Algorithm 4).

SNS_RND follows the same outline as SNS_VEC but caps the number of window
entries visited per row update at the user threshold ``θ``:

* when ``deg(m, i_m) <= θ`` the exact rule of Eq. (12) is used;
* otherwise ``θ`` coordinates of the slice are sampled uniformly, the window
  is approximated by ``X̃ + X̄`` (reconstruction plus sampled residuals), and
  the row is updated with Eq. (16), which requires the previous-Gram matrices
  ``A_prev' A`` maintained by Eq. (17).

With ``M``, ``R``, ``θ`` constant, each update takes constant time
(Theorem 5).  Like SNS_VEC it does not normalise or clip and can be unstable.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp_row
from repro.core.base import ContinuousCPD
from repro.core.sampling import sample_slice_coordinates
from repro.stream.deltas import Delta

Coordinate = tuple[int, ...]


class SNSRnd(ContinuousCPD):
    """Randomised row-wise online CP updates with per-update cost ``O(θ)``."""

    name = "sns_rnd"

    def _post_initialize(self) -> None:
        # U(m) = A_prev(m)' A(m); refreshed to the plain Grams at every event.
        self._prev_grams = [gram.copy() for gram in self._grams]

    @property
    def prev_grams(self) -> list[np.ndarray]:
        """Maintained ``A_prev(m)' A(m)`` matrices (Eq. 17)."""
        return self._prev_grams

    # ------------------------------------------------------------------
    # Algorithm 3 outline
    # ------------------------------------------------------------------
    def _update(self, delta: Delta) -> None:
        # Line 1 of Algorithm 3: snapshot the Grams at the start of the event.
        self._prev_grams = [gram.copy() for gram in self._grams]
        affected = self._affected_rows(delta)
        # Rows as they were before any update of this event, used to evaluate
        # the reconstruction X̃ in the sampled residuals.
        prev_rows: dict[tuple[int, int], np.ndarray] = {
            (mode, index): self._factors[mode][index, :].copy()
            for mode, index in affected
        }
        for mode, index in affected:
            self._update_row(mode, index, delta, prev_rows)

    # ------------------------------------------------------------------
    # updateRowRan (Algorithm 4)
    # ------------------------------------------------------------------
    def _update_row(
        self,
        mode: int,
        index: int,
        delta: Delta,
        prev_rows: dict[tuple[int, int], np.ndarray],
    ) -> None:
        tensor = self.window.tensor  # already X + ΔX
        degree = tensor.degree(mode, index)
        old_row = self._factors[mode][index, :].copy()
        if degree <= self.config.theta:
            numerator = mttkrp_row(tensor, self._factors, mode, index)
            new_row = numerator @ self._pinv(self._hadamard_of_grams(mode))  # Eq. (12)
        else:
            new_row = self._sampled_row_update(mode, index, delta, prev_rows, old_row)
        self._factors[mode][index, :] = new_row
        self._update_gram(mode, old_row, new_row)  # Eq. (13)
        # Eq. (17): A_prev' A gains the change of row `index` of mode `mode`.
        self._prev_grams[mode] += np.outer(old_row, new_row - old_row)

    def _sampled_row_update(
        self,
        mode: int,
        index: int,
        delta: Delta,
        prev_rows: dict[tuple[int, int], np.ndarray],
        old_row: np.ndarray,
    ) -> np.ndarray:
        """Eq. (16): approximate the window by ``X̃ + X̄`` with ``θ`` samples."""
        tensor = self.window.tensor
        delta_coordinates = [coordinate for coordinate, _ in delta.entries]
        samples = sample_slice_coordinates(
            tensor.shape,
            mode,
            index,
            self.config.theta,
            self._rng,
            exclude=delta_coordinates,
        )
        residual_row = np.zeros(self.rank, dtype=np.float64)
        if samples:
            observed = np.array([tensor.get(c) for c in samples], dtype=np.float64)
            reconstructed = self._reconstruction_batch(samples, prev_rows)
            residuals = observed - reconstructed  # the x̄_J values
            residual_row = residuals @ self._other_rows_product_batch(mode, samples)
        for coordinate, value in delta.entries:
            if coordinate[mode] != index:
                continue
            residual_row += value * self._other_rows_product(mode, coordinate)
        hadamard_prev = self._hadamard_of_grams(mode, self._prev_grams)
        pinv_hadamard = self._pinv(self._hadamard_of_grams(mode))
        return old_row @ hadamard_prev @ pinv_hadamard + residual_row @ pinv_hadamard
