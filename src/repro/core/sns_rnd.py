"""SNS_RND — sampled row updates bounded by the threshold ``θ`` (Algorithm 4).

SNS_RND follows the same outline as SNS_VEC but caps the number of window
entries visited per row update at the user threshold ``θ``:

* when ``deg(m, i_m) <= θ`` the exact rule of Eq. (12) is used;
* otherwise ``θ`` coordinates of the slice are sampled uniformly, the window
  is approximated by ``X̃ + X̄`` (reconstruction plus sampled residuals), and
  the row is updated with Eq. (16), which requires the previous-Gram matrices
  ``A_prev' A`` maintained by Eq. (17).

With ``M``, ``R``, ``θ`` constant, each update takes constant time
(Theorem 5).  Like SNS_VEC it does not normalise or clip and can be unstable.

The sampling machinery, the per-event outline, and the batched engine entry
point live in :class:`repro.core.randomized.RandomizedCPD`.  The vectorised
path computes each row with one linear solve against the Hadamard-of-Grams
system; the legacy path keeps the original pseudo-inverse formulation (and
its float operations) bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp_row
from repro.core.randomized import Entries, RandomizedCPD

Coordinate = tuple[int, ...]


class SNSRnd(RandomizedCPD):
    """Randomised row-wise online CP updates with per-update cost ``O(θ)``."""

    name = "sns_rnd"

    # ------------------------------------------------------------------
    # updateRowRan (Algorithm 4)
    # ------------------------------------------------------------------
    def _update_row(
        self,
        mode: int,
        index: int,
        degree: int,
        entries: Entries,
        prev_rows: dict[tuple[int, int], np.ndarray],
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]],
        delta_coordinates: list[Coordinate],
        time_shared: dict[str, np.ndarray] | None,
    ) -> None:
        tensor = self.window.tensor  # already X + ΔX
        # Each affected row is updated exactly once per event, so the
        # start-of-event snapshot still equals the live row here.
        old_row = prev_rows[(mode, index)]
        if self._config.sampling == "legacy":
            new_row = self._legacy_new_row(
                mode,
                index,
                degree,
                old_row,
                entries,
                prev_rows,
                overrides_by_mode,
                delta_coordinates,
                time_shared,
            )
        else:
            if time_shared is not None and "hadamard" in time_shared:
                hadamard = time_shared["hadamard"]
            else:
                hadamard = self._hadamard_fast(mode)
                if time_shared is not None:
                    time_shared["hadamard"] = hadamard
            if degree <= self._config.theta:
                rhs = mttkrp_row(
                    tensor, self._factors, mode, index, kernels=self._kernels
                )  # Eq. (12)
            else:
                # Eq. (16): approximate the window by X̃ + X̄ with θ samples.
                if time_shared is not None and "hadamard_prev" in time_shared:
                    hadamard_prev = time_shared["hadamard_prev"]
                else:
                    hadamard_prev = self._hadamard_fast(mode, self._prev_grams)
                    if time_shared is not None:
                        time_shared["hadamard_prev"] = hadamard_prev
                rhs = old_row @ hadamard_prev + self._sampled_contribution(
                    mode,
                    index,
                    entries,
                    prev_rows,
                    overrides_by_mode,
                    delta_coordinates,
                )
            new_row = self._solve_regularized(hadamard, rhs)
        # Eq. (13) and Eq. (17): factor write plus both Gram updates.
        self._commit_row(mode, index, old_row, new_row)

    def _legacy_new_row(
        self,
        mode: int,
        index: int,
        degree: int,
        old_row: np.ndarray,
        entries: Entries,
        prev_rows: dict[tuple[int, int], np.ndarray],
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]],
        delta_coordinates: list[Coordinate],
        time_shared: dict[str, np.ndarray] | None,
    ) -> np.ndarray:
        """Original pseudo-inverse formulation, float operations pinned."""
        if time_shared is not None and "pinv" in time_shared:
            pinv_hadamard = time_shared["pinv"]
        else:
            pinv_hadamard = self._pinv(self._hadamard_of_grams(mode))
            if time_shared is not None:
                time_shared["pinv"] = pinv_hadamard
        if degree <= self._config.theta:
            numerator = mttkrp_row(
                self.window.tensor, self._factors, mode, index, kernels=self._kernels
            )
            return numerator @ pinv_hadamard  # Eq. (12)
        if time_shared is not None and "hadamard_prev" in time_shared:
            hadamard_prev = time_shared["hadamard_prev"]
        else:
            hadamard_prev = self._hadamard_of_grams(mode, self._prev_grams)
            if time_shared is not None:
                time_shared["hadamard_prev"] = hadamard_prev
        contribution = self._sampled_contribution(
            mode, index, entries, prev_rows, overrides_by_mode, delta_coordinates
        )
        # Eq. (16), in the seed's exact evaluation order.
        return old_row @ hadamard_prev @ pinv_hadamard + contribution @ pinv_hadamard
