"""SNS+_RND — sampled coordinate descent with clipping (Algorithm 5, updateRowRan+).

The paper's recommended default: per-update cost bounded by ``θ`` like
SNS_RND, numerical stability through clipping like SNS+_VEC, and constant
per-event time when ``M``, ``R``, ``θ`` are constants (Theorem 7).

For each affected row:

* if ``deg(m, i_m) <= θ`` the exact coordinate-descent rule of Eq. (21) is
  used;
* otherwise ``θ`` coordinates are sampled in the row's slice, the window is
  approximated by ``X̃ + X̄``, and Eq. (23) is used, which needs the
  previous-Gram matrices ``A_prev' A`` maintained by Eq. (26).

Every updated entry is clipped into ``[-η, η]``.

The sampling machinery, the per-event outline, and the batched engine entry
point live in :class:`repro.core.randomized.RandomizedCPD`.  On the
vectorised path the coordinate-descent sweep is computed as one triangular
solve — a Gauss-Seidel sweep in matrix form — and falls back to the
reference entry-by-entry loop exactly when clipping (or a non-positive
diagonal) would engage; the legacy path always runs the reference loop, whose
float operations are pinned bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp_row
from repro.core.randomized import Entries, RandomizedCPD, _lapack_trtrs
from repro.core.rowmath import clipped_coordinate_descent

Coordinate = tuple[int, ...]


class SNSRndPlus(RandomizedCPD):
    """Sampled coordinate-descent updates with clipping: the paper's default choice."""

    name = "sns_rnd_plus"
    shard_clipped = True

    def _post_initialize(self) -> None:
        super()._post_initialize()
        rank = self.rank
        # Triangular-sweep scratch: strict-triangle masks plus two buffers,
        # and a persistent strided view of the lower buffer's diagonal.
        self._lower_mask = np.tril(np.ones((rank, rank)))
        self._strict_upper_mask = np.triu(np.ones((rank, rank)), 1)
        self._lower_scratch = np.empty((rank, rank))
        self._upper_scratch = np.empty((rank, rank))
        self._lower_diagonal = self._lower_scratch.reshape(-1)[:: rank + 1]
        # Clipping constants, resolved once (hot path: one lookup each).
        self._cd_eta = float(self._config.eta)
        self._cd_lower = 0.0 if self._config.nonnegative else -self._cd_eta
        self._cd_ridge = float(self._config.regularization)
        self._cd_legacy = self._config.sampling == "legacy"

    # ------------------------------------------------------------------
    # updateRowRan+ (Algorithm 5)
    # ------------------------------------------------------------------
    def _update_row(
        self,
        mode: int,
        index: int,
        degree: int,
        entries: Entries,
        prev_rows: dict[tuple[int, int], np.ndarray],
        overrides_by_mode: dict[int, list[tuple[int, np.ndarray]]],
        delta_coordinates: list[Coordinate],
        time_shared: dict[str, np.ndarray] | None,
    ) -> None:
        tensor = self.window.tensor  # already X + ΔX
        # Each affected row is updated exactly once per event, so the
        # start-of-event snapshot still equals the live row here.
        old_row = prev_rows[(mode, index)]
        if time_shared is not None and "hadamard" in time_shared:
            hadamard = time_shared["hadamard"]
        else:
            hadamard = self._hadamard_fast(mode)
            if time_shared is not None:
                time_shared["hadamard"] = hadamard
        if degree <= self._config.theta:
            # Eq. (21): exact data term over the row's non-zeros.
            numerator = mttkrp_row(
                tensor, self._factors, mode, index, kernels=self._kernels
            )
        else:
            # Eq. (23): e-term via the previous Grams plus sampled residuals
            # and the explicit ΔX contribution.
            if time_shared is not None and "hadamard_prev" in time_shared:
                hadamard_prev = time_shared["hadamard_prev"]
            else:
                hadamard_prev = self._hadamard_fast(mode, self._prev_grams)
                if time_shared is not None:
                    time_shared["hadamard_prev"] = hadamard_prev
            numerator = old_row @ hadamard_prev + self._sampled_contribution(
                mode, index, entries, prev_rows, overrides_by_mode, delta_coordinates
            )
        new_row = self._coordinate_descent(
            old_row, numerator, hadamard, time_shared=time_shared
        )
        # Eqs. (24)-(25) and Eq. (26): factor write plus both Gram updates.
        self._commit_row(mode, index, old_row, new_row)

    # ------------------------------------------------------------------
    # Coordinate descent (lines 12-15 of Algorithm 5)
    # ------------------------------------------------------------------
    def _coordinate_descent(
        self,
        old_row: np.ndarray,
        numerator: np.ndarray,
        hadamard: np.ndarray,
        time_shared: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """One clipped coordinate-descent sweep over the row.

        The legacy path always runs the reference loop (pinned float
        operations).  The vectorised path exploits that one unclipped
        Gauss-Seidel sweep is the solution of the triangular system ``(L +
        D + ridge·I) row_new = numerator - U row_old`` (``L``/``U`` the
        strict triangles of the symmetric Hadamard-of-Grams matrix): it
        solves that system once and accepts the result whenever every entry
        lies inside the clipping box — in which case the sequential sweep
        would never have clipped and computes the same values — falling back
        to the reference loop otherwise (clipping engaged, non-positive
        diagonal, or a singular triangle).
        """
        if self._cd_legacy:
            return self._coordinate_descent_reference(old_row, numerator, hadamard)
        eta = self._cd_eta
        lower_bound = self._cd_lower
        ridge = self._cd_ridge
        if ridge <= 0.0:
            # Without the ridge a zero Hadamard diagonal is possible, and the
            # reference loop's "skip this entry" semantics must apply.  (The
            # diagonal is a product of Gram diagonals, hence never negative.)
            if (np.diagonal(hadamard) <= 0.0).any():
                return self._coordinate_descent_reference(
                    old_row, numerator, hadamard
                )
        lower = self._lower_scratch
        if time_shared is None or time_shared.get("cd_triangles") is not hadamard:
            # Build T = tril(H) + ridge·I and the strict upper triangle in
            # the scratch buffers.  The (up to two) time rows of one event
            # run back to back with the same shared Hadamard matrix, so the
            # second row reuses the buffers as they stand.
            np.multiply(hadamard, self._lower_mask, out=lower)
            if ridge:
                self._lower_diagonal += ridge
            np.multiply(hadamard, self._strict_upper_mask, out=self._upper_scratch)
            if time_shared is not None:
                time_shared["cd_triangles"] = hadamard
        rhs = numerator - self._upper_scratch @ old_row
        if _lapack_trtrs is not None:
            # rhs is a fresh temporary, so LAPACK may solve in place.
            candidate, info = _lapack_trtrs(lower, rhs, lower=1, overwrite_b=1)
            if info != 0:
                return self._coordinate_descent_reference(
                    old_row, numerator, hadamard
                )
        else:
            try:
                candidate = np.linalg.solve(lower, rhs)
            except np.linalg.LinAlgError:
                return self._coordinate_descent_reference(
                    old_row, numerator, hadamard
                )
        if candidate.max() <= eta and candidate.min() >= lower_bound:
            return candidate
        return self._coordinate_descent_reference(old_row, numerator, hadamard)

    def _coordinate_descent_reference(
        self,
        old_row: np.ndarray,
        numerator: np.ndarray,
        hadamard: np.ndarray,
    ) -> np.ndarray:
        """Entry-by-entry update with clipping — the seed implementation.

        Delegates to the shared pure sweep
        :func:`repro.core.rowmath.clipped_coordinate_descent` (bit-identical
        float operations to the historical inline loop).
        """
        eta = self._config.eta
        lower = 0.0 if self._config.nonnegative else -eta
        return clipped_coordinate_descent(
            old_row, numerator, hadamard, eta, lower, self._config.regularization
        )
