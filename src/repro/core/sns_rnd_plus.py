"""SNS+_RND — sampled coordinate descent with clipping (Algorithm 5, updateRowRan+).

The paper's recommended default: per-update cost bounded by ``θ`` like
SNS_RND, numerical stability through clipping like SNS+_VEC, and constant
per-event time when ``M``, ``R``, ``θ`` are constants (Theorem 7).

For each affected row:

* if ``deg(m, i_m) <= θ`` the exact coordinate-descent rule of Eq. (21) is
  used;
* otherwise ``θ`` coordinates are sampled in the row's slice, the window is
  approximated by ``X̃ + X̄``, and Eq. (23) is used, which needs the
  previous-Gram matrices ``A_prev' A`` maintained by Eq. (26).

Every updated entry is clipped into ``[-η, η]``.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp_row
from repro.core.base import ContinuousCPD
from repro.core.sampling import sample_slice_coordinates
from repro.stream.deltas import Delta

Coordinate = tuple[int, ...]


class SNSRndPlus(ContinuousCPD):
    """Sampled coordinate-descent updates with clipping: the paper's default choice."""

    name = "sns_rnd_plus"

    def _post_initialize(self) -> None:
        self._prev_grams = [gram.copy() for gram in self._grams]

    @property
    def prev_grams(self) -> list[np.ndarray]:
        """Maintained ``A_prev(m)' A(m)`` matrices (Eq. 26)."""
        return self._prev_grams

    # ------------------------------------------------------------------
    # Algorithm 3 outline
    # ------------------------------------------------------------------
    def _update(self, delta: Delta) -> None:
        self._prev_grams = [gram.copy() for gram in self._grams]
        affected = self._affected_rows(delta)
        prev_rows: dict[tuple[int, int], np.ndarray] = {
            (mode, index): self._factors[mode][index, :].copy()
            for mode, index in affected
        }
        for mode, index in affected:
            self._update_row(mode, index, delta, prev_rows)

    # ------------------------------------------------------------------
    # updateRowRan+ (Algorithm 5)
    # ------------------------------------------------------------------
    def _update_row(
        self,
        mode: int,
        index: int,
        delta: Delta,
        prev_rows: dict[tuple[int, int], np.ndarray],
    ) -> None:
        tensor = self.window.tensor  # already X + ΔX
        degree = tensor.degree(mode, index)
        old_row = self._factors[mode][index, :].copy()
        hadamard = self._hadamard_of_grams(mode)
        if degree <= self.config.theta:
            # Eq. (21): exact data term over the row's non-zeros.
            numerator = mttkrp_row(tensor, self._factors, mode, index)
        else:
            # Eq. (23): e-term via the previous Grams plus sampled residuals
            # and the explicit ΔX contribution.
            hadamard_prev = self._hadamard_of_grams(mode, self._prev_grams)
            numerator = old_row @ hadamard_prev + self._sampled_contribution(
                mode, index, delta, prev_rows
            )
        new_row = self._coordinate_descent(mode, index, numerator, hadamard)
        self._factors[mode][index, :] = new_row
        self._update_gram(mode, old_row, new_row)  # Eqs. (24)-(25)
        self._prev_grams[mode] += np.outer(old_row, new_row - old_row)  # Eq. (26)

    def _sampled_contribution(
        self,
        mode: int,
        index: int,
        delta: Delta,
        prev_rows: dict[tuple[int, int], np.ndarray],
    ) -> np.ndarray:
        """``sum_J (x̄_J + Δx_J) * prod_{n != m} a(n)_{j_n k}`` of Eq. (23)."""
        tensor = self.window.tensor
        delta_coordinates = [coordinate for coordinate, _ in delta.entries]
        samples = sample_slice_coordinates(
            tensor.shape,
            mode,
            index,
            self.config.theta,
            self._rng,
            exclude=delta_coordinates,
        )
        contribution = np.zeros(self.rank, dtype=np.float64)
        if samples:
            observed = np.array([tensor.get(c) for c in samples], dtype=np.float64)
            reconstructed = self._reconstruction_batch(samples, prev_rows)
            residuals = observed - reconstructed  # the x̄_J values
            contribution = residuals @ self._other_rows_product_batch(mode, samples)
        for coordinate, value in delta.entries:
            if coordinate[mode] != index:
                continue
            contribution += value * self._other_rows_product(mode, coordinate)
        return contribution

    def _coordinate_descent(
        self,
        mode: int,
        index: int,
        numerator: np.ndarray,
        hadamard: np.ndarray,
    ) -> np.ndarray:
        """Entry-by-entry update with clipping (lines 12-15 of Algorithm 5)."""
        eta = self.config.eta
        lower = 0.0 if self.config.nonnegative else -eta
        ridge = self.config.regularization
        row = self._factors[mode][index, :].copy()
        for k in range(self.rank):
            column = hadamard[:, k]
            c_k = column[k] + ridge
            if c_k <= 0.0:
                continue
            d_k = float(row @ column) - row[k] * column[k]
            updated = (numerator[k] - d_k) / c_k
            if updated > eta:
                updated = eta
            elif updated < lower:
                updated = lower
            row[k] = updated
        return row
