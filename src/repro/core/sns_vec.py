"""SNS_VEC — row-wise least-squares updates (Algorithms 3-4 of the paper).

Only the factor rows that approximate changed window entries are touched:

* the (at most two) time-mode rows whose tensor units gained or lost the
  event's value are updated with the *approximate* rule of Eq. (9), which
  costs ``O(M R)`` because ``ΔX`` has at most two non-zeros;
* the one row per categorical mode indexed by the event's categorical indices
  is updated with the *exact* least-squares rule of Eq. (12), which costs
  ``O(R · deg(m, i_m))``.

Gram matrices are maintained incrementally with Eq. (13).  SNS_VEC does not
normalise or clip, so it can become numerically unstable on some streams —
the behaviour the paper demonstrates and the ``+`` variants fix.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp_row
from repro.core.base import ContinuousCPD
from repro.stream.deltas import Delta, DeltaBatch


class SNSVec(ContinuousCPD):
    """Row-wise online CP updates (exact non-time rows, approximate time rows)."""

    name = "sns_vec"

    # ------------------------------------------------------------------
    # Algorithm 3 outline
    # ------------------------------------------------------------------
    def _update(self, delta: Delta) -> None:
        for mode, index in self._affected_rows(delta):
            if mode == self.time_mode:
                self._update_time_row(index, delta)
            else:
                self._update_categorical_row(mode, index)

    def _update_batch_exact(self, batch: DeltaBatch) -> None:
        """Exact batched path, exactly equivalent to the per-event path.

        A shift event updates two time-mode rows, and both solves use the
        Hadamard product of the *categorical* Gram matrices — which the
        time-row updates themselves never change.  The per-event path
        therefore computes the same ``R x R`` inverse twice; here it is
        computed once per event and shared, which changes no values.
        """
        window = self.window
        time_mode = self.time_mode
        for delta in batch.deltas:
            window.apply_delta(delta)
            inverse: np.ndarray | None = None
            for mode, index in self._affected_rows(delta):
                if mode == time_mode:
                    if inverse is None:
                        inverse = self._pinv(self._hadamard_of_grams(mode))
                    self._update_time_row(index, delta, inverse=inverse)
                else:
                    self._update_categorical_row(mode, index)
            self._n_updates += 1

    # ------------------------------------------------------------------
    # Update rules
    # ------------------------------------------------------------------
    def _update_time_row(
        self, index: int, delta: Delta, inverse: np.ndarray | None = None
    ) -> None:
        """Approximate update of one time-mode row (Eq. 9).

        ``inverse`` optionally supplies a precomputed
        ``pinv(*_{n != time} A(n)'A(n))``; time-row updates only modify the
        time-mode Gram, so one inverse is valid for every time row of one
        event.
        """
        mode = self.time_mode
        old_row = self._factors[mode][index, :].copy()
        delta_row = np.zeros(self.rank, dtype=np.float64)
        for coordinate, value in delta.entries:
            if coordinate[mode] != index:
                continue
            delta_row += value * self._other_rows_product(mode, coordinate)
        if inverse is None:
            inverse = self._pinv(self._hadamard_of_grams(mode))
        new_row = old_row + delta_row @ inverse
        self._factors[mode][index, :] = new_row
        self._update_gram(mode, old_row, new_row)

    def _update_categorical_row(self, mode: int, index: int) -> None:
        """Exact least-squares update of one categorical-mode row (Eq. 12)."""
        old_row = self._factors[mode][index, :].copy()
        numerator = mttkrp_row(
            self.window.tensor, self._factors, mode, index, kernels=self._kernels
        )
        hadamard = self._hadamard_of_grams(mode)
        new_row = numerator @ self._pinv(hadamard)
        self._factors[mode][index, :] = new_row
        self._update_gram(mode, old_row, new_row)
