"""SNS+_VEC — coordinate descent with clipping (Algorithm 5, updateRowVec+).

SNS+_VEC updates the same rows as SNS_VEC but entry by entry (coordinate
descent), which lets it clip each updated entry into ``[-η, η]`` without ever
increasing the objective (footnote 3 of the paper).  Clipping removes the
numerical instability SNS_VEC exhibits, at a small cost in accuracy, and the
per-update complexity drops to Eq. (27) because no ``R x R`` pseudo-inverse is
needed.
"""

from __future__ import annotations

import numpy as np

from repro.als.mttkrp import mttkrp_row
from repro.core.base import ContinuousCPD
from repro.core.rowmath import clipped_coordinate_descent
from repro.stream.deltas import Delta, DeltaBatch


class SNSVecPlus(ContinuousCPD):
    """Coordinate-descent row updates with entry clipping at ``η``."""

    name = "sns_vec_plus"
    shard_clipped = True

    # ------------------------------------------------------------------
    # Algorithm 3 outline
    # ------------------------------------------------------------------
    def _update(self, delta: Delta) -> None:
        for mode, index in self._affected_rows(delta):
            self._update_row(mode, index, delta)

    def _update_batch_exact(self, batch: DeltaBatch) -> None:
        """Exact batched path, exactly equivalent to the per-event path.

        As in :meth:`SNSVec._update_batch_exact`, the Hadamard-of-Grams
        matrix of the time mode is unchanged by time-row updates, so one
        matrix per event serves both time rows of a shift instead of being
        rebuilt per row.  No values change.
        """
        window = self.window
        time_mode = self.time_mode
        for delta in batch.deltas:
            window.apply_delta(delta)
            time_hadamard: np.ndarray | None = None
            for mode, index in self._affected_rows(delta):
                if mode == time_mode:
                    if time_hadamard is None:
                        time_hadamard = self._hadamard_of_grams(mode)
                    self._update_row(mode, index, delta, hadamard=time_hadamard)
                else:
                    self._update_row(mode, index, delta)
            self._n_updates += 1

    # ------------------------------------------------------------------
    # updateRowVec+ (Algorithm 5)
    # ------------------------------------------------------------------
    def _update_row(
        self,
        mode: int,
        index: int,
        delta: Delta,
        hadamard: np.ndarray | None = None,
    ) -> None:
        old_row = self._factors[mode][index, :].copy()
        if hadamard is None:
            hadamard = self._hadamard_of_grams(mode)  # *_{n != m} A(n)'A(n)
        if mode == self.time_mode:
            # Eq. (22): approximate X by X̃ via the e-term, plus the explicit ΔX part.
            numerator = old_row @ hadamard + self._delta_contribution(mode, index, delta)
        else:
            # Eq. (21): exact data term over Omega(m)_{i_m} of X + ΔX.
            numerator = mttkrp_row(
                self.window.tensor, self._factors, mode, index, kernels=self._kernels
            )
        new_row = self._coordinate_descent(mode, index, numerator, hadamard)
        self._factors[mode][index, :] = new_row
        self._update_gram(mode, old_row, new_row)  # Eqs. (24)-(25)

    def _delta_contribution(self, mode: int, index: int, delta: Delta) -> np.ndarray:
        """``sum_J Δx_J * prod_{n != m} a(n)_{j_n k}`` over the delta's entries."""
        contribution = np.zeros(self.rank, dtype=np.float64)
        for coordinate, value in delta.entries:
            if coordinate[mode] != index:
                continue
            contribution += value * self._other_rows_product(mode, coordinate)
        return contribution

    def _coordinate_descent(
        self,
        mode: int,
        index: int,
        numerator: np.ndarray,
        hadamard: np.ndarray,
    ) -> np.ndarray:
        """Update the row entry by entry with clipping (lines 2-5 of Algorithm 5).

        For each column ``k``:

        * ``c_k`` is the ``(k, k)`` entry of the Hadamard-of-Grams matrix
          (Eq. 20, first line),
        * ``d_k = sum_{r != k} a_r * H_{r k}`` uses the *current* row, so
          entries updated earlier in this loop immediately influence later
          ones (true coordinate descent),
        * the data term ``numerator[k]`` was precomputed by the caller
          because it does not depend on the row being updated.

        The sweep itself is the shared pure function
        :func:`repro.core.rowmath.clipped_coordinate_descent` (bit-identical
        float operations to the historical inline loop).
        """
        eta = self.config.eta
        lower = 0.0 if self.config.nonnegative else -eta
        return clipped_coordinate_descent(
            self._factors[mode][index, :],
            numerator,
            hadamard,
            eta,
            lower,
            self.config.regularization,
        )
