"""Datasets: paper metadata, synthetic stream generators, and loaders.

The paper evaluates on four real-world sparse tensor streams (Table II).
Those CSV dumps are not redistributable inside this offline reproduction, so
:mod:`repro.data.generators` builds synthetic equivalents: streams with the
same mode structure, a comparable sparsity regime, and a genuine low-rank
signal (a latent-factor model driving a Poisson event process).  The real
datasets' metadata is kept in :mod:`repro.data.datasets` for reference and
for the Table II benchmark.
"""

from repro.data.datasets import (
    DATASETS,
    PAPER_DATASETS,
    DatasetSpec,
    PaperDatasetInfo,
    get_dataset_spec,
)
from repro.data.generators import (
    SyntheticStreamConfig,
    generate_dataset,
    generate_synthetic_stream,
)
from repro.data.loaders import load_stream_csv

__all__ = [
    "DATASETS",
    "PAPER_DATASETS",
    "DatasetSpec",
    "PaperDatasetInfo",
    "get_dataset_spec",
    "SyntheticStreamConfig",
    "generate_dataset",
    "generate_synthetic_stream",
    "load_stream_csv",
]
