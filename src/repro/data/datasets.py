"""Dataset metadata: the paper's Table II and our synthetic equivalents.

``PAPER_DATASETS`` records the real datasets exactly as Table II reports them
(for documentation and for the Table II benchmark output).  ``DATASETS`` maps
the same names to :class:`DatasetSpec` objects describing the scaled-down
synthetic equivalents this reproduction actually runs on, including the
default hyper-parameters of Table III.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import ConfigurationError


@dataclasses.dataclass(frozen=True, slots=True)
class PaperDatasetInfo:
    """One row of Table II of the paper (the real dataset)."""

    name: str
    description: str
    shape: tuple[int, ...]
    n_nonzeros: float
    density: float
    time_unit: str


@dataclasses.dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A synthetic equivalent of one paper dataset plus its default hyper-parameters.

    Attributes mirror Table III: rank ``R``, window length ``W``, period ``T``
    (in synthetic time units), sampling threshold ``θ``, and clipping
    threshold ``η``.  ``mode_sizes`` / ``n_records`` / ``rank_truth`` describe
    the synthetic generator; they are scaled down from the real data so the
    pure-Python experiments complete quickly.
    """

    name: str
    mode_names: tuple[str, ...]
    mode_sizes: tuple[int, ...]
    period: float
    window_length: int
    rank: int
    theta: int
    eta: float
    n_records: int
    rank_truth: int
    records_per_period: float
    seed: int

    @property
    def order(self) -> int:
        """Tensor order ``M`` (categorical modes plus the time mode)."""
        return len(self.mode_sizes) + 1

    @property
    def window_shape(self) -> tuple[int, ...]:
        """Shape of the tensor window built from this dataset."""
        return (*self.mode_sizes, self.window_length)


#: Table II of the paper, verbatim (real datasets; not shipped here).
PAPER_DATASETS: dict[str, PaperDatasetInfo] = {
    "divvy_bikes": PaperDatasetInfo(
        name="Divvy Bikes",
        description="sources x destinations x timestamps [minutes]",
        shape=(673, 673, 525_594),
        n_nonzeros=3.82e6,
        density=1.604e-5,
        time_unit="minutes",
    ),
    "chicago_crime": PaperDatasetInfo(
        name="Chicago Crime",
        description="communities x crime types x timestamps [hours]",
        shape=(77, 32, 148_464),
        n_nonzeros=5.33e6,
        density=1.457e-2,
        time_unit="hours",
    ),
    "nyc_taxi": PaperDatasetInfo(
        name="New York Taxi",
        description="sources x destinations x timestamps [seconds]",
        shape=(265, 265, 5_184_000),
        n_nonzeros=84.39e6,
        density=2.318e-4,
        time_unit="seconds",
    ),
    "ride_austin": PaperDatasetInfo(
        name="Ride Austin",
        description="sources x destinations x colors x timestamps [minutes]",
        shape=(219, 219, 24, 285_136),
        n_nonzeros=0.89e6,
        density=2.739e-6,
        time_unit="minutes",
    ),
}


#: Synthetic equivalents actually used by the experiments (scaled down).
#: Periods are in abstract "time units"; the generator emits integer-valued
#: timestamps, so a period of 360 means one tensor unit aggregates 360 ticks.
DATASETS: dict[str, DatasetSpec] = {
    "divvy_bikes": DatasetSpec(
        name="divvy_bikes",
        mode_names=("source", "destination"),
        mode_sizes=(60, 60),
        period=360.0,
        window_length=10,
        rank=20,
        theta=20,
        eta=1000.0,
        n_records=12_000,
        rank_truth=8,
        records_per_period=400.0,
        seed=11,
    ),
    "chicago_crime": DatasetSpec(
        name="chicago_crime",
        mode_names=("community", "crime_type"),
        mode_sizes=(77, 32),
        period=360.0,
        window_length=10,
        rank=20,
        theta=20,
        eta=1000.0,
        n_records=15_000,
        rank_truth=6,
        records_per_period=500.0,
        seed=13,
    ),
    "nyc_taxi": DatasetSpec(
        name="nyc_taxi",
        mode_names=("source", "destination"),
        mode_sizes=(80, 80),
        period=360.0,
        window_length=10,
        rank=20,
        theta=20,
        eta=1000.0,
        n_records=20_000,
        rank_truth=10,
        records_per_period=650.0,
        seed=17,
    ),
    "ride_austin": DatasetSpec(
        name="ride_austin",
        mode_names=("source", "destination", "color"),
        mode_sizes=(40, 40, 6),
        period=360.0,
        window_length=10,
        rank=20,
        theta=50,
        eta=1000.0,
        n_records=9_000,
        rank_truth=5,
        records_per_period=300.0,
        seed=19,
    ),
}


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a synthetic dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
