"""Loaders for user-provided multi-aspect stream files.

The paper's public datasets ship as CSV files of
``index_1, ..., index_{M-1}, value, timestamp`` rows; users who have those
files (or their own data in the same layout) can load them here and run the
same experiments the synthetic benches run.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.stream.stream import MultiAspectStream


def load_stream_csv(
    path: str | Path,
    mode_sizes: Sequence[int] | None = None,
    mode_names: Sequence[str] | None = None,
    has_header: bool = True,
) -> MultiAspectStream:
    """Load a multi-aspect data stream from a CSV file.

    Thin wrapper around :meth:`MultiAspectStream.from_csv` kept here so data
    entry points live in one package.
    """
    return MultiAspectStream.from_csv(
        path,
        mode_sizes=mode_sizes,
        mode_names=mode_names,
        has_header=has_header,
        sort=True,
    )
