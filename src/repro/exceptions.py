"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can distinguish library errors from bugs or
numpy-level failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ShapeError(ReproError, ValueError):
    """A tensor, matrix, or coordinate has an incompatible shape."""


class IndexOutOfBoundsError(ReproError, IndexError):
    """A coordinate lies outside the declared tensor shape."""


class RankError(ReproError, ValueError):
    """A decomposition rank is invalid (non-positive or inconsistent)."""


class StreamOrderError(ReproError, ValueError):
    """A multi-aspect data stream violates chronological ordering."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or experiment was configured with invalid parameters."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring fitted factors was called before ``fit``."""


class UnknownAlgorithmError(ReproError, KeyError):
    """A registry lookup referenced an algorithm name that is not registered."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator was asked for an impossible configuration."""


class TimerError(ReproError, RuntimeError):
    """A timing helper was driven through an invalid start/stop sequence."""


class WorkerError(ReproError, RuntimeError):
    """A parallel experiment worker failed beyond the configured retry budget."""


class CheckpointError(ConfigurationError):
    """A checkpoint / snapshot directory is missing pieces, truncated, or corrupt.

    Subclasses :class:`ConfigurationError` so existing ``except
    ConfigurationError`` handlers around the load paths keep working; the
    narrower type lets a service's background checkpoint reader distinguish
    "this directory is damaged" (skip / rewrite it) from "you called the API
    wrong".
    """


class ConcurrentIterationError(ReproError, RuntimeError):
    """A second ``events()`` / ``iter_batches()`` iteration was started while
    one is already active on the same processor.

    Concurrent iteration would interleave two drains of the same scheduler
    heap and corrupt its state; callers must exhaust (or close) the active
    iterator first.
    """


class ServiceError(ReproError, RuntimeError):
    """A streaming-service request could not be honoured.

    Carries a machine-readable ``code`` (e.g. ``"unknown_stream"``,
    ``"overloaded"``, ``"stream_cap"``, ``"conflict"``) so the wire protocol
    can map errors onto structured responses.  The ``"connection"`` code is
    special: it is raised by the *client* for transport failures (reset,
    timeout, truncated response) that never produced a server response, so
    callers can branch on transport-vs-server faults.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = str(code)


class InjectedFaultError(ReproError, RuntimeError):
    """An error deliberately raised by the fault-injection harness.

    Raised at ``exception``-kind fault points of a
    :class:`~repro.service.faults.FaultPlan`, so chaos tests can tell an
    injected failure apart from a genuine bug with one ``except`` clause.
    """

class KernelUnavailableError(ReproError, RuntimeError):
    """A compiled-kernel backend cannot be loaded in this environment.

    Raised by a backend factory in :mod:`repro.kernels.registry` (e.g. the
    numba backend when numba is not importable or ``NUMBA_DISABLE_JIT`` is
    set).  Callers that *request* such a backend degrade to the numpy
    reference with a single warning instead of propagating this error; it
    only escapes through :func:`repro.kernels.registry.load_backend`, the
    strict loader.
    """
