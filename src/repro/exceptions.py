"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can distinguish library errors from bugs or
numpy-level failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ShapeError(ReproError, ValueError):
    """A tensor, matrix, or coordinate has an incompatible shape."""


class IndexOutOfBoundsError(ReproError, IndexError):
    """A coordinate lies outside the declared tensor shape."""


class RankError(ReproError, ValueError):
    """A decomposition rank is invalid (non-positive or inconsistent)."""


class StreamOrderError(ReproError, ValueError):
    """A multi-aspect data stream violates chronological ordering."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or experiment was configured with invalid parameters."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring fitted factors was called before ``fit``."""


class UnknownAlgorithmError(ReproError, KeyError):
    """A registry lookup referenced an algorithm name that is not registered."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator was asked for an impossible configuration."""


class TimerError(ReproError, RuntimeError):
    """A timing helper was driven through an invalid start/stop sequence."""


class WorkerError(ReproError, RuntimeError):
    """A parallel experiment worker failed beyond the configured retry budget."""
