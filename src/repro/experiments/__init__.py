"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment is a plain function returning a result dataclass plus a
``format_*`` helper that renders the paper-style rows/series as text.  The
benchmarks under ``benchmarks/`` and the CLI (:mod:`repro.cli`) are thin
wrappers around these functions.

Mapping to the paper:

========================  =====================================================
Module                     Paper content
========================  =====================================================
``granularity``            Fig. 1(c,d,e) — continuous vs. conventional CPD
``fitness_over_time``      Fig. 4 — relative fitness over time
``speed_fitness``          Fig. 5 — runtime per update & average relative fitness
``scalability``            Fig. 6 — total runtime vs. number of events
``theta_sweep``            Fig. 7 — effect of the sampling threshold θ
``eta_sweep``              Fig. 8 — effect of the clipping threshold η
``anomaly_experiment``     Fig. 9 — anomaly detection precision and latency
``config``                 Table III — default hyper-parameters
(``repro.data.datasets``)  Table II — dataset summary
========================  =====================================================
"""

from repro.experiments.config import ExperimentSettings, default_settings
from repro.experiments.parallel import (
    ExperimentTask,
    method_task,
    run_tasks,
    run_tasks_over_snapshot,
)
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    run_experiment,
    run_method,
)

__all__ = [
    "ExperimentSettings",
    "default_settings",
    "ExperimentResult",
    "ExperimentTask",
    "MethodResult",
    "method_task",
    "run_experiment",
    "run_method",
    "run_tasks",
    "run_tasks_over_snapshot",
]
