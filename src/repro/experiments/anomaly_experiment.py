"""Fig. 9 — anomaly detection with SNS+_RND versus per-period baselines.

Protocol (Section VI-G of the paper): inject 20 abnormally large values into
the stream, score every observation in the newest tensor unit by the Z-score
of its reconstruction error, and report

* precision at top-20 (which equals recall here since 20 anomalies exist), and
* the average time gap between an anomaly's occurrence and its detection.

The continuous method scores each arrival the instant it happens (before
updating its factors), so its detection delay is essentially zero; the
per-period baselines can only score a completed unit at the next period
boundary, so their delay averages around half a period — the qualitative
result of Fig. 9.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.anomaly.detector import ZScoreDetector
from repro.anomaly.injection import InjectedAnomaly, inject_anomalies
from repro.anomaly.scoring import score_batch
from repro.baselines.base import BaselineConfig
from repro.baselines.registry import create_baseline
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.als.als import decompose
from repro.experiments.config import ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.runner import method_kind, method_label
from repro.data.generators import generate_dataset
from repro.exceptions import ConfigurationError, DataGenerationError
from repro.stream.checkpoint import is_checkpoint, restore_run
from repro.stream.events import EventKind
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


@dataclasses.dataclass(slots=True)
class AnomalyMethodResult:
    """Detection quality of one method."""

    name: str
    label: str
    kind: str
    precision_at_k: float
    mean_detection_delay: float
    n_scored: int


@dataclasses.dataclass(slots=True)
class AnomalyExperimentResult:
    """Fig. 9 outcome across methods."""

    dataset: str
    n_anomalies: int
    methods: dict[str, AnomalyMethodResult]


def run_anomaly_experiment(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = ("sns_rnd_plus", "online_scp", "cp_stream"),
    n_anomalies: int = 20,
    magnitude_factor: float = 5.0,
    top_k: int | None = None,
    replay_periods: int = 4,
) -> AnomalyExperimentResult:
    """Run the Fig. 9 experiment on one dataset.

    The stream is replayed for ``replay_periods`` periods after the initial
    window, and the anomalies are injected into the first
    ``replay_periods - 1`` of them, so every anomaly arrives while the
    methods are streaming and at least one period boundary follows it (the
    per-period baselines can only detect at boundaries).

    Checkpointing (continuous methods only — the per-period baselines carry
    no checkpointable state): with ``settings.checkpoint_dir`` set, each
    continuous method's run state *including the detector's running
    statistics and recorded scores* is saved under
    ``<checkpoint_dir>/anomaly-<method>`` every ``settings.checkpoint_events``
    events and at the end of the run.  With ``settings.resume=True`` an
    existing checkpoint there is restored and the replay continues — the
    resumed run emits the identical score stream (and hence identical
    precision@k / detection delays) as an uninterrupted one, on both the
    per-event and the batched engine.

    With ``settings.batched=True`` continuous methods are replayed through
    the batched engine (:func:`repro.anomaly.score_batch`): observed values
    stay exact per event, predictions use batch-start factors, and the
    model adapts once per batch.
    """
    settings = settings or ExperimentSettings(dataset="nyc_taxi")
    if settings.checkpoint_events is not None and settings.checkpoint_events <= 0:
        raise ConfigurationError(
            f"checkpoint_events must be positive, got {settings.checkpoint_events}"
        )
    if settings.checkpoint_dir is None and (
        settings.checkpoint_events is not None or settings.resume
    ):
        raise ConfigurationError(
            "checkpoint_events/resume require checkpoint_dir — without it "
            "no checkpoint is ever written or read"
        )
    top_k = n_anomalies if top_k is None else top_k
    clean_stream, spec = generate_dataset(settings.dataset, scale=settings.scale)
    window_config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    # Anomalies land inside the replayed portion of the stream.
    start_time = clean_stream.start_time + window_config.span
    replay_end = start_time + replay_periods * window_config.period
    injection_end = replay_end - window_config.period
    if (
        injection_end <= start_time
        or clean_stream.end_time < replay_end
    ):
        raise DataGenerationError(
            "the stream is too short to stream past its initial window; "
            "increase the dataset scale or lower the window length"
        )
    stream, anomalies = inject_anomalies(
        clean_stream,
        n_anomalies=n_anomalies,
        magnitude_factor=magnitude_factor,
        start_time=start_time,
        end_time=injection_end,
        rng=np.random.default_rng(settings.seed),
    )
    processor = ContinuousStreamProcessor(stream, window_config, start_time=start_time)
    initial = decompose(
        processor.window.tensor,
        rank=spec.rank,
        n_iterations=settings.als_iterations,
        seed=settings.seed,
    ).decomposition

    results: dict[str, AnomalyMethodResult] = {}
    for method in methods:
        kind = method_kind(method)
        if kind == "continuous":
            detector = _run_continuous(
                stream, window_config, method, initial, spec, settings, replay_end
            )
        else:
            detector = _run_periodic(
                stream, window_config, method, initial, spec, settings, replay_end
            )
        precision, delay = _evaluate(
            detector, anomalies, top_k, window_config.period, kind
        )
        results[method] = AnomalyMethodResult(
            name=method,
            label=method_label(method),
            kind=kind,
            precision_at_k=precision,
            mean_detection_delay=delay,
            n_scored=detector.count,
        )
    return AnomalyExperimentResult(
        dataset=settings.dataset, n_anomalies=n_anomalies, methods=results
    )


def format_anomaly_experiment(result: AnomalyExperimentResult) -> str:
    """Render the Fig. 9(b) table as text."""
    rows = [
        (
            outcome.label,
            outcome.kind,
            outcome.precision_at_k,
            outcome.mean_detection_delay,
        )
        for outcome in result.methods.values()
    ]
    return format_table(
        ("method", "kind", f"precision @ top-{result.n_anomalies}", "detection delay [s]"),
        rows,
        title=f"Fig. 9 — anomaly detection on {result.dataset}",
    )


# ----------------------------------------------------------------------
# Per-family scoring loops
# ----------------------------------------------------------------------
def _run_continuous(
    stream,
    window_config: WindowConfig,
    method: str,
    initial,
    spec,
    settings: ExperimentSettings,
    replay_end: float,
) -> ZScoreDetector:
    config = SNSConfig(
        rank=spec.rank,
        theta=spec.theta,
        eta=spec.eta,
        seed=settings.seed,
        sampling=settings.sampling,
        backend=settings.backend,
    )
    checkpoint_path: Path | None = None
    if settings.checkpoint_dir is not None:
        # Prefixed so an anomaly run can share a checkpoint directory with a
        # fitness run of the same method without clobbering it.
        checkpoint_path = Path(settings.checkpoint_dir) / f"anomaly-{method}"

    detector = ZScoreDetector()
    model = None
    n_events = 0
    if (
        checkpoint_path is not None
        and settings.resume
        and is_checkpoint(checkpoint_path)
    ):
        processor, model, saved = restore_run(checkpoint_path)
        if model is None or model.name != method:
            raise ConfigurationError(
                f"checkpoint at {checkpoint_path} does not hold a "
                f"{method!r} model"
            )
        if dataclasses.asdict(config) != dataclasses.asdict(model.config):
            raise ConfigurationError(
                f"checkpoint at {checkpoint_path} was taken with different "
                "hyper-parameters; rerun with the original settings or start "
                "a fresh checkpoint directory"
            )
        saved = saved or {}
        n_events = int(saved.get("n_events", 0))
        if "detector" in saved:
            detector = ZScoreDetector.from_state(saved["detector"])
    else:
        processor = ContinuousStreamProcessor(
            stream, window_config, start_time=stream.start_time + window_config.span
        )
    if model is None:
        model = create_algorithm(method, config)
        model.initialize(processor.window, initial)

    def save_state() -> None:
        # The detector's running statistics and full score list ride in the
        # checkpoint's extra payload, so a resumed run continues the exact
        # score stream of an uninterrupted one.
        processor.save_checkpoint(
            checkpoint_path,
            model=model,
            extra={"n_events": n_events, "detector": detector.state_dict()},
        )

    checkpoint_events = settings.checkpoint_events
    next_save = None
    if checkpoint_path is not None and checkpoint_events is not None:
        next_save = (n_events // checkpoint_events + 1) * checkpoint_events

    if settings.batched:
        for batch in processor.iter_batches(end_time=replay_end):
            score_batch(model, batch, detector)
            n_events += batch.n_events
            if next_save is not None and n_events >= next_save:
                save_state()
                next_save = (
                    n_events // checkpoint_events + 1
                ) * checkpoint_events
    else:
        for event, delta in processor.events(end_time=replay_end):
            n_events += 1
            if event.kind is EventKind.ARRIVAL:
                coordinate = delta.entries[0][0]
                observed = processor.window.tensor.get(coordinate)
                predicted = model.reconstruction_at(coordinate)
                # Score before adapting, so the anomaly cannot hide itself.
                detector.observe(
                    coordinate=coordinate,
                    error=observed - predicted,
                    event_time=event.record.time,
                    detection_time=event.time,
                )
            model.update(delta)
            if next_save is not None and n_events >= next_save:
                save_state()
                next_save = (
                    n_events // checkpoint_events + 1
                ) * checkpoint_events
    if checkpoint_path is not None:
        save_state()
    return detector


def _run_periodic(
    stream,
    window_config: WindowConfig,
    method: str,
    initial,
    spec,
    settings: ExperimentSettings,
    replay_end: float,
) -> ZScoreDetector:
    processor = ContinuousStreamProcessor(
        stream, window_config, start_time=stream.start_time + window_config.span
    )
    model = create_baseline(method, BaselineConfig(rank=spec.rank, seed=settings.seed))
    model.initialize(processor.window, initial)
    detector = ZScoreDetector()
    period = window_config.period
    next_boundary = processor.start_time + period
    newest = window_config.window_length - 1
    for event, _ in processor.events(end_time=replay_end):
        while event.time >= next_boundary:
            # Score the just-completed unit with the factors from the previous
            # boundary, then let the baseline update.
            decomposition = model.decomposition
            entries = list(processor.window.unit_entries(newest))
            if entries:
                coordinates = [coordinate for coordinate, _ in entries]
                observed = np.array([value for _, value in entries])
                predicted = decomposition.values_at(np.array(coordinates))
                for coordinate, error in zip(coordinates, observed - predicted):
                    detector.observe(
                        coordinate=coordinate,
                        error=float(error),
                        event_time=next_boundary - period / 2.0,
                        detection_time=next_boundary,
                    )
            model.update_period()
            next_boundary += period
    return detector


def _evaluate(
    detector: ZScoreDetector,
    anomalies: list[InjectedAnomaly],
    top_k: int,
    period: float,
    kind: str,
) -> tuple[float, float]:
    """Precision at top-k and mean detection delay over matched anomalies."""
    top = detector.top_k(top_k)
    if top_k <= 0 or not top:
        return 0.0, float("nan")
    hits = 0
    delays: list[float] = []
    matched: set[int] = set()
    for score in top:
        categorical = score.coordinate[:-1]
        for position, anomaly in enumerate(anomalies):
            if position in matched or anomaly.indices != categorical:
                continue
            if kind == "continuous":
                is_match = abs(score.event_time - anomaly.time) < 1e-6
            else:
                gap = score.detection_time - anomaly.time
                is_match = 0.0 <= gap <= period + 1e-6
            if is_match:
                hits += 1
                matched.add(position)
                delays.append(max(score.detection_time - anomaly.time, 0.0))
                break
    # Divide by k itself (like ZScoreDetector.precision_at_k): when the
    # scoreboard holds fewer than k real scores, the empty slots count as
    # misses instead of silently inflating the metric.
    precision = hits / top_k
    delay = float(np.mean(delays)) if delays else float("nan")
    return precision, delay
