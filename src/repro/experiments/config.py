"""Experiment settings and the Table III default hyper-parameters.

The synthetic datasets are scaled down from the paper's real data, so the
experiment sizes (number of replayed events, checkpoints, ALS iterations) are
also scaled; the *hyper-parameters of the methods themselves* (R, W, θ, η)
follow Table III via :class:`repro.data.datasets.DatasetSpec`.
"""

from __future__ import annotations

import dataclasses
import warnings

from repro.data.datasets import DATASETS, DatasetSpec, get_dataset_spec
from repro.exceptions import ConfigurationError

#: The methods shown in Figs. 4 and 5 of the paper, in plot order.
DEFAULT_CONTINUOUS_METHODS = (
    "sns_rnd_plus",
    "sns_vec_plus",
    "sns_rnd",
    "sns_vec",
    "sns_mat",
)
DEFAULT_PERIODIC_METHODS = (
    "als",
    "online_scp",
    "cp_stream",
    "necpd(1)",
    "necpd(10)",
)


@dataclasses.dataclass(frozen=True, slots=True)
class ExperimentSettings:
    """Sizing knobs of a streaming experiment run.

    Attributes
    ----------
    dataset:
        Name of the synthetic dataset (see :data:`repro.data.datasets.DATASETS`).
    scale:
        Multiplier on the dataset's record count.
    max_events:
        Number of window events replayed after initialisation.
    n_checkpoints:
        Number of fitness samples taken during the replay (sets the
        :attr:`fitness_every` cadence).
    als_iterations:
        ALS sweeps used to initialise every method.
    seed:
        Seed forwarded to data generation and algorithms.
    batched:
        Replay events through the batched engine
        (:meth:`ContinuousStreamProcessor.run_batched` /
        ``ContinuousCPD.update_batch``) instead of the per-event loop.
        Results are equivalent for the SliceNStitch variants (bit-identical
        windows, factors within float round-off); throughput is higher.
        Periodic baselines share the same semantics on both engines: one
        update per period boundary against the window exactly at the
        boundary (every event up to and including it applied, none after).
        Scores agree to float precision — the grouped scatter can store
        window entries in a different order, so float reductions round
        differently at the ~1e-12 level.
    sampling:
        Slice-sampling implementation of the randomised variants
        (``"vectorized"`` — the fast default — or ``"legacy"``, the original
        per-draw sampler with a pinned draw stream); forwarded to
        :class:`repro.core.base.SNSConfig`, ignored by the deterministic
        variants and the baselines.
    backend:
        Kernel backend for the model hot path (see :mod:`repro.kernels`),
        forwarded to :class:`repro.core.base.SNSConfig`.  ``"auto"`` (the
        default) honours the CLI ``--backend`` knob / the
        ``REPRO_KERNEL_BACKEND`` environment variable and otherwise
        auto-detects; an execution detail that never changes which results
        are correct, only how fast the numpy-reference-agreeing kernels run.
    checkpoint_dir:
        Directory for *real* on-disk checkpoints
        (:mod:`repro.stream.checkpoint`); each continuous method saves its
        run state under ``<checkpoint_dir>/<method>``.  ``None`` (default)
        disables checkpointing.  Periodic baselines carry no checkpointable
        state and are skipped.
    checkpoint_events:
        Save a checkpoint every this many replayed events (in addition to the
        final save when ``checkpoint_dir`` is set).  ``None`` saves only at
        the end of the run.
    resume:
        Resume each method from its checkpoint under ``checkpoint_dir`` when
        one exists, continuing to ``max_events`` total events; requires
        ``checkpoint_dir``.
    shards:
        Shard count for the relaxed-consistency sharded update path
        (:mod:`repro.shard`), forwarded to
        :class:`repro.core.base.SNSConfig`.  ``1`` (the default) with
        ``staleness=0`` keeps the exact path; ``> 1`` partitions every
        batch's events into shared-nothing shards.  Ignored by the periodic
        baselines.  Requires ``batched=True`` to take effect — the per-event
        loop never goes through ``update_batch``.
    staleness:
        Batches between Gram/λ synchronizations of the sharded path.  ``0``
        (the default) re-snapshots every batch.
    n_workers:
        Number of worker processes the experiment fan-out may use
        (:mod:`repro.experiments.parallel`).  ``1`` (the default) runs every
        method replay sequentially in-process — bit-identical to older
        releases.  ``> 1`` prepares once, persists the prepared state as a
        shared snapshot, and replays independent method/sweep-point tasks in
        worker processes with per-task crash-recovery checkpoints; results
        are identical to sequential, only wall-clock timings differ.
    """

    dataset: str = "nyc_taxi"
    scale: float = 0.3
    max_events: int = 3000
    n_checkpoints: int = 20
    als_iterations: int = 10
    seed: int = 0
    batched: bool = False
    sampling: str = "vectorized"
    backend: str = "auto"
    shards: int = 1
    staleness: int = 0
    checkpoint_dir: str | None = None
    checkpoint_events: int | None = None
    resume: bool = False
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; available: {sorted(DATASETS)}"
            )
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if self.max_events <= 0:
            raise ConfigurationError(
                f"max_events must be positive, got {self.max_events}"
            )
        if self.n_checkpoints <= 0:
            raise ConfigurationError(
                f"n_checkpoints must be positive, got {self.n_checkpoints}"
            )
        if self.als_iterations <= 0:
            raise ConfigurationError(
                f"als_iterations must be positive, got {self.als_iterations}"
            )
        if self.sampling not in ("vectorized", "legacy"):
            raise ConfigurationError(
                f"sampling must be 'vectorized' or 'legacy', got {self.sampling!r}"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(
                f"backend must be a backend name or 'auto', got {self.backend!r}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.staleness < 0:
            raise ConfigurationError(
                f"staleness must be >= 0, got {self.staleness}"
            )
        if (self.shards > 1 or self.staleness > 0) and not self.batched:
            raise ConfigurationError(
                "shards/staleness require batched=True — the sharded path "
                "executes update_batch, which the per-event loop never calls"
            )
        if self.checkpoint_events is not None and self.checkpoint_events <= 0:
            raise ConfigurationError(
                f"checkpoint_events must be positive, got {self.checkpoint_events}"
            )
        if self.checkpoint_events is not None and self.checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_events requires checkpoint_dir — without it no "
                "checkpoint would ever be written"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume=True requires checkpoint_dir to locate the checkpoint"
            )
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )

    @property
    def spec(self) -> DatasetSpec:
        """The dataset spec (Table III defaults for this dataset)."""
        return get_dataset_spec(self.dataset)

    @property
    def fitness_every(self) -> int:
        """Events between two fitness samples during the replay."""
        return max(self.max_events // self.n_checkpoints, 1)

    @property
    def checkpoint_every(self) -> int:
        """Deprecated alias of :attr:`fitness_every`.

        Historically this fitness-sampling cadence was called
        ``checkpoint_every``, which collided with the real on-disk
        checkpoints once those existed (``checkpoint_dir`` /
        ``checkpoint_events``).
        """
        warnings.warn(
            "ExperimentSettings.checkpoint_every is deprecated; use "
            "fitness_every (it is the fitness-sampling cadence, not an "
            "on-disk checkpoint interval)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fitness_every


def default_settings(dataset: str = "nyc_taxi", **overrides: object) -> ExperimentSettings:
    """Settings with the repository defaults for ``dataset``."""
    return dataclasses.replace(ExperimentSettings(dataset=dataset), **overrides)  # type: ignore[arg-type]


def table_iii_rows() -> list[tuple[str, int, int, float, int, float]]:
    """Rows of Table III: (dataset, R, W, T, θ, η) for every dataset."""
    rows = []
    for name in sorted(DATASETS):
        spec = DATASETS[name]
        rows.append(
            (name, spec.rank, spec.window_length, spec.period, spec.theta, spec.eta)
        )
    return rows
