"""Fig. 8 — effect of the clipping threshold η on SNS+_VEC and SNS+_RND.

The paper sweeps η from 32 to 16,000 and observes that fitness is insensitive
to η as long as it is "small enough" (Observation 7); η does not affect
runtime, so only relative fitness is reported.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.experiments.config import ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.runner import prepare_experiment
from repro.metrics.fitness import relative_fitness


@dataclasses.dataclass(slots=True)
class EtaSweepResult:
    """Relative fitness per (method, η)."""

    dataset: str
    etas: list[float]
    relative_fitness: dict[str, list[float]]


def run_eta_sweep(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = ("sns_vec_plus", "sns_rnd_plus"),
    etas: Sequence[float] = (32.0, 100.0, 320.0, 1000.0, 3200.0, 16000.0),
) -> EtaSweepResult:
    """Run the Fig. 8 sweep on one dataset.

    Every (method, η) replay — and the shared ALS reference — is an
    independent task over one prepared snapshot; ``settings.n_workers > 1``
    fans them out over worker processes with identical results.
    """
    from repro.experiments.parallel import (
        method_result_from_payload,
        method_task,
        run_tasks_over_snapshot,
    )

    settings = settings or ExperimentSettings()
    stream, spec, window_config, initial, _ = prepare_experiment(settings)
    shared = dict(
        rank=spec.rank,
        max_events=settings.max_events,
        fitness_every=settings.fitness_every,
        seed=settings.seed,
        batched=settings.batched,
        sampling=settings.sampling,
    )
    tasks = [method_task("als", "als", **shared)]
    for eta in etas:
        for method in methods:
            tasks.append(
                method_task(
                    f"{method}@eta={float(eta):g}",
                    method,
                    theta=spec.theta,
                    eta=float(eta),
                    **shared,
                )
            )
    payloads = run_tasks_over_snapshot(
        stream, window_config, initial, tasks, n_workers=settings.n_workers
    )
    reference = method_result_from_payload(payloads["als"])
    rel: dict[str, list[float]] = {method: [] for method in methods}
    for eta in etas:
        for method in methods:
            outcome = method_result_from_payload(
                payloads[f"{method}@eta={float(eta):g}"]
            )
            rel[method].append(
                relative_fitness(outcome.average_fitness, reference.average_fitness)
            )
    return EtaSweepResult(
        dataset=settings.dataset, etas=[float(e) for e in etas], relative_fitness=rel
    )


def format_eta_sweep(result: EtaSweepResult) -> str:
    """Render the Fig. 8 rows as text."""
    rows = []
    for method in result.relative_fitness:
        for eta, fitness in zip(result.etas, result.relative_fitness[method]):
            rows.append((method, eta, fitness))
    return format_table(
        ("method", "eta", "relative fitness"),
        rows,
        title=f"Fig. 8 — effect of eta on {result.dataset}",
    )
