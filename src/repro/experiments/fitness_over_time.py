"""Fig. 4 — relative fitness of every method over time on one dataset.

The paper replays each stream for 5·W·T time units and plots the fitness of
each method relative to batch ALS.  Here the replay length is controlled by
``ExperimentSettings.max_events``; the output is one (time, relative fitness)
series per method.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.experiments.config import (
    DEFAULT_CONTINUOUS_METHODS,
    DEFAULT_PERIODIC_METHODS,
    ExperimentSettings,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclasses.dataclass(slots=True)
class FitnessOverTimeResult:
    """Per-method relative-fitness series for one dataset."""

    dataset: str
    experiment: ExperimentResult
    methods: list[str]

    def series(self, method: str) -> tuple[list[float], list[float]]:
        """Checkpoint times and relative-fitness values for ``method``."""
        result = self.experiment.methods[method]
        return result.checkpoint_times, self.experiment.relative_series(method)


def run_fitness_over_time(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] | None = None,
) -> FitnessOverTimeResult:
    """Run the Fig. 4 experiment for one dataset."""
    settings = settings or ExperimentSettings()
    if methods is None:
        methods = list(DEFAULT_CONTINUOUS_METHODS) + list(DEFAULT_PERIODIC_METHODS)
    else:
        methods = list(methods)
    if "als" not in methods:
        methods.append("als")  # needed as the relative-fitness reference
    experiment = run_experiment(settings, methods)
    return FitnessOverTimeResult(
        dataset=settings.dataset, experiment=experiment, methods=methods
    )


def format_fitness_over_time(result: FitnessOverTimeResult) -> str:
    """Render the Fig. 4 series and a summary table as text."""
    blocks = [f"Fig. 4 — relative fitness over time ({result.dataset})"]
    for method in result.methods:
        times, values = result.series(method)
        label = result.experiment.methods[method].label
        blocks.append(format_series(label, times, values, unit="relative fitness"))
    rows = []
    for method in result.methods:
        outcome = result.experiment.methods[method]
        rows.append(
            (
                outcome.label,
                outcome.kind,
                result.experiment.average_relative_fitness(method),
                outcome.average_fitness,
                outcome.final_fitness,
            )
        )
    blocks.append(
        format_table(
            ("method", "kind", "avg rel. fitness", "avg fitness", "final fitness"),
            rows,
            title="Summary",
        )
    )
    return "\n\n".join(blocks)
