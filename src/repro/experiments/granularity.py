"""Fig. 1(c,d,e) — continuous CPD versus conventional CPD at fine granularities.

The paper's motivating experiment compares, on the New York Taxi stream:

* conventional CPD (batch ALS on a window whose time mode has period ``T'``)
  for ``T'`` swept from one second to one hour, and
* continuous CPD (SliceNStitch, here SNS_RND) with ``T`` fixed to one hour,

along three axes: average fitness (Fig. 1c), number of parameters (Fig. 1d),
and runtime per update (Fig. 1e).  Conventional fitness is measured *after
merging* the fine-grained time-factor rows back to the coarse granularity, as
footnote 7 of the paper describes, so every configuration is scored against
the same coarse window.

In this reproduction the "one hour" is the dataset's synthetic period ``T``
and the sweep covers integer divisors of ``T``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.als.als import decompose
from repro.experiments.config import ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.runner import prepare_experiment
from repro.metrics.timing import Stopwatch
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.sparse import SparseTensor


@dataclasses.dataclass(slots=True)
class GranularityPoint:
    """One point of the Fig. 1 sweep."""

    family: str  # "conventional" or "continuous"
    update_interval: float
    fitness: float
    n_parameters: int
    update_microseconds: float


@dataclasses.dataclass(slots=True)
class GranularityResult:
    """Full Fig. 1 sweep."""

    dataset: str
    coarse_period: float
    points: list[GranularityPoint]

    def conventional(self) -> list[GranularityPoint]:
        """Points of the conventional-CPD sweep, ordered by interval."""
        return sorted(
            (p for p in self.points if p.family == "conventional"),
            key=lambda p: p.update_interval,
        )

    def continuous(self) -> GranularityPoint:
        """The single continuous-CPD point."""
        return next(p for p in self.points if p.family == "continuous")


def conventional_point(
    stream: MultiAspectStream,
    coarse_config: WindowConfig,
    divisor: int,
    rank: int,
    als_iterations: int = 10,
    seed: int | None = 0,
    coarse_window: SparseTensor | None = None,
) -> GranularityPoint:
    """One conventional-CPD point: batch ALS at granularity ``T / divisor``.

    Self-contained (the coarse scoring window is rebuilt from the stream when
    not supplied), so it can run in a fan-out worker against a rehydrated
    experiment snapshot.
    """
    divisor = int(divisor)
    fine_period = coarse_config.period / divisor
    fine_length = coarse_config.window_length * divisor
    fine_config = WindowConfig(
        mode_sizes=coarse_config.mode_sizes,
        window_length=fine_length,
        period=fine_period,
    )
    fine_window = _initial_window(stream, fine_config)
    with Stopwatch() as watch:
        result = decompose(
            fine_window, rank=rank, n_iterations=als_iterations, seed=seed
        )
    merged = _merge_time_rows(result.decomposition, divisor)
    if coarse_window is None:
        coarse_window = _initial_window(stream, coarse_config)
    return GranularityPoint(
        family="conventional",
        update_interval=fine_period,
        fitness=merged.fitness(coarse_window),
        n_parameters=result.decomposition.n_parameters,
        update_microseconds=1e6 * watch.elapsed,
    )


def run_granularity(
    settings: ExperimentSettings | None = None,
    divisors: Sequence[int] = (60, 20, 10, 4, 2, 1),
    als_iterations: int = 10,
    continuous_method: str = "sns_rnd",
) -> GranularityResult:
    """Run the Fig. 1 experiment (defaults to the NY-Taxi-like dataset).

    ``settings.n_workers > 1`` fans the conventional divisor points and the
    continuous replay out over worker processes sharing one prepared
    snapshot; the points are identical to a sequential run.
    """
    from repro.experiments.parallel import (
        ExperimentTask,
        method_result_from_payload,
        method_task,
        run_tasks_over_snapshot,
    )

    settings = settings or ExperimentSettings(dataset="nyc_taxi")
    stream, spec, coarse_config, initial, _ = prepare_experiment(settings)
    rank = spec.rank

    # Conventional CPD at every fine granularity T' = T / divisor, plus the
    # continuous CPD replay at the coarse period (updated on every event).
    tasks = [
        ExperimentTask(
            key=f"conventional@divisor={int(divisor)}",
            kind="conventional_cpd",
            params={
                "divisor": int(divisor),
                "rank": rank,
                "als_iterations": als_iterations,
                "seed": settings.seed,
            },
        )
        for divisor in divisors
    ]
    tasks.append(
        method_task(
            "continuous",
            continuous_method,
            rank=rank,
            theta=spec.theta,
            eta=spec.eta,
            max_events=settings.max_events,
            fitness_every=settings.fitness_every,
            seed=settings.seed,
            batched=settings.batched,
            sampling=settings.sampling,
        )
    )
    payloads = run_tasks_over_snapshot(
        stream, coarse_config, initial, tasks, n_workers=settings.n_workers
    )

    points: list[GranularityPoint] = []
    for divisor in divisors:
        payload = payloads[f"conventional@divisor={int(divisor)}"]
        points.append(
            GranularityPoint(
                **{
                    field.name: payload[field.name]
                    for field in dataclasses.fields(GranularityPoint)
                }
            )
        )
    outcome = method_result_from_payload(payloads["continuous"])
    points.append(
        GranularityPoint(
            family="continuous",
            update_interval=0.0,  # updates fire per event, i.e. "any time"
            fitness=outcome.average_fitness,
            n_parameters=outcome.n_parameters,
            update_microseconds=outcome.mean_update_microseconds,
        )
    )
    return GranularityResult(
        dataset=settings.dataset,
        coarse_period=coarse_config.period,
        points=points,
    )


def format_granularity(result: GranularityResult) -> str:
    """Render the Fig. 1(c,d,e) rows as text."""
    rows = []
    for point in result.conventional() + [result.continuous()]:
        rows.append(
            (
                point.family,
                point.update_interval if point.family == "conventional" else "per event",
                point.fitness,
                point.n_parameters,
                point.update_microseconds,
            )
        )
    return format_table(
        ("family", "update interval", "fitness", "# parameters", "update time [us]"),
        rows,
        title=(
            f"Fig. 1 — continuous vs conventional CPD on {result.dataset} "
            f"(coarse period T = {result.coarse_period:g})"
        ),
    )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _initial_window(
    stream: MultiAspectStream, config: WindowConfig
) -> SparseTensor:
    """The initial window tensor ``D(t0, W)`` for a given granularity."""
    processor = ContinuousStreamProcessor(stream, config)
    return processor.window.tensor


def _merge_time_rows(decomposition: KruskalTensor, group: int) -> KruskalTensor:
    """Sum groups of ``group`` consecutive time-factor rows (footnote 7)."""
    factors = [factor.copy() for factor in decomposition.factors]
    time_factor = factors[-1] * decomposition.weights[None, :]
    n_fine, rank = time_factor.shape
    n_coarse = n_fine // group
    merged = time_factor[: n_coarse * group].reshape(n_coarse, group, rank).sum(axis=1)
    factors[-1] = merged
    return KruskalTensor(factors, np.ones(rank))
