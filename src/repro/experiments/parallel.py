"""Process-pool fan-out of independent experiment tasks over a shared snapshot.

The paper's evaluation replays the same event stream against ~10 methods and
many sweep points, and every one of those replays is independent once the
shared preparation (dataset generation, window bootstrap, ALS initialisation)
is done.  This module turns that independence into wall-clock speed:

1. The parent prepares the experiment **once** and persists the prepared
   state — stream records, window configuration, ALS initial factors — as an
   experiment snapshot (:func:`repro.stream.checkpoint.save_experiment_snapshot`).
2. Worker processes rehydrate the snapshot (bit-identical: records and
   factors round-trip through float64 npz arrays exactly) and run one
   :class:`ExperimentTask` each, writing the outcome as a JSON result file.
3. The pool scheduler (:func:`run_tasks`) keeps ``n_workers`` processes busy
   and implements crash recovery: every method task checkpoints its run state
   under ``work_dir/<task>`` (the existing :mod:`repro.stream.checkpoint`
   machinery), so a failed or killed worker's task is **resumed** from its
   last checkpoint — not restarted — on the next attempt.

``n_workers=1`` never forks: tasks execute in-process, in order, with the
parent's live objects, so the sequential default stays bit-identical to the
pre-parallel code path.  Because every ``run_method`` replay is a
deterministic function of the snapshot and the task parameters, the parallel
results are identical to the sequential ones for every method — fitness
series, final factors, everything except wall-clock timings.

Separation of concerns follows staged least-squares pipelines: each
sub-problem (one method × sweep point × event budget) is solved in an
isolated process from the same shared initialisation, and the parent merges
the per-task payloads deterministically by task key.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import shutil
import sys
import tempfile
import time
import traceback
from collections import deque
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError, WorkerError
from repro.stream.checkpoint import (
    ExperimentSnapshot,
    load_experiment_snapshot,
    save_experiment_snapshot,
)
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig

#: Directory (under the pool's work dir) holding the shared snapshot.
SNAPSHOT_DIRNAME = "_snapshot"

#: Suffix of the per-task result payload files.
RESULT_SUFFIX = ".result.json"

#: Exit code used by the fault-injection hook (see :data:`FAULT_ENV`).
FAULT_EXIT_CODE = 70

#: Test/CI hook: ``"<task key>:<events>[,<task key>:<events>...]"``.  A worker
#: whose task key matches — and that is *not* already resuming — replays only
#: that many events (leaving a real on-disk checkpoint) and then dies hard,
#: simulating a mid-run worker kill.  The scheduler's retry then exercises the
#: genuine resume path.  Never set outside tests / the CI smoke job.
FAULT_ENV = "REPRO_PARALLEL_FAIL"

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


@dataclasses.dataclass(frozen=True)
class ExperimentTask:
    """One unit of fan-out work: a method replay or a conventional-CPD fit.

    Attributes
    ----------
    key:
        Unique, filesystem-safe identifier; names the task's checkpoint
        directory and result file under the pool's work dir.
    kind:
        ``"method"`` (a :func:`repro.experiments.runner.run_method` replay) or
        ``"conventional_cpd"`` (a batch-ALS granularity point, Fig. 1).
    params:
        JSON-serializable task parameters, interpreted per ``kind``.
    checkpoint_subdir:
        Directory under the pool work dir for this task's run checkpoints.
        ``None`` (default) uses ``key``; ``""`` uses the work dir itself —
        :func:`repro.experiments.runner.run_experiment` uses that to keep the
        ``<checkpoint_dir>/<method>`` layout identical to sequential runs.
    """

    key: str
    kind: str = "method"
    params: dict[str, Any] = dataclasses.field(default_factory=dict)
    checkpoint_subdir: str | None = None

    def __post_init__(self) -> None:
        if not self.key or self.key != os.path.basename(self.key) or self.key.startswith("."):
            raise ConfigurationError(
                f"task key {self.key!r} must be a non-empty, path-free name"
            )
        if self.kind not in ("method", "conventional_cpd"):
            raise ConfigurationError(f"unknown task kind {self.kind!r}")


def method_task(
    key: str,
    method: str,
    *,
    rank: int,
    theta: int = 20,
    eta: float = 1000.0,
    max_events: int = 3000,
    fitness_every: int = 150,
    seed: int | None = 0,
    batched: bool = False,
    sampling: str = "vectorized",
    backend: str = "auto",
    shards: int = 1,
    staleness: int = 0,
    checkpoint_events: int | None = None,
    checkpoint_subdir: str | None = None,
) -> ExperimentTask:
    """Build a ``run_method`` replay task (method × hyper-parameters × budget)."""
    return ExperimentTask(
        key=key,
        kind="method",
        params={
            "method": method,
            "rank": int(rank),
            "theta": int(theta),
            "eta": float(eta),
            "max_events": int(max_events),
            "fitness_every": int(fitness_every),
            "seed": seed,
            "batched": bool(batched),
            "sampling": sampling,
            "backend": backend,
            "shards": int(shards),
            "staleness": int(staleness),
            "checkpoint_events": checkpoint_events,
        },
        checkpoint_subdir=checkpoint_subdir,
    )


def execute_task(
    snapshot: ExperimentSnapshot,
    task: ExperimentTask,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    cache: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one task against a (rehydrated or in-memory) snapshot.

    Returns a JSON-serializable payload; :func:`method_result_from_payload`
    turns a ``"method"`` payload back into a
    :class:`~repro.experiments.runner.MethodResult`.  ``cache`` (optional)
    lets a caller running many tasks against one snapshot share derived
    state — the in-process sequential loop uses it so the granularity
    experiment builds its coarse scoring window once, not per divisor.
    """
    if task.kind == "method":
        # Local import: runner imports this module lazily for the same reason.
        from repro.experiments.runner import run_method

        params = task.params
        result = run_method(
            snapshot.stream,
            snapshot.window_config,
            params["method"],
            initial_factors=snapshot.initial_factors,
            rank=params["rank"],
            theta=params.get("theta", 20),
            eta=params.get("eta", 1000.0),
            max_events=params.get("max_events", 3000),
            fitness_every=params.get("fitness_every", 150),
            seed=params.get("seed", 0),
            batched=params.get("batched", False),
            sampling=params.get("sampling", "vectorized"),
            backend=params.get("backend", "auto"),
            shards=params.get("shards", 1),
            staleness=params.get("staleness", 0),
            checkpoint_dir=checkpoint_dir,
            checkpoint_events=(
                params.get("checkpoint_events") if checkpoint_dir is not None else None
            ),
            resume=resume and checkpoint_dir is not None,
        )
        payload = dataclasses.asdict(result)
        payload["task_kind"] = "method"
        payload["task_fingerprint"] = task_fingerprint(task)
        return payload
    if task.kind == "conventional_cpd":
        from repro.experiments.granularity import _initial_window, conventional_point

        coarse_window = None
        if cache is not None:
            coarse_window = cache.get("coarse_window")
            if coarse_window is None:
                coarse_window = _initial_window(
                    snapshot.stream, snapshot.window_config
                )
                cache["coarse_window"] = coarse_window
        params = task.params
        point = conventional_point(
            snapshot.stream,
            snapshot.window_config,
            divisor=params["divisor"],
            rank=params["rank"],
            als_iterations=params.get("als_iterations", 10),
            seed=params.get("seed", 0),
            coarse_window=coarse_window,
        )
        payload = dataclasses.asdict(point)
        payload["task_kind"] = "conventional_cpd"
        payload["task_fingerprint"] = task_fingerprint(task)
        return payload
    raise ConfigurationError(f"unknown task kind {task.kind!r}")


def task_fingerprint(task: ExperimentTask) -> dict[str, Any]:
    """The parameters a stored result payload must match to be reusable.

    Everything in it is JSON-scalar, so it round-trips through the result
    file exactly and an equality check against a freshly built fingerprint
    is reliable.
    """
    return {"kind": task.kind, "params": dict(task.params)}


def method_result_from_payload(payload: dict[str, Any]) -> Any:
    """Rebuild a :class:`MethodResult` from a ``"method"`` task payload."""
    from repro.experiments.runner import MethodResult

    return MethodResult(
        **{field.name: payload[field.name] for field in dataclasses.fields(MethodResult)}
    )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _fault_events(task_key: str) -> int | None:
    """Parse the fault-injection spec for ``task_key`` (test hook)."""
    spec = os.environ.get(FAULT_ENV, "")
    for part in spec.split(","):
        if not part:
            continue
        key, _, events = part.rpartition(":")
        if key == task_key:
            return int(events)
    return None


def _write_json_atomic(path: Path, payload: dict[str, Any]) -> None:
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    temp.write_text(json.dumps(payload))
    temp.replace(path)


def _worker_main(
    snapshot_path: str,
    task: ExperimentTask,
    checkpoint_dir: str | None,
    result_path: str,
    resume: bool,
) -> None:
    """Entry point of one worker process (spawn-safe: picklable args only).

    Rehydrates the shared snapshot, runs the task, and writes the result
    payload atomically; the presence of the result file is the scheduler's
    success signal, so a worker killed mid-run leaves no half-result behind.
    """
    try:
        snapshot = load_experiment_snapshot(snapshot_path)
        fail_at = None if resume else _fault_events(task.key)
        if fail_at is not None and task.kind == "method":
            # Simulated kill: replay a prefix (run_method leaves its final
            # on-disk checkpoint) and die without writing a result.
            partial = dataclasses.replace(
                task, params={**task.params, "max_events": int(fail_at)}
            )
            execute_task(snapshot, partial, checkpoint_dir=checkpoint_dir, resume=False)
            os._exit(FAULT_EXIT_CODE)
        payload = execute_task(
            snapshot, task, checkpoint_dir=checkpoint_dir, resume=resume
        )
        _write_json_atomic(Path(result_path), payload)
    except BaseException:  # pragma: no cover - exercised via worker exit codes
        traceback.print_exc()
        sys.stderr.flush()
        os._exit(1)


# ----------------------------------------------------------------------
# Pool scheduler
# ----------------------------------------------------------------------
def _resolve_start_method(start_method: str | None) -> str:
    requested = start_method or os.environ.get(START_METHOD_ENV)
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ConfigurationError(
                f"start method {requested!r} not available (have {available})"
            )
        return requested
    # fork is dramatically cheaper (no per-worker re-import of numpy); the
    # workers are spawn-safe regardless, so platforms without fork still work.
    return "fork" if "fork" in available else "spawn"


def _task_checkpoint_dir(root: Path, task: ExperimentTask) -> Path:
    subdir = task.checkpoint_subdir if task.checkpoint_subdir is not None else task.key
    return root / subdir if subdir else root


def _validate_tasks(tasks: Sequence[ExperimentTask]) -> None:
    keys = [task.key for task in tasks]
    duplicates = {key for key in keys if keys.count(key) > 1}
    if duplicates:
        raise ConfigurationError(f"duplicate task keys: {sorted(duplicates)}")


def _clear_stale_task_state(
    root: Path, task: ExperimentTask, result_path: Path
) -> None:
    """Drop leftovers of an *earlier* pool run before a fresh (non-resume) one.

    Without this, a reused work dir (e.g. a checkpoint_dir from a previous
    experiment with different max_events) could hand a crashed task's retry a
    stale finished checkpoint — run_method's hyper-parameter check does not
    cover the event budget — or let the scheduler adopt a stale result file
    as this run's output.
    """
    result_path.unlink(missing_ok=True)
    if task.kind == "method":
        stale_checkpoint = _task_checkpoint_dir(root, task) / task.params["method"]
        if stale_checkpoint.is_dir():
            shutil.rmtree(stale_checkpoint)


def run_tasks(
    tasks: Sequence[ExperimentTask],
    *,
    snapshot_path: str | Path,
    work_dir: str | Path,
    n_workers: int,
    resume: bool = False,
    max_task_failures: int = 2,
    start_method: str | None = None,
) -> dict[str, dict[str, Any]]:
    """Fan ``tasks`` out over ``n_workers`` processes; return payloads by key.

    Crash recovery: a task whose worker exits without writing its result file
    (crash, ``SIGKILL``, unhandled exception) is re-queued and retried with
    ``resume=True``, so method tasks continue from their last on-disk
    checkpoint under ``work_dir/<task>`` instead of starting over.  A task
    that fails more than ``max_task_failures`` times raises
    :class:`~repro.exceptions.WorkerError`.  With ``resume=True`` result
    files already present in ``work_dir`` are trusted when their stored
    :func:`task_fingerprint` matches the scheduled task (they are written
    atomically), so a killed *parent* can be rerun without redoing finished
    tasks — while a rerun with, say, a larger ``max_events`` correctly
    re-executes and continues from the task checkpoint.
    """
    _validate_tasks(tasks)
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if max_task_failures < 0:
        raise ConfigurationError(
            f"max_task_failures must be >= 0, got {max_task_failures}"
        )
    snapshot_path = str(snapshot_path)
    root = Path(work_dir)
    root.mkdir(parents=True, exist_ok=True)
    context = multiprocessing.get_context(_resolve_start_method(start_method))
    pending: deque[ExperimentTask] = deque(tasks)
    failures: dict[str, int] = {task.key: 0 for task in tasks}
    running: list[tuple[Any, ExperimentTask, Path]] = []
    results: dict[str, dict[str, Any]] = {}
    try:
        while pending or running:
            while pending and len(running) < n_workers:
                task = pending.popleft()
                result_path = root / f"{task.key}{RESULT_SUFFIX}"
                if resume and result_path.is_file():
                    payload = json.loads(result_path.read_text())
                    if payload.get("task_fingerprint") == task_fingerprint(task):
                        results[task.key] = payload
                        continue
                    # The stored result belongs to a different task
                    # configuration (say, a smaller max_events): drop it and
                    # rerun — run_method's own resume path continues from
                    # the task checkpoint, exactly like a sequential resume.
                    result_path.unlink()
                if not resume and failures[task.key] == 0:
                    _clear_stale_task_state(root, task, result_path)
                checkpoint_dir = _task_checkpoint_dir(root, task)
                checkpoint_dir.mkdir(parents=True, exist_ok=True)
                process = context.Process(
                    target=_worker_main,
                    args=(
                        snapshot_path,
                        task,
                        str(checkpoint_dir),
                        str(result_path),
                        resume or failures[task.key] > 0,
                    ),
                    daemon=True,
                )
                process.start()
                running.append((process, task, result_path))
            progressed = False
            still_running: list[tuple[Any, ExperimentTask, Path]] = []
            for process, task, result_path in running:
                if process.is_alive():
                    still_running.append((process, task, result_path))
                    continue
                process.join()
                exitcode = process.exitcode
                progressed = True
                if result_path.is_file():
                    # The result file is written atomically, so its presence
                    # means the task completed even if the worker died on the
                    # way out.
                    results[task.key] = json.loads(result_path.read_text())
                    continue
                failures[task.key] += 1
                if failures[task.key] > max_task_failures:
                    raise WorkerError(
                        f"task {task.key!r} failed {failures[task.key]} time(s) "
                        f"(last worker exit code {exitcode}); its checkpoint — "
                        f"if any — is under {_task_checkpoint_dir(root, task)}"
                    )
                pending.append(task)
            running = still_running
            if not progressed and running:
                time.sleep(0.01)
    finally:
        for process, _, _ in running:
            if process.is_alive():
                process.terminate()
            process.join()
    return results


def run_tasks_over_snapshot(
    stream: MultiAspectStream,
    window_config: WindowConfig,
    initial_factors: Any,
    tasks: Sequence[ExperimentTask],
    *,
    n_workers: int = 1,
    work_dir: str | Path | None = None,
    resume: bool = False,
    extra: Any = None,
    max_task_failures: int = 2,
    start_method: str | None = None,
) -> dict[str, dict[str, Any]]:
    """Run ``tasks`` against a prepared experiment, in-process or fanned out.

    ``n_workers=1`` executes every task in this process, in order, against
    the live objects — no snapshot file, no forking, bit-identical to the
    sequential code it replaces.  ``n_workers>1`` persists the shared
    snapshot (under ``work_dir``, or a temporary directory when ``None``)
    and dispatches to :func:`run_tasks`.
    """
    _validate_tasks(tasks)
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        snapshot = ExperimentSnapshot(
            stream=stream,
            window_config=window_config,
            initial_factors=initial_factors,
            extra=extra,
        )
        results: dict[str, dict[str, Any]] = {}
        cache: dict[str, Any] = {}
        for task in tasks:
            checkpoint_dir = (
                _task_checkpoint_dir(Path(work_dir), task)
                if work_dir is not None
                else None
            )
            results[task.key] = execute_task(
                snapshot, task, checkpoint_dir=checkpoint_dir, resume=resume,
                cache=cache,
            )
        return results

    def _fan_out(root: Path) -> dict[str, dict[str, Any]]:
        snapshot_path = root / SNAPSHOT_DIRNAME
        save_experiment_snapshot(
            snapshot_path, stream, window_config, initial_factors, extra=extra
        )
        return run_tasks(
            tasks,
            snapshot_path=snapshot_path,
            work_dir=root,
            n_workers=n_workers,
            resume=resume,
            max_task_failures=max_task_failures,
            start_method=start_method,
        )

    if work_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-parallel-") as scratch:
            return _fan_out(Path(scratch))
    root = Path(work_dir)
    root.mkdir(parents=True, exist_ok=True)
    return _fan_out(root)
