"""Plain-text rendering of experiment results (paper-style rows and series).

The benchmarks run in headless environments, so results are reported as
aligned text tables rather than plots; each bench prints the same rows or
series the corresponding paper figure shows.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, times: Sequence[float], values: Sequence[float], unit: str = ""
) -> str:
    """Render one (time, value) series as a compact text block."""
    points = ", ".join(
        f"({time:.0f}, {value:.3f})" for time, value in zip(times, values)
    )
    suffix = f" [{unit}]" if unit else ""
    return f"{name}{suffix}: {points}"


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (abs(cell) < 0.01 and cell != 0.0):
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)
