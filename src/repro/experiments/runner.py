"""Streaming experiment runner shared by all figure/table reproductions.

``run_method`` replays the same stream of window events against one method —
a SliceNStitch variant (updated on *every* event) or a conventional baseline
(updated once per period) — and records fitness checkpoints plus per-update
timing.  ``run_experiment`` runs a whole roster of methods from an identical
ALS initialisation and derives relative fitness against the ALS baseline,
reproducing the protocol of Section VI-A.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.als.als import decompose
from repro.baselines.base import BaselineConfig
from repro.baselines.registry import BASELINES, create_baseline
from repro.baselines.registry import display_name as baseline_display_name
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.core.registry import display_name as algorithm_display_name
from repro.data.datasets import DatasetSpec
from repro.data.generators import generate_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentSettings
from repro.metrics.fitness import relative_fitness
from repro.metrics.timing import UpdateTimer
from repro.stream.checkpoint import is_checkpoint, restore_run
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig
from repro.tensor.kruskal import KruskalTensor


@dataclasses.dataclass(slots=True)
class MethodResult:
    """Outcome of replaying the event stream against one method."""

    name: str
    label: str
    kind: str  # "continuous" or "periodic"
    checkpoint_times: list[float]
    fitness_series: list[float]
    mean_update_microseconds: float
    total_update_seconds: float
    n_updates: int
    n_events: int
    final_fitness: float
    n_parameters: int

    @property
    def average_fitness(self) -> float:
        """Mean fitness across checkpoints (the paper's 'average fitness')."""
        finite = [f for f in self.fitness_series if np.isfinite(f)]
        return float(np.mean(finite)) if finite else float("nan")


@dataclasses.dataclass(slots=True)
class ExperimentResult:
    """Results of all methods replayed on one dataset."""

    dataset: str
    window_config: WindowConfig
    initial_fitness: float
    methods: dict[str, MethodResult]
    reference: str = "als"

    def reference_fitness_at(self, time: float) -> float:
        """Fitness of the reference (ALS) as of ``time``.

        The reference is a once-per-period method, so its fitness is a step
        function of time: the value recorded at the latest boundary no later
        than ``time`` (or the initial fitness before its first update).
        """
        reference = self.methods.get(self.reference)
        if reference is None:
            return float("nan")
        value = self.initial_fitness
        for checkpoint_time, fitness in zip(
            reference.checkpoint_times, reference.fitness_series
        ):
            if checkpoint_time <= time:
                value = fitness
            else:
                break
        return value

    def relative_series(self, name: str) -> list[float]:
        """Relative-fitness series of ``name`` against the reference method.

        Each checkpoint of the target method is normalised by the reference's
        fitness *as of that checkpoint's time* (step interpolation), matching
        the paper's protocol where ALS values exist only once per period.
        """
        method = self.methods[name]
        if name == self.reference:
            return [1.0] * len(method.fitness_series)
        return [
            relative_fitness(target, self.reference_fitness_at(time))
            for time, target in zip(method.checkpoint_times, method.fitness_series)
        ]

    def average_relative_fitness(self, name: str) -> float:
        """Mean relative fitness of ``name`` across checkpoints."""
        series = [v for v in self.relative_series(name) if np.isfinite(v)]
        return float(np.mean(series)) if series else float("nan")


def method_kind(name: str) -> str:
    """Classify a method name as ``"continuous"`` (SliceNStitch) or ``"periodic"``."""
    if name in ALGORITHMS:
        return "continuous"
    if name in BASELINES or (name.startswith("necpd(") and name.endswith(")")):
        return "periodic"
    raise ConfigurationError(f"unknown method {name!r}")


def method_label(name: str) -> str:
    """Paper-style display label for any method name."""
    if name in ALGORITHMS:
        return algorithm_display_name(name)
    return baseline_display_name(name)


def run_method(
    stream: MultiAspectStream,
    window_config: WindowConfig,
    method: str,
    initial_factors: KruskalTensor | Sequence[np.ndarray],
    rank: int,
    theta: int = 20,
    eta: float = 1000.0,
    max_events: int = 3000,
    fitness_every: int = 150,
    seed: int | None = 0,
    baseline_config: BaselineConfig | None = None,
    batched: bool = False,
    sampling: str = "vectorized",
    backend: str = "auto",
    shards: int = 1,
    staleness: int = 0,
    checkpoint_dir: str | Path | None = None,
    checkpoint_events: int | None = None,
    resume: bool = False,
    checkpoint_every: int | None = None,
) -> MethodResult:
    """Replay ``max_events`` window events against one method.

    SliceNStitch variants are updated on every event and timed per event;
    baselines are updated whenever a period boundary is crossed and timed per
    period update, matching how the paper reports "elapsed time per update"
    for each family.

    Periodic baselines are scored with the same semantics on both engines:
    every period boundary with stream activity at or before it gets one
    ``update_period`` over the window exactly *at* that boundary (every event
    up to and including the boundary applied, none after it), and boundaries
    keep being scored until the stream is exhausted — including a boundary
    the stream ends exactly on.  (The per-event loop historically updated
    baselines only after the first event at-or-past each boundary, so it
    never scored trailing boundaries when the stream ran out first; both
    engines now share the boundary-exact semantics.)

    With ``batched=True`` the stream is replayed through the batched engine:
    continuous methods consume one :class:`DeltaBatch` per batch window via
    ``update_batch`` (numerically equivalent to the per-event loop — see the
    equivalence test suite), and their fitness samples are recorded at batch
    granularity rather than on exact event counts; periodic baselines advance
    the window with vectorized pure replay between boundaries and score the
    same boundaries over the same window values as the per-event engine
    (equivalent to float precision).

    Checkpointing (continuous methods only — periodic baselines carry no
    checkpointable state and are skipped): with ``checkpoint_dir`` set, the
    full run state (window, scheduler, model, RNG stream, plus this
    function's fitness bookkeeping) is saved under
    ``<checkpoint_dir>/<method>`` every ``checkpoint_events`` events and at
    the end of the run.  With ``resume=True`` an existing checkpoint there
    is restored and the replay continues to ``max_events`` *total* events —
    exactly, as if never interrupted (see :mod:`repro.stream.checkpoint`):
    window, factors, and final fitness are what the uninterrupted run
    produces, and on the per-event engine so is the whole fitness series.
    (On the batched engine the series may gain an extra sample at the
    interruption point, because sampling happens at batch granularity.)
    Timing statistics are cumulative across resumes: the checkpoint carries
    the lifetime ``total_update_seconds`` / update count, so
    ``mean_update_microseconds`` reflects the whole run, not just the events
    replayed after the restore.

    ``checkpoint_every`` is a deprecated alias of ``fitness_every`` (it
    never controlled on-disk checkpoints, only the fitness cadence).
    """
    if checkpoint_every is not None:
        warnings.warn(
            "run_method(checkpoint_every=...) is deprecated; use "
            "fitness_every (the fitness-sampling cadence) — real on-disk "
            "checkpoints are controlled by checkpoint_dir/checkpoint_events",
            DeprecationWarning,
            stacklevel=2,
        )
        fitness_every = checkpoint_every
    kind = method_kind(method)
    if (shards > 1 or staleness > 0) and not batched:
        raise ConfigurationError(
            "shards/staleness require batched=True — the sharded path "
            "executes update_batch, which the per-event loop never calls"
        )
    if checkpoint_events is not None and checkpoint_events <= 0:
        raise ConfigurationError(
            f"checkpoint_events must be positive, got {checkpoint_events}"
        )
    if checkpoint_dir is None and (checkpoint_events is not None or resume):
        raise ConfigurationError(
            "checkpoint_events/resume require checkpoint_dir — without it "
            "no checkpoint is ever written or read"
        )
    checkpoint_path: Path | None = None
    if checkpoint_dir is not None and kind == "continuous":
        checkpoint_path = Path(checkpoint_dir) / method

    checkpoint_times: list[float] = []
    fitness_series: list[float] = []
    n_events = 0
    model = None
    if checkpoint_path is not None and resume and is_checkpoint(checkpoint_path):
        processor, model, saved = restore_run(checkpoint_path)
        if model is None or model.name != method:
            raise ConfigurationError(
                f"checkpoint at {checkpoint_path} does not hold a "
                f"{method!r} model"
            )
        # The restored model was rebuilt from its *saved* hyper-parameters;
        # silently continuing under different requested ones would label the
        # run with settings it never used.
        requested = SNSConfig(
            rank=rank,
            theta=theta,
            eta=eta,
            seed=seed,
            sampling=sampling,
            backend=backend,
            shards=shards,
            staleness=staleness,
        )
        # The kernel backend is an execution detail: resuming a run on a
        # different backend is explicitly supported, so it is excluded from
        # the hyper-parameter comparison.
        requested_dict = dataclasses.asdict(requested)
        saved_dict = dataclasses.asdict(model.config)
        requested_dict.pop("backend", None)
        saved_dict.pop("backend", None)
        if requested_dict != saved_dict:
            mismatched = sorted(
                key
                for key, value in requested_dict.items()
                if value != saved_dict[key]
            )
            raise ConfigurationError(
                f"checkpoint at {checkpoint_path} was taken with different "
                f"hyper-parameters (differs in {mismatched}); rerun with the "
                "original settings or start a fresh checkpoint directory"
            )
        saved = saved or {}
        n_events = int(saved.get("n_events", 0))
        checkpoint_times = [float(t) for t in saved.get("fitness_times", [])]
        fitness_series = [float(f) for f in saved.get("fitness_values", [])]
        # Lifetime timing carried across resumes.  Pre-fix checkpoints lack
        # the keys; those runs fall back to per-call timing (numerator AND
        # denominator cover only the events replayed after the restore).
        timer_is_lifetime = "timer_total_seconds" in saved
        resumed_update_seconds = float(saved.get("timer_total_seconds", 0.0))
        resumed_update_count = int(saved.get("timer_n_updates", 0))
    else:
        processor = ContinuousStreamProcessor(stream, window_config)
        timer_is_lifetime = True
        resumed_update_seconds = 0.0
        resumed_update_count = 0
    if model is None:
        if kind == "continuous":
            model = create_algorithm(
                method,
                SNSConfig(
                    rank=rank,
                    theta=theta,
                    eta=eta,
                    seed=seed,
                    sampling=sampling,
                    backend=backend,
                    shards=shards,
                    staleness=staleness,
                ),
            )
        else:
            if baseline_config is None:
                # The ALS baseline doubles as the relative-fitness reference,
                # so give it a few sweeps per period; the other baselines use
                # their published closed-form / single-pass updates.
                n_iterations = 3 if method == "als" else 1
                baseline_config = BaselineConfig(
                    rank=rank, n_iterations=n_iterations, seed=seed
                )
            model = create_baseline(method, baseline_config)
        model.initialize(processor.window, initial_factors)

    def save_state() -> None:
        processor.save_checkpoint(
            checkpoint_path,
            model=model,
            extra={
                "n_events": n_events,
                "fitness_times": checkpoint_times,
                "fitness_values": fitness_series,
                # Lifetime totals (the timer was seeded with the restored
                # values), so a chain of resumes keeps exact bookkeeping.
                "timer_total_seconds": timer.total_seconds,
                "timer_n_updates": timer.n_updates,
            },
        )

    next_save = None
    if checkpoint_path is not None and checkpoint_events is not None:
        next_save = (n_events // checkpoint_events + 1) * checkpoint_events

    period = window_config.period
    next_boundary = processor.start_time + period
    timer = UpdateTimer()
    timer.restore(resumed_update_seconds, resumed_update_count)
    resumed_events = n_events
    remaining = max(max_events - n_events, 0)
    if batched and kind == "continuous":
        next_fitness = (n_events // fitness_every + 1) * fitness_every
        for batch in processor.iter_batches(max_events=remaining):
            timer.start()
            model.update_batch(batch)
            timer.stop()
            n_events += batch.n_events
            if n_events >= next_fitness:
                checkpoint_times.append(batch.end_time)
                fitness_series.append(model.fitness())
                next_fitness = (
                    n_events // fitness_every + 1
                ) * fitness_every
            if next_save is not None and n_events >= next_save:
                save_state()
                next_save = (
                    n_events // checkpoint_events + 1
                ) * checkpoint_events
    elif kind == "continuous":
        for event, delta in processor.events(max_events=remaining):
            n_events += 1
            timer.start()
            model.update(delta)
            timer.stop()
            if n_events % fitness_every == 0:
                checkpoint_times.append(event.time)
                fitness_series.append(model.fitness())
            if next_save is not None and n_events >= next_save:
                save_state()
                next_save = (
                    n_events // checkpoint_events + 1
                ) * checkpoint_events
    else:
        # Periodic baselines only read the window at period boundaries, so
        # the stream between boundaries is replayed without model updates —
        # per event or with the pure batched scatter (bit-identical windows).
        # Every boundary with data at or before it gets its update_period
        # over the window exactly *at* the boundary — in particular the
        # final one, even when the stream ends exactly on it or is exhausted
        # before max_events; both engines share these semantics.
        while n_events < max_events:
            if batched:
                applied = processor.run_batched(
                    end_time=next_boundary, max_events=max_events - n_events
                )
            else:
                applied = processor.run(
                    end_time=next_boundary, max_events=max_events - n_events
                )
            n_events += applied
            if applied == 0 and not processor.has_pending_events:
                break
            upcoming = processor.next_event_time
            if upcoming is not None and upcoming <= next_boundary:
                # The event budget truncated the replay mid-period: the
                # window has not reached the boundary, so scoring it would
                # violate the boundary-exact invariant.  Stop without a
                # sample, exactly like the historical per-event loop.
                break
            timer.start()
            model.update_period()
            timer.stop()
            checkpoint_times.append(next_boundary)
            fitness_series.append(model.fitness())
            next_boundary += period
            if n_events >= max_events:
                break
    if checkpoint_path is not None:
        # Final snapshot: a finished run can be resumed with a larger
        # max_events, and an interrupted rerun with --resume picks up here.
        save_state()
    final_fitness = model.fitness()
    if not fitness_series:
        checkpoint_times.append(processor.start_time)
        fitness_series.append(final_fitness)
    if kind == "continuous":
        # n_updates is the lifetime event counter for both engines, and the
        # timer holds lifetime seconds (resumes seed it from the checkpoint).
        # Per-update time is per *event*: the batched timer wrapped whole
        # update_batch calls, so normalise by the lifetime event count to
        # stay comparable with Fig. 5.  A resume from a pre-fix checkpoint
        # has no lifetime numerator, so its per-call numerator is normalised
        # by the per-call event count instead.
        n_updates = model.n_updates
        if batched:
            timed_events = n_events if timer_is_lifetime else n_events - resumed_events
            mean_update_microseconds = (
                timer.total_seconds / timed_events * 1e6 if timed_events else 0.0
            )
        else:
            mean_update_microseconds = timer.mean_microseconds
    else:
        mean_update_microseconds = timer.mean_microseconds
        n_updates = timer.n_updates
    return MethodResult(
        name=method,
        label=method_label(method),
        kind=kind,
        checkpoint_times=checkpoint_times,
        fitness_series=fitness_series,
        mean_update_microseconds=mean_update_microseconds,
        total_update_seconds=timer.total_seconds,
        n_updates=n_updates,
        n_events=n_events,
        final_fitness=final_fitness,
        n_parameters=model.n_parameters,
    )


def prepare_experiment(
    settings: ExperimentSettings,
) -> tuple[MultiAspectStream, DatasetSpec, WindowConfig, KruskalTensor, float]:
    """Generate the dataset, build the window, and run the ALS initialisation.

    Returns ``(stream, spec, window_config, initial_decomposition,
    initial_fitness)``; every method run by :func:`run_experiment` starts from
    the same initial decomposition, as in the paper's protocol.
    """
    stream, spec = generate_dataset(settings.dataset, scale=settings.scale)
    window_config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, window_config)
    initial = decompose(
        processor.window.tensor,
        rank=spec.rank,
        n_iterations=settings.als_iterations,
        seed=settings.seed,
    )
    return stream, spec, window_config, initial.decomposition, initial.fitness


def run_experiment(
    settings: ExperimentSettings,
    methods: Sequence[str],
    theta: int | None = None,
    eta: float | None = None,
) -> ExperimentResult:
    """Run every method in ``methods`` on the dataset described by ``settings``.

    With ``settings.n_workers > 1`` the shared preparation (dataset, window,
    ALS initialisation) still happens once, is persisted as an experiment
    snapshot, and the per-method replays fan out over worker processes
    (:mod:`repro.experiments.parallel`).  Results are identical to the
    sequential run for every method — the replays are deterministic functions
    of the snapshot — only wall-clock timings differ.  ``n_workers=1`` (the
    default) runs everything in-process, bit-identically to older releases,
    and keeps the ``<checkpoint_dir>/<method>`` layout either way.
    """
    # Local import: parallel imports run_method from this module.
    from repro.experiments.parallel import (
        method_result_from_payload,
        method_task,
        run_tasks_over_snapshot,
    )

    stream, spec, window_config, initial, initial_fitness = prepare_experiment(settings)
    tasks = [
        method_task(
            method,
            method,
            rank=spec.rank,
            theta=spec.theta if theta is None else theta,
            eta=spec.eta if eta is None else eta,
            max_events=settings.max_events,
            fitness_every=settings.fitness_every,
            seed=settings.seed,
            batched=settings.batched,
            sampling=settings.sampling,
            backend=settings.backend,
            shards=settings.shards,
            staleness=settings.staleness,
            checkpoint_events=settings.checkpoint_events,
            # Keep run checkpoints at <checkpoint_dir>/<method>, the
            # sequential layout, so runs interoperate across n_workers.
            checkpoint_subdir="",
        )
        for method in methods
    ]
    payloads = run_tasks_over_snapshot(
        stream,
        window_config,
        initial,
        tasks,
        n_workers=settings.n_workers,
        work_dir=settings.checkpoint_dir,
        resume=settings.resume,
        extra={
            "dataset": settings.dataset,
            "scale": settings.scale,
            "seed": settings.seed,
            "rank": spec.rank,
            "initial_fitness": initial_fitness,
        },
    )
    results = {
        method: method_result_from_payload(payloads[method]) for method in methods
    }
    return ExperimentResult(
        dataset=settings.dataset,
        window_config=window_config,
        initial_fitness=initial_fitness,
        methods=results,
    )
