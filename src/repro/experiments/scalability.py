"""Fig. 6 — total runtime of SliceNStitch versus the number of events.

The paper shows that the total running time of every SliceNStitch variant
grows linearly in the number of processed events (Observation 5).  The
experiment replays increasing event counts and reports total update time; the
result object also fits a least-squares line and reports the coefficient of
determination so the linearity claim can be checked numerically.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.experiments.config import ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.runner import prepare_experiment


@dataclasses.dataclass(slots=True)
class ScalabilityResult:
    """Total update time per (method, event count)."""

    dataset: str
    event_counts: list[int]
    total_seconds: dict[str, list[float]]

    def linearity(self, method: str) -> float:
        """R² of a straight-line fit of total time vs. events for ``method``."""
        times = np.asarray(self.total_seconds[method], dtype=np.float64)
        counts = np.asarray(self.event_counts, dtype=np.float64)
        if len(counts) < 2 or np.allclose(times, times[0]):
            return 1.0
        coefficients = np.polyfit(counts, times, deg=1)
        predicted = np.polyval(coefficients, counts)
        residual = float(np.sum((times - predicted) ** 2))
        total = float(np.sum((times - times.mean()) ** 2))
        return 1.0 - residual / total if total > 0 else 1.0


def run_scalability(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = ("sns_vec", "sns_rnd", "sns_vec_plus", "sns_rnd_plus"),
    event_counts: Sequence[int] = (500, 1000, 1500, 2000, 2500),
) -> ScalabilityResult:
    """Run the Fig. 6 experiment on one dataset.

    Every (method, event-count) replay is an independent task over one
    prepared snapshot; ``settings.n_workers > 1`` fans them out over worker
    processes.  Total update time is accumulated inside each worker, so the
    series keeps its meaning under fan-out.
    """
    from repro.experiments.parallel import (
        method_result_from_payload,
        method_task,
        run_tasks_over_snapshot,
    )

    settings = settings or ExperimentSettings()
    stream, spec, window_config, initial, _ = prepare_experiment(settings)
    tasks = [
        method_task(
            f"{method}@events={int(count)}",
            method,
            rank=spec.rank,
            theta=spec.theta,
            eta=spec.eta,
            max_events=int(count),
            fitness_every=max(int(count), 1),  # single fitness sample at the end
            seed=settings.seed,
            batched=settings.batched,
            sampling=settings.sampling,
        )
        for count in event_counts
        for method in methods
    ]
    payloads = run_tasks_over_snapshot(
        stream, window_config, initial, tasks, n_workers=settings.n_workers
    )
    total_seconds: dict[str, list[float]] = {method: [] for method in methods}
    for count in event_counts:
        for method in methods:
            outcome = method_result_from_payload(
                payloads[f"{method}@events={int(count)}"]
            )
            total_seconds[method].append(outcome.total_update_seconds)
    return ScalabilityResult(
        dataset=settings.dataset,
        event_counts=[int(c) for c in event_counts],
        total_seconds=total_seconds,
    )


def format_scalability(result: ScalabilityResult) -> str:
    """Render the Fig. 6 series plus the linear-fit quality."""
    rows = []
    for method, series in result.total_seconds.items():
        for count, seconds in zip(result.event_counts, series):
            rows.append((method, count, seconds))
    table = format_table(
        ("method", "events", "total update time [s]"),
        rows,
        title=f"Fig. 6 — scalability on {result.dataset}",
    )
    fits = format_table(
        ("method", "linear fit R^2"),
        [(method, result.linearity(method)) for method in result.total_seconds],
        title="Linearity check",
    )
    return f"{table}\n\n{fits}"
