"""Fig. 5 — runtime per update and average relative fitness, per dataset.

Fig. 5(a) of the paper reports the mean elapsed time per update of every
method on every dataset; Fig. 5(b) reports the average relative fitness.  The
same two quantities are produced here from the shared experiment runner.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.experiments.config import (
    DEFAULT_CONTINUOUS_METHODS,
    DEFAULT_PERIODIC_METHODS,
    ExperimentSettings,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclasses.dataclass(slots=True)
class SpeedFitnessResult:
    """Per-dataset, per-method speed and relative-fitness summary."""

    experiments: dict[str, ExperimentResult]
    methods: list[str]

    def rows(self) -> list[tuple[str, str, float, float]]:
        """(dataset, method label, update time [µs], avg relative fitness) rows."""
        rows = []
        for dataset, experiment in self.experiments.items():
            for method in self.methods:
                outcome = experiment.methods[method]
                rows.append(
                    (
                        dataset,
                        outcome.label,
                        outcome.mean_update_microseconds,
                        experiment.average_relative_fitness(method),
                    )
                )
        return rows

    def speedup_over_fastest_baseline(self, dataset: str, method: str) -> float:
        """How much faster ``method`` is than the fastest per-period baseline."""
        experiment = self.experiments[dataset]
        baseline_times = [
            outcome.mean_update_microseconds
            for outcome in experiment.methods.values()
            if outcome.kind == "periodic" and outcome.mean_update_microseconds > 0
        ]
        target = experiment.methods[method].mean_update_microseconds
        if not baseline_times or target <= 0:
            return float("nan")
        return min(baseline_times) / target


def run_speed_fitness(
    datasets: Sequence[str] = ("divvy_bikes", "chicago_crime", "nyc_taxi", "ride_austin"),
    methods: Sequence[str] | None = None,
    settings_overrides: dict[str, object] | None = None,
    n_workers: int | None = None,
) -> SpeedFitnessResult:
    """Run the Fig. 5 experiment across datasets.

    ``n_workers`` (or an ``n_workers`` key in ``settings_overrides``) fans
    each dataset's method roster out over worker processes; the per-method
    update timings are measured inside the workers and stay comparable.
    """
    if methods is None:
        methods = list(DEFAULT_CONTINUOUS_METHODS) + list(DEFAULT_PERIODIC_METHODS)
    else:
        methods = list(methods)
    if "als" not in methods:
        methods.append("als")
    overrides = dict(settings_overrides or {})
    if n_workers is not None:
        overrides["n_workers"] = n_workers
    experiments: dict[str, ExperimentResult] = {}
    for dataset in datasets:
        settings = ExperimentSettings(dataset=dataset, **overrides)  # type: ignore[arg-type]
        experiments[dataset] = run_experiment(settings, methods)
    return SpeedFitnessResult(experiments=experiments, methods=methods)


def format_speed_fitness(result: SpeedFitnessResult) -> str:
    """Render Fig. 5(a)+(b) as one text table."""
    return format_table(
        ("dataset", "method", "update time [us]", "avg relative fitness"),
        result.rows(),
        title="Fig. 5 — runtime per update and average relative fitness",
    )
