"""Fig. 7 — effect of the sampling threshold θ on SNS_RND and SNS+_RND.

The paper sweeps θ from 25% to 200% of its default and reports relative
fitness (top row of Fig. 7) and update time (bottom row): fitness increases
with diminishing returns while runtime grows roughly linearly
(Observation 6).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.experiments.config import ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.runner import prepare_experiment
from repro.metrics.fitness import relative_fitness


@dataclasses.dataclass(slots=True)
class ThetaSweepResult:
    """Fitness and update time per (method, θ)."""

    dataset: str
    thetas: list[int]
    relative_fitness: dict[str, list[float]]
    update_microseconds: dict[str, list[float]]


def run_theta_sweep(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = ("sns_rnd", "sns_rnd_plus"),
    fractions: Sequence[float] = (0.25, 0.5, 1.0, 1.5, 2.0),
) -> ThetaSweepResult:
    """Run the Fig. 7 sweep on one dataset.

    Every (method, θ) replay — and the shared ALS reference — is an
    independent task over one prepared snapshot; ``settings.n_workers > 1``
    fans them out over worker processes with identical results.
    """
    from repro.experiments.parallel import (
        method_result_from_payload,
        method_task,
        run_tasks_over_snapshot,
    )

    settings = settings or ExperimentSettings()
    stream, spec, window_config, initial, _ = prepare_experiment(settings)
    thetas = sorted({max(int(round(spec.theta * f)), 1) for f in fractions})
    shared = dict(
        rank=spec.rank,
        max_events=settings.max_events,
        fitness_every=settings.fitness_every,
        seed=settings.seed,
        batched=settings.batched,
        sampling=settings.sampling,
    )
    # ALS reference run once (θ does not affect it).
    tasks = [method_task("als", "als", **shared)]
    for theta in thetas:
        for method in methods:
            tasks.append(
                method_task(
                    f"{method}@theta={theta}",
                    method,
                    theta=theta,
                    eta=spec.eta,
                    **shared,
                )
            )
    payloads = run_tasks_over_snapshot(
        stream, window_config, initial, tasks, n_workers=settings.n_workers
    )
    reference = method_result_from_payload(payloads["als"])
    rel: dict[str, list[float]] = {method: [] for method in methods}
    micro: dict[str, list[float]] = {method: [] for method in methods}
    for theta in thetas:
        for method in methods:
            outcome = method_result_from_payload(payloads[f"{method}@theta={theta}"])
            rel[method].append(
                relative_fitness(outcome.average_fitness, reference.average_fitness)
            )
            micro[method].append(outcome.mean_update_microseconds)
    return ThetaSweepResult(
        dataset=settings.dataset,
        thetas=thetas,
        relative_fitness=rel,
        update_microseconds=micro,
    )


def format_theta_sweep(result: ThetaSweepResult) -> str:
    """Render the Fig. 7 rows as text."""
    rows = []
    for method in result.relative_fitness:
        for theta, fitness, micro in zip(
            result.thetas,
            result.relative_fitness[method],
            result.update_microseconds[method],
        ):
            rows.append((method, theta, fitness, micro))
    return format_table(
        ("method", "theta", "relative fitness", "update time [us]"),
        rows,
        title=f"Fig. 7 — effect of theta on {result.dataset}",
    )
