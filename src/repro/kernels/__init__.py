"""Pluggable compiled-kernel backends for the model hot path.

The per-event least-squares math of the SliceNStitch family — MTTKRP
rows, the fused sampled residual, the batched reconstruction gather, and
the ridge-regularized solves — lives behind the narrow five-kernel API of
:mod:`repro.kernels.api`.  Backends register in
:mod:`repro.kernels.registry`; the numpy reference
(:mod:`repro.kernels.numpy_backend`) is always available and bit-pinned
to the historical inline implementations, and the numba JIT backend
(:mod:`repro.kernels.numba_backend`) is selected automatically when
importable.

Selection: ``SNSConfig(backend=...)`` / ``StreamConfig(backend=...)`` per
model, the CLI ``--backend`` knob process-wide, or the
``REPRO_KERNEL_BACKEND`` environment variable; ``"auto"`` prefers numba
and degrades silently to numpy.
"""

from __future__ import annotations

from repro.kernels.api import (
    KERNEL_NAMES,
    KernelBackend,
    empty_overrides,
    flatten_mode_overrides,
    flatten_row_overrides,
)
# NOTE: registry.numpy_backend() is deliberately NOT re-exported here —
# importing the repro.kernels.numpy_backend submodule sets an attribute of
# the same name on this package, so a re-export would be silently replaced
# by the module object.  Use repro.kernels.registry.numpy_backend directly.
from repro.kernels.registry import (
    AUTO,
    ENV_VAR,
    KernelFallbackWarning,
    available_backends,
    default_backend_name,
    known_backends,
    load_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)


# importlib, not `from repro.kernels import ...`: the registry helpers
# re-exported above shadow the submodule attributes of the same names.
def _load_numpy() -> KernelBackend:
    import importlib

    return importlib.import_module("repro.kernels.numpy_backend").load()


def _load_numba() -> KernelBackend:
    import importlib

    return importlib.import_module("repro.kernels.numba_backend").load()


register_backend("numpy", _load_numpy)
register_backend("numba", _load_numba)

__all__ = [
    "AUTO",
    "ENV_VAR",
    "KERNEL_NAMES",
    "KernelBackend",
    "KernelFallbackWarning",
    "available_backends",
    "default_backend_name",
    "empty_overrides",
    "flatten_mode_overrides",
    "flatten_row_overrides",
    "known_backends",
    "load_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]
