"""The narrow kernel API compiled backends implement.

The model hot path — per-event least-squares math of the SliceNStitch
family — reduces to five array kernels.  A backend is a named bundle of
implementations of exactly these five callables; everything else (window
maintenance, sampling draws, Gram bookkeeping, control flow) stays in
plain numpy/Python and is shared by all backends.

The five kernels
----------------
``mttkrp_coo(indices, values, factors, mode, mode_size) -> (mode_size, R)``
    Full MTTKRP over prebuilt COO arrays (Eq. 4): for each non-zero,
    the value times the Hadamard product of the other modes' factor rows,
    scattered into the ``mode`` rows.

``mttkrp_rows(indices, values, factors, mode) -> (R,)``
    Row MTTKRP over one slice's arrays (the ``Omega(m)_{i_m}`` sum of
    Eqs. 12 and 21): every entry of ``indices`` shares the same ``mode``-th
    coordinate, so the result is a single length-``R`` vector.  Consumes
    :meth:`SparseTensor.mode_slice_arrays` output directly.

``sampled_residual(samples, observed, factors, mode, prev_row,
override_modes, override_indices, override_rows) -> (R,)``
    The fused sampled-residual term of Eqs. 16 and 23:
    ``(x - x̃) @ (Hadamard of other current rows)`` over the θ sampled
    coordinates, where ``x̃`` is the reconstruction from the
    start-of-event rows.  Start-of-event rows that differ from the live
    factors are passed as the flat override triple (see
    :func:`flatten_mode_overrides`).

``reconstruct_coords(coordinates, factors, override_modes,
override_indices, override_rows) -> (n,)``
    Batched reconstruction gather: the CP model value at each coordinate,
    with optional per-(mode, index) row overrides applied to the factor
    gathers.

``solve_regularized(matrix, rhs, ridge_matrix, scratch) -> like rhs``
    ``rhs @ (matrix + ridge)^-1`` for a symmetric PSD ``matrix`` via one
    Cholesky solve (Eq. 16 / Alg. 5 systems).  ``rhs`` may be one row
    ``(R,)`` or a batch of rows ``(B, R)`` — the batched form solves a
    whole entry group against one shared matrix in a single call.
    ``ridge_matrix`` is the precomputed ``reg * I`` term (or ``None``),
    ``scratch`` an optional ``(R, R)`` buffer the solve may clobber.

Contracts
---------
* The **numpy** backend is the reference: operation-for-operation
  identical to the historical inline implementations, so every golden
  and bit-exactness suite stays pinned.
* Every other backend must agree with the numpy reference to within
  ``1e-12`` (absolute or relative, whichever is larger) on well-scaled
  inputs, and must be deterministic: same inputs, same bits, every call.
* ``factors`` arrives as a sequence of ``(N_m, R)`` float64 matrices;
  backends must not mutate any input.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from typing import Any, Callable

import numpy as np

#: Kernel names every backend must provide, in API order.
KERNEL_NAMES = (
    "mttkrp_coo",
    "mttkrp_rows",
    "sampled_residual",
    "reconstruct_coords",
    "solve_regularized",
)

_EMPTY_INDICES = np.empty(0, dtype=np.int64)


@dataclasses.dataclass(frozen=True, slots=True)
class KernelBackend:
    """A named bundle of the five hot-path kernels."""

    name: str
    mttkrp_coo: Callable[..., np.ndarray]
    mttkrp_rows: Callable[..., np.ndarray]
    sampled_residual: Callable[..., np.ndarray]
    reconstruct_coords: Callable[..., np.ndarray]
    solve_regularized: Callable[..., np.ndarray]
    #: One-line human description (shown by CLI help / diagnostics).
    description: str = ""

    def kernels(self) -> dict[str, Callable[..., np.ndarray]]:
        """The five kernels as a name -> callable mapping."""
        return {name: getattr(self, name) for name in KERNEL_NAMES}


def empty_overrides(rank: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The no-override triple: empty modes/indices and a ``(0, rank)`` rows array."""
    return _EMPTY_INDICES, _EMPTY_INDICES, np.empty((0, rank), dtype=np.float64)


def flatten_mode_overrides(
    overrides_by_mode: Mapping[int, Sequence[tuple[int, np.ndarray]]],
    skip_mode: int,
    rank: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-mode ``(index, row)`` override lists into the kernel triple.

    ``overrides_by_mode`` maps a mode to the rows of that mode already
    updated this event, in commit order; ``skip_mode`` entries are dropped
    (a row update never overrides its own mode's gathers).  Kernels apply
    the overrides in the flattened order, which — because dict iteration
    follows insertion — is exactly the order the historical per-mode scan
    visited them, keeping the numpy path bit-identical.
    """
    total = sum(
        len(rows) for mode, rows in overrides_by_mode.items() if mode != skip_mode
    )
    if total == 0:
        return empty_overrides(rank)
    modes = np.empty(total, dtype=np.int64)
    indices = np.empty(total, dtype=np.int64)
    rows_array = np.empty((total, rank), dtype=np.float64)
    position = 0
    for mode, rows in overrides_by_mode.items():
        if mode == skip_mode:
            continue
        for index, row in rows:
            modes[position] = mode
            indices[position] = index
            rows_array[position, :] = row
            position += 1
    return modes, indices, rows_array


def flatten_row_overrides(
    row_overrides: Mapping[tuple[int, int], np.ndarray] | None,
    rank: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a ``(mode, index) -> row`` mapping into the kernel triple.

    Preserves the mapping's iteration order, which the numpy reference
    replays per mode exactly like the historical
    ``overrides_by_mode.setdefault(...)`` regrouping did.
    """
    if not row_overrides:
        return empty_overrides(rank)
    total = len(row_overrides)
    modes = np.empty(total, dtype=np.int64)
    indices = np.empty(total, dtype=np.int64)
    rows_array = np.empty((total, rank), dtype=np.float64)
    for position, ((mode, index), row) in enumerate(row_overrides.items()):
        modes[position] = mode
        indices[position] = index
        rows_array[position, :] = row
    return modes, indices, rows_array


def validate_backend(backend: Any) -> "KernelBackend":
    """Check that ``backend`` is a fully populated :class:`KernelBackend`."""
    if not isinstance(backend, KernelBackend):
        raise TypeError(
            f"kernel backends must be KernelBackend instances, got "
            f"{type(backend).__name__}"
        )
    for name in KERNEL_NAMES:
        if not callable(getattr(backend, name, None)):
            raise TypeError(f"backend {backend.name!r} kernel {name!r} is not callable")
    return backend
