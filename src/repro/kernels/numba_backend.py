"""Numba JIT backend for the kernel API.

Design notes:

* The module always imports — with or without numba.  When numba is
  importable, the kernel bodies below are compiled ``nopython`` at first
  call (lazy signatures, ``cache=True`` so recompiles amortise across
  processes); when it is not, they stay plain Python and :func:`load`
  raises :class:`~repro.exceptions.KernelUnavailableError` so the
  registry can degrade to numpy.  ``NUMBA_DISABLE_JIT`` counts as
  unavailable: interpreted kernel loops would be far *slower* than the
  vectorised numpy reference, so falling back is strictly better.
* ``fastmath`` stays off.  The backend promises determinism (same input,
  same bits, every call) and ≤1e-12 agreement with the numpy reference;
  reassociating reductions would break the former silently.
* Factor matrices arrive as a homogeneous tuple of C-contiguous
  ``(N_m, R)`` float64 arrays (a ``UniTuple``, which nopython code can
  index with a runtime mode number).  Each tensor order compiles its own
  specialization — streams have one order for their lifetime, so this
  costs one compile per kernel per process.
* The kernel bodies use explicit loops rather than numpy calls: the
  hot-path shapes are tiny (θ ≈ 20 samples, R ≈ 16–20, ≤2 entries per
  event), where numpy's per-call dispatch dominates and LLVM's scalar
  code wins.  No allocation happens inside the per-entry loops.
* The regularized solve hand-rolls the Cholesky factorization and
  triangular solves (nopython code cannot catch LAPACK errors), returning
  a success flag; the wrapper falls back to the numpy reference path —
  pinv and all — on non-definite systems, so failure semantics match.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

from repro.exceptions import KernelUnavailableError
from repro.kernels import numpy_backend
from repro.kernels.api import KernelBackend

try:
    from numba import njit as _njit

    _IMPORT_ERROR: str | None = None
except ImportError as error:  # pragma: no cover - depends on environment
    _njit = None
    _IMPORT_ERROR = str(error)


def _jit(function):
    """Compile ``function`` nopython when numba is present, else keep it plain."""
    if _njit is None:
        return function
    return _njit(cache=True, fastmath=False)(function)


def jit_disabled() -> bool:
    """True when ``NUMBA_DISABLE_JIT`` asks numba to interpret instead of compile."""
    return os.environ.get("NUMBA_DISABLE_JIT", "0").strip() not in ("", "0")


def _factor_tuple(factors: Sequence[np.ndarray]) -> tuple[np.ndarray, ...]:
    """Factors as the homogeneous contiguous-float64 tuple the kernels take."""
    return tuple(
        np.ascontiguousarray(factor, dtype=np.float64) for factor in factors
    )


# ----------------------------------------------------------------------
# nopython kernel bodies
# ----------------------------------------------------------------------
@_jit
def _mttkrp_coo_impl(indices, values, factors, mode, mode_size, rank):
    order = len(factors)
    result = np.zeros((mode_size, rank), dtype=np.float64)
    for entry in range(values.shape[0]):
        row = indices[entry, mode]
        value = values[entry]
        for component in range(rank):
            product = value
            for other_mode in range(order):
                if other_mode == mode:
                    continue
                product *= factors[other_mode][indices[entry, other_mode], component]
            result[row, component] += product
    return result


@_jit
def _mttkrp_rows_impl(indices, values, factors, mode, rank):
    order = len(factors)
    result = np.zeros(rank, dtype=np.float64)
    for entry in range(values.shape[0]):
        value = values[entry]
        for component in range(rank):
            product = value
            for other_mode in range(order):
                if other_mode == mode:
                    continue
                product *= factors[other_mode][indices[entry, other_mode], component]
            result[component] += product
    return result


@_jit
def _sampled_residual_impl(
    samples,
    observed,
    factors,
    mode,
    prev_row,
    override_modes,
    override_indices,
    override_rows,
    rank,
):
    order = len(factors)
    n_samples = samples.shape[0]
    n_overrides = override_modes.shape[0]
    result = np.zeros(rank, dtype=np.float64)
    current = np.empty(rank, dtype=np.float64)
    for sample in range(n_samples):
        reconstructed = 0.0
        for component in range(rank):
            product_current = 1.0
            product_previous = 1.0
            for other_mode in range(order):
                if other_mode == mode:
                    continue
                index = samples[sample, other_mode]
                value = factors[other_mode][index, component]
                product_current *= value
                # Later overrides for the same row win, matching the
                # in-order mask assignments of the numpy reference.
                previous_value = value
                for position in range(n_overrides):
                    if (
                        override_modes[position] == other_mode
                        and override_indices[position] == index
                    ):
                        previous_value = override_rows[position, component]
                product_previous *= previous_value
            current[component] = product_current
            reconstructed += product_previous * prev_row[component]
        residual = observed[sample] - reconstructed
        for component in range(rank):
            result[component] += residual * current[component]
    return result


@_jit
def _reconstruct_coords_impl(
    coordinates, factors, override_modes, override_indices, override_rows, rank
):
    order = len(factors)
    n_coordinates = coordinates.shape[0]
    n_overrides = override_modes.shape[0]
    result = np.empty(n_coordinates, dtype=np.float64)
    for coordinate in range(n_coordinates):
        total = 0.0
        for component in range(rank):
            product = 1.0
            for mode in range(order):
                index = coordinates[coordinate, mode]
                value = factors[mode][index, component]
                for position in range(n_overrides):
                    if (
                        override_modes[position] == mode
                        and override_indices[position] == index
                    ):
                        value = override_rows[position, component]
                product *= value
            total += product
        result[coordinate] = total
    return result


@_jit
def _cholesky_solve_impl(matrix, ridge, rhs):
    """Solve ``(matrix + ridge*I) x_b = rhs[b]`` for every row of ``rhs``.

    Returns ``(ok, solution)``; ``ok`` is False when the regularized matrix
    is not (numerically) positive definite, in which case ``solution`` is
    meaningless and the caller must fall back.
    """
    size = matrix.shape[0]
    lower = np.empty((size, size), dtype=np.float64)
    for i in range(size):
        for j in range(i + 1):
            accumulator = matrix[i, j]
            if i == j:
                accumulator += ridge
            for k in range(j):
                accumulator -= lower[i, k] * lower[j, k]
            if i == j:
                if accumulator <= 0.0:
                    return False, rhs
                lower[i, i] = np.sqrt(accumulator)
            else:
                lower[i, j] = accumulator / lower[j, j]
    solution = np.empty_like(rhs)
    for b in range(rhs.shape[0]):
        for i in range(size):
            accumulator = rhs[b, i]
            for k in range(i):
                accumulator -= lower[i, k] * solution[b, k]
            solution[b, i] = accumulator / lower[i, i]
        for i in range(size - 1, -1, -1):
            accumulator = solution[b, i]
            for k in range(i + 1, size):
                accumulator -= lower[k, i] * solution[b, k]
            solution[b, i] = accumulator / lower[i, i]
    return True, solution


# ----------------------------------------------------------------------
# Python wrappers (tuple conversion, shape normalisation, fallbacks)
# ----------------------------------------------------------------------
def mttkrp_coo(indices, values, factors, mode, mode_size):
    return _mttkrp_coo_impl(
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(values, dtype=np.float64),
        _factor_tuple(factors),
        mode,
        mode_size,
        factors[0].shape[1],
    )


def mttkrp_rows(indices, values, factors, mode):
    if values.size == 0:
        return np.zeros(factors[0].shape[1], dtype=np.float64)
    return _mttkrp_rows_impl(
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(values, dtype=np.float64),
        _factor_tuple(factors),
        mode,
        factors[0].shape[1],
    )


def sampled_residual(
    samples,
    observed,
    factors,
    mode,
    prev_row,
    override_modes,
    override_indices,
    override_rows,
):
    rank = factors[0].shape[1]
    if not samples.shape[0]:
        return np.zeros(rank, dtype=np.float64)
    return _sampled_residual_impl(
        np.ascontiguousarray(samples, dtype=np.int64),
        np.ascontiguousarray(observed, dtype=np.float64),
        _factor_tuple(factors),
        mode,
        np.ascontiguousarray(prev_row, dtype=np.float64),
        np.ascontiguousarray(override_modes, dtype=np.int64),
        np.ascontiguousarray(override_indices, dtype=np.int64),
        np.ascontiguousarray(override_rows, dtype=np.float64),
        rank,
    )


def reconstruct_coords(
    coordinates, factors, override_modes, override_indices, override_rows
):
    coordinate_array = np.ascontiguousarray(coordinates, dtype=np.int64)
    if coordinate_array.ndim != 2:
        coordinate_array = coordinate_array.reshape(-1, len(factors))
    rank = factors[0].shape[1]
    if coordinate_array.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    return _reconstruct_coords_impl(
        coordinate_array,
        _factor_tuple(factors),
        np.ascontiguousarray(override_modes, dtype=np.int64),
        np.ascontiguousarray(override_indices, dtype=np.int64),
        np.ascontiguousarray(override_rows, dtype=np.float64),
        rank,
    )


def solve_regularized(matrix, rhs, ridge_matrix, scratch=None):
    ridge = float(ridge_matrix[0, 0]) if ridge_matrix is not None else 0.0
    rhs_array = np.ascontiguousarray(rhs, dtype=np.float64)
    batched = rhs_array.ndim == 2
    rhs_2d = rhs_array if batched else rhs_array.reshape(1, -1)
    ok, solution = _cholesky_solve_impl(
        np.ascontiguousarray(matrix, dtype=np.float64), ridge, rhs_2d
    )
    if not ok:
        # Non-definite system: defer to the reference implementation so the
        # pinv fallback semantics (and its numerics) match numpy exactly.
        return numpy_backend.solve_regularized(matrix, rhs, ridge_matrix, scratch)
    return solution if batched else solution[0]


def load() -> KernelBackend:
    """Build the numba backend, or raise :class:`KernelUnavailableError`."""
    if _njit is None:
        raise KernelUnavailableError(
            f"numba backend requested but numba is not importable "
            f"({_IMPORT_ERROR})"
        )
    if jit_disabled():
        raise KernelUnavailableError(
            "numba backend requested but NUMBA_DISABLE_JIT is set; interpreted "
            "kernel loops would be slower than the numpy reference"
        )
    return KernelBackend(
        name="numba",
        mttkrp_coo=mttkrp_coo,
        mttkrp_rows=mttkrp_rows,
        sampled_residual=sampled_residual,
        reconstruct_coords=reconstruct_coords,
        solve_regularized=solve_regularized,
        description="numba nopython JIT (compiled lazily, cache=True)",
    )
