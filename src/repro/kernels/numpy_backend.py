"""The always-available numpy reference implementation of the kernel API.

Every function here is the historical inline implementation moved
verbatim — the same numpy calls in the same order on the same
intermediates — from :mod:`repro.als.mttkrp` (``mttkrp_coo`` and the
``mttkrp_row`` hot path), :meth:`repro.core.base.ContinuousCPD._reconstruction_batch`,
and :meth:`repro.core.randomized.RandomizedCPD`'s ``_solve_regularized`` /
``_vectorized_sampled_residual``.  That is a hard contract, not a style
choice: the golden-fitness, batched-equivalence, and checkpoint suites
pin bit-exact outputs, and they stay pinned precisely because selecting
the numpy backend performs the identical float operations the code
performed before the registry existed.  Change an operation here only
together with the goldens.

The only structural difference from the historical call sites is how row
overrides arrive: as the flat ``(modes, indices, rows)`` triple of
:func:`repro.kernels.api.flatten_mode_overrides` instead of per-mode dict
buckets.  The kernels scan the triple per mode in flat order, which —
because the flattener preserves dict insertion order — replays the exact
override sequence the bucketed loops applied.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.api import KernelBackend

try:  # Same optional-scipy guard as repro.core.randomized: dposv skips
    # numpy.linalg's per-call machinery for the small R x R systems.
    from scipy.linalg.lapack import dposv as _lapack_posv
except ImportError:  # pragma: no cover - exercised only without scipy
    _lapack_posv = None


def mttkrp_coo(
    indices: np.ndarray,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
    mode_size: int,
) -> np.ndarray:
    """MTTKRP over COO arrays — the body of :func:`repro.als.mttkrp.mttkrp_coo`."""
    rank = factors[0].shape[1]
    result = np.zeros((mode_size, rank), dtype=np.float64)
    if values.size == 0:
        return result
    product = np.broadcast_to(values[:, None], (values.size, rank)).copy()
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[indices[:, other_mode], :]
    np.add.at(result, indices[:, mode], product)
    return result


def mttkrp_rows(
    indices: np.ndarray,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """Row MTTKRP over one slice's arrays — the ``mttkrp_row`` hot path.

    ``indices`` / ``values`` are :meth:`SparseTensor.mode_slice_arrays`
    output (every entry's ``mode``-th coordinate is the slice index), so
    the scatter of :func:`mttkrp_coo` collapses to one row sum.
    """
    rank = factors[0].shape[1]
    if values.size == 0:
        return np.zeros(rank, dtype=np.float64)
    product = np.broadcast_to(values[:, None], (values.size, rank)).copy()
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[indices[:, other_mode], :]
    return product.sum(axis=0)


def sampled_residual(
    samples: np.ndarray,
    observed: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
    prev_row: np.ndarray,
    override_modes: np.ndarray,
    override_indices: np.ndarray,
    override_rows: np.ndarray,
) -> np.ndarray:
    """Fused residual ``(x - x̃) @ (Hadamard of other current rows)``.

    The body of ``RandomizedCPD._vectorized_sampled_residual`` with the
    override buckets flattened: overrides never carry ``mode`` itself (the
    flattener skips it), so a non-empty triple is exactly the historical
    ``relevant`` condition.
    """
    rank = factors[0].shape[1]
    if not samples.shape[0]:
        return np.zeros(rank, dtype=np.float64)
    product_current: np.ndarray | None = None
    product_previous: np.ndarray | None = None
    if override_modes.size == 0:
        # No other-mode row of this event has been updated yet (e.g. the
        # event's time rows, which run first): the live factors still
        # equal the start-of-event state, so one product chain serves
        # both roles.
        for other_mode, factor in enumerate(factors):
            if other_mode == mode:
                continue
            rows = factor[samples[:, other_mode], :]
            product_current = (
                rows if product_current is None else product_current * rows
            )
        product_previous = product_current
    else:
        for other_mode, factor in enumerate(factors):
            if other_mode == mode:
                continue
            column = samples[:, other_mode]
            rows = factor[column, :]
            rows_previous = rows
            copied = False
            for position in range(override_modes.shape[0]):
                if override_modes[position] != other_mode:
                    continue
                mask = column == override_indices[position]
                if mask.any():
                    if not copied:
                        rows_previous = rows.copy()
                        copied = True
                    rows_previous[mask] = override_rows[position]
            product_current = (
                rows if product_current is None else product_current * rows
            )
            product_previous = (
                rows_previous
                if product_previous is None
                else product_previous * rows_previous
            )
    reconstructed = product_previous @ prev_row
    residuals = observed - reconstructed  # the x̄_J values
    return residuals @ product_current


def reconstruct_coords(
    coordinates: np.ndarray | Sequence[Sequence[int]],
    factors: Sequence[np.ndarray],
    override_modes: np.ndarray,
    override_indices: np.ndarray,
    override_rows: np.ndarray,
) -> np.ndarray:
    """Batched reconstruction gather — the ``_reconstruction_batch`` body.

    Unlike :func:`sampled_residual`'s lazy copy, a mode with *any*
    overrides copies its gathered rows unconditionally (even when no mask
    matches) — exactly what the historical code did.
    """
    index_array = np.asarray(coordinates, dtype=np.int64)
    rank = factors[0].shape[1]
    product = np.ones((index_array.shape[0], rank), dtype=np.float64)
    has_overrides = override_modes.size > 0
    for mode, factor in enumerate(factors):
        rows = factor[index_array[:, mode], :]
        if has_overrides and np.any(override_modes == mode):
            rows = rows.copy()
            column = index_array[:, mode]
            for position in range(override_modes.shape[0]):
                if override_modes[position] != mode:
                    continue
                mask = column == override_indices[position]
                if mask.any():
                    rows[mask] = override_rows[position]
        product *= rows
    return product.sum(axis=1)


def solve_regularized(
    matrix: np.ndarray,
    rhs: np.ndarray,
    ridge_matrix: np.ndarray | None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """``rhs @ (matrix + ridge)^-1`` — the ``_solve_regularized`` body.

    ``rhs`` may be one row ``(R,)`` (the historical call shape, solved with
    the exact historical operations) or a batch ``(B, R)`` solved against
    the one shared factorization.  Non-definite systems fall back to the
    Moore-Penrose pseudo-inverse, exactly like ``ContinuousCPD._pinv``.
    """
    if ridge_matrix is not None:
        if scratch is None:
            scratch = np.empty_like(matrix)
        regularized = np.add(matrix, ridge_matrix, out=scratch)
    else:
        regularized = matrix
    batched = rhs.ndim == 2
    if _lapack_posv is not None:
        # The scratch buffer may be overwritten in place by the
        # factorization; a shared (cached) matrix must not be.
        _, solution, info = _lapack_posv(
            regularized,
            rhs.T if batched else rhs,
            lower=1,
            overwrite_a=regularized is scratch,
        )
        if info == 0:
            return solution.T if batched else solution
        if regularized is scratch:
            regularized = np.add(matrix, ridge_matrix, out=scratch)
    else:
        try:
            if batched:
                return np.linalg.solve(regularized, rhs.T).T
            return np.linalg.solve(regularized, rhs)
        except np.linalg.LinAlgError:
            pass
    return rhs @ np.linalg.pinv(regularized)


def load() -> KernelBackend:
    """Build the numpy reference backend (always available)."""
    return KernelBackend(
        name="numpy",
        mttkrp_coo=mttkrp_coo,
        mttkrp_rows=mttkrp_rows,
        sampled_residual=sampled_residual,
        reconstruct_coords=reconstruct_coords,
        solve_regularized=solve_regularized,
        description="pure-numpy reference (always available, bit-pinned)",
    )
