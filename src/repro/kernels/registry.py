"""Kernel backend registry: registration, selection, and graceful fallback.

Selection precedence (first hit wins):

1. an explicit backend name passed to :func:`resolve_backend` — this is
   what ``SNSConfig.backend`` / ``StreamConfig.backend`` carry;
2. the process default installed by :func:`set_default_backend` (the CLI
   ``--backend`` knob);
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. auto-detection: the fastest *available* backend — ``numba`` when it
   loads, else the numpy reference.

Failure semantics are deliberately asymmetric:

* An **unknown** name is a configuration error and raises — a typo must
  not silently run the slow path.
* A **known but unavailable** backend (numba not installed,
  ``NUMBA_DISABLE_JIT`` set) degrades to the numpy reference with a
  single :class:`KernelFallbackWarning` per backend per process, so a
  config written on a numba box still runs everywhere.
* Auto-detection never warns — not finding numba is the expected state
  of a minimal install, not a problem to report.

:func:`load_backend` is the strict loader (no fallback) for callers that
need to *know* (CI gates, diagnostics).
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable

from repro.exceptions import ConfigurationError, KernelUnavailableError
from repro.kernels.api import KernelBackend, validate_backend

#: Environment variable consulted when no explicit/process default is set.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The pseudo-name meaning "defer to defaults / auto-detection".
AUTO = "auto"

#: Auto-detection preference order (first loadable wins; numpy always loads).
_AUTO_PREFERENCE = ("numba", "numpy")


class KernelFallbackWarning(RuntimeWarning):
    """A requested kernel backend is unavailable; the numpy reference runs."""


_factories: dict[str, Callable[[], KernelBackend]] = {}
_cache: dict[str, KernelBackend] = {}
_warned: set[str] = set()
_process_default: str | None = None
_lock = threading.RLock()


def register_backend(
    name: str, factory: Callable[[], KernelBackend], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    The factory is called lazily (at most once; the instance is cached)
    and may raise :class:`KernelUnavailableError` when its dependencies
    are missing in the current environment.
    """
    if name == AUTO:
        raise ConfigurationError(f"{AUTO!r} is reserved and cannot be registered")
    with _lock:
        if name in _factories and not replace:
            raise ConfigurationError(f"kernel backend {name!r} already registered")
        _factories[name] = factory
        _cache.pop(name, None)
        _warned.discard(name)


def known_backends() -> tuple[str, ...]:
    """Names of all registered backends (available in this env or not)."""
    with _lock:
        return tuple(sorted(_factories))


def available_backends() -> tuple[str, ...]:
    """Names of registered backends that actually load in this environment."""
    names = []
    for name in known_backends():
        try:
            _load(name)
        except KernelUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def _load(name: str) -> KernelBackend:
    with _lock:
        if name in _cache:
            return _cache[name]
        if name not in _factories:
            raise ConfigurationError(
                f"unknown kernel backend {name!r}; known: "
                f"{', '.join(sorted(_factories)) or '(none)'}"
            )
        backend = validate_backend(_factories[name]())
        _cache[name] = backend
        return backend


def load_backend(name: str) -> KernelBackend:
    """Strict loader: return backend ``name`` or raise.

    Raises :class:`ConfigurationError` for unknown names and
    :class:`KernelUnavailableError` when the backend cannot load here —
    never falls back.  Use :func:`resolve_backend` on execution paths.
    """
    return _load(name)


def numpy_backend() -> KernelBackend:
    """The always-available numpy reference backend."""
    return _load("numpy")


def set_default_backend(name: str | None) -> None:
    """Install the process-wide default (the CLI ``--backend`` knob).

    ``None`` or ``"auto"`` clears it, restoring env-var / auto-detection.
    Unknown names raise immediately rather than at first use.
    """
    global _process_default
    if name is not None and name != AUTO and name not in known_backends():
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; known: "
            f"{', '.join(known_backends())}"
        )
    with _lock:
        _process_default = None if name == AUTO else name


def default_backend_name() -> str:
    """The name ``"auto"`` currently resolves to, before availability checks."""
    with _lock:
        if _process_default is not None:
            return _process_default
    environment = os.environ.get(ENV_VAR, "").strip()
    return environment if environment else AUTO


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend request to a loaded backend, degrading gracefully.

    ``name=None`` / ``"auto"`` defers to :func:`default_backend_name`; an
    explicitly named backend that is known but unavailable degrades to
    the numpy reference with one :class:`KernelFallbackWarning` per
    backend per process.
    """
    requested = name if name else AUTO
    if requested == AUTO:
        requested = default_backend_name()
    if requested == AUTO:
        for candidate in _AUTO_PREFERENCE:
            try:
                return _load(candidate)
            except KernelUnavailableError:
                continue
            except ConfigurationError:
                continue  # preference entry not registered (stripped builds)
        return numpy_backend()
    try:
        return _load(requested)
    except KernelUnavailableError as error:
        with _lock:
            first_time = requested not in _warned
            _warned.add(requested)
        if first_time:
            warnings.warn(
                f"kernel backend {requested!r} is unavailable "
                f"({error}); falling back to the numpy reference",
                KernelFallbackWarning,
                stacklevel=2,
            )
        return numpy_backend()


def _reset(*, forget_warnings: bool = True) -> None:
    """Test hook: drop cached instances, the process default, and warn state.

    Registered factories survive — they are module-level wiring, not
    per-test state.
    """
    global _process_default
    with _lock:
        _cache.clear()
        _process_default = None
        if forget_warnings:
            _warned.clear()
