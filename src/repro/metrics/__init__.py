"""Evaluation metrics used by the paper (Section VI-A) and timing helpers."""

from repro.metrics.fitness import fitness, relative_fitness
from repro.metrics.errors import (
    mean_absolute_error,
    root_mean_squared_error,
    reconstruction_errors,
)
from repro.metrics.timing import Stopwatch, UpdateTimer

__all__ = [
    "fitness",
    "relative_fitness",
    "mean_absolute_error",
    "root_mean_squared_error",
    "reconstruction_errors",
    "Stopwatch",
    "UpdateTimer",
]
