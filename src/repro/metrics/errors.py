"""Entry-level reconstruction errors (used by the anomaly-detection study)."""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.kruskal import KruskalTensor
from repro.tensor.sparse import SparseTensor


def reconstruction_errors(
    decomposition: KruskalTensor, tensor: SparseTensor
) -> dict[tuple[int, ...], float]:
    """Signed errors ``x_J - x̂_J`` at every non-zero coordinate of ``tensor``."""
    indices, values = tensor.to_coo_arrays()
    if values.size == 0:
        return {}
    reconstructed = decomposition.values_at(indices)
    return {
        tuple(int(i) for i in coordinate): float(value - estimate)
        for coordinate, value, estimate in zip(indices, values, reconstructed)
    }


def root_mean_squared_error(
    decomposition: KruskalTensor, tensor: SparseTensor
) -> float:
    """RMSE over the non-zero coordinates of ``tensor``."""
    errors = reconstruction_errors(decomposition, tensor)
    if not errors:
        return 0.0
    return math.sqrt(
        float(np.mean([error * error for error in errors.values()]))
    )


def mean_absolute_error(
    decomposition: KruskalTensor, tensor: SparseTensor
) -> float:
    """MAE over the non-zero coordinates of ``tensor``."""
    errors = reconstruction_errors(decomposition, tensor)
    if not errors:
        return 0.0
    return float(np.mean([abs(error) for error in errors.values()]))
