"""Fitness and relative fitness (Section VI-A of the paper).

* Fitness ``= 1 - ||X̂ - X||_F / ||X||_F`` — 1 means perfect reconstruction,
  0 means no better than the zero tensor, negative values are possible.
* Relative fitness ``= fitness_target / fitness_ALS`` — how close an online
  method gets to the offline ALS reference on the same window.
"""

from __future__ import annotations

import math

from repro.tensor.kruskal import KruskalTensor
from repro.tensor.sparse import SparseTensor


def fitness(decomposition: KruskalTensor, tensor: SparseTensor) -> float:
    """Fitness of ``decomposition`` against the sparse tensor ``tensor``."""
    return decomposition.fitness(tensor)


def relative_fitness(target_fitness: float, reference_fitness: float) -> float:
    """Ratio of a method's fitness to the ALS reference fitness.

    Both values may legitimately be negative for badly diverged models; the
    ratio is returned as-is in the common case (positive reference) and NaN
    when the reference fitness is zero or not finite, so plots make the
    pathology visible instead of hiding it.
    """
    if not math.isfinite(reference_fitness) or reference_fitness == 0.0:
        return float("nan")
    return target_fitness / reference_fitness
