"""Timing helpers used by the experiment runner and the benchmarks."""

from __future__ import annotations

import time

from repro.exceptions import TimerError


class Stopwatch:
    """Context manager measuring elapsed wall-clock time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class UpdateTimer:
    """Accumulates per-update timings and reports averages.

    The paper's headline speed metric is "elapsed time per update"
    (microseconds per event for SliceNStitch, per period for baselines).
    """

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.n_updates = 0
        self._start: float | None = None

    def start(self) -> None:
        """Start timing one update."""
        self._start = time.perf_counter()

    def stop(self) -> None:
        """Stop timing one update and accumulate.

        Raises :class:`~repro.exceptions.TimerError` when no matching
        :meth:`start` preceded it — silently accumulating time since the
        perf-counter origin would poison every derived statistic.
        """
        if self._start is None:
            raise TimerError("UpdateTimer.stop() called without a matching start()")
        self.total_seconds += time.perf_counter() - self._start
        self.n_updates += 1
        self._start = None

    def restore(self, total_seconds: float, n_updates: int) -> None:
        """Seed the accumulated totals (used when resuming a checkpointed run).

        The timer continues counting on top of the restored totals, so the
        derived per-update statistics reflect the lifetime run rather than
        only the updates timed after the restore.
        """
        if total_seconds < 0.0 or n_updates < 0:
            raise TimerError(
                f"cannot restore negative timer totals "
                f"({total_seconds} s, {n_updates} updates)"
            )
        self.total_seconds = float(total_seconds)
        self.n_updates = int(n_updates)
        self._start = None

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per update (0.0 before any update)."""
        return self.total_seconds / self.n_updates if self.n_updates else 0.0

    @property
    def mean_microseconds(self) -> float:
        """Mean microseconds per update, the unit used in the paper's figures."""
        return 1e6 * self.mean_seconds
