"""Multi-tenant streaming decomposition service.

Serves many independent tensor streams at once, each with live SliceNStitch
factor maintenance, over a line-delimited JSON TCP protocol:

* :mod:`repro.service.config` — per-stream and service-wide configuration;
* :mod:`repro.service.session` — the synchronous per-stream state machine
  (buffer → live, exact chunk application, anomaly scoring, durability);
* :mod:`repro.service.manager` — multi-tenancy: admission, lookup, recovery;
* :mod:`repro.service.server` — the asyncio front-end (bounded per-stream
  queues with explicit overload responses, atomic-snapshot queries,
  background checkpoints);
* :mod:`repro.service.client` — a blocking client with optional retries;
* :mod:`repro.service.faults` — deterministic fault injection for chaos
  testing (scripted checkpoint failures, connection resets, stalls);
* :mod:`repro.service.cli` — the ``repro serve`` entry point.

Determinism: each stream's factor and detector state is a pure function of
its config and the sequence of ingest chunks applied, so concurrent
multi-tenant operation is bit-identical to replaying each stream alone.
"""

from repro.service.config import ServiceConfig, StreamConfig
from repro.service.faults import FaultInjector, FaultPlan, FaultRule
from repro.service.telemetry import StreamTelemetry
from repro.service.session import StreamSession
from repro.service.manager import ServiceManager
from repro.service.server import StreamingServer
from repro.service.client import ServiceClient

__all__ = [
    "ServiceConfig",
    "StreamConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "StreamTelemetry",
    "StreamSession",
    "ServiceManager",
    "StreamingServer",
    "ServiceClient",
]
