"""``python -m repro.service`` — run the streaming service."""

import sys

from repro.service.cli import main

sys.exit(main())
