"""``repro serve`` / ``python -m repro.service`` — run the streaming service.

Prints ``listening on <host>:<port>`` once the socket is bound (with the
resolved port, so ``--port 0`` is scriptable), then serves until SIGINT /
SIGTERM or a client ``shutdown`` op.  Shutdown is graceful: queues drain and
every stream is checkpointed before the process exits.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from collections.abc import Sequence

from repro.service.config import ServiceConfig
from repro.service.faults import FaultPlan
from repro.service.manager import ServiceManager
from repro.service.server import StreamingServer


def build_parser() -> argparse.ArgumentParser:
    """Build the ``serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="slicenstitch serve",
        description=(
            "Serve many independent tensor streams with live SliceNStitch "
            "factor maintenance over a line-delimited JSON TCP protocol."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7342, help="TCP port (0 = pick a free one)"
    )
    parser.add_argument(
        "--max-streams",
        type=int,
        default=64,
        help="admission cap on concurrently registered streams",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help=(
            "per-stream ingest queue bound; a full queue rejects further "
            "ingests with an 'overloaded' response (backpressure)"
        ),
    )
    parser.add_argument(
        "--checkpoint-root",
        default=None,
        metavar="DIR",
        help=(
            "directory of durable per-stream state; streams found there are "
            "recovered on startup, and all streams are checkpointed there "
            "on shutdown"
        ),
    )
    parser.add_argument(
        "--checkpoint-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --checkpoint-root: checkpoint a stream whenever N events "
            "have been applied since its last checkpoint"
        ),
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "with --checkpoint-root: background sweep checkpointing every "
            "stream this often (0 disables)"
        ),
    )
    parser.add_argument(
        "--checkpoint-retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help=(
            "base delay before a failed background checkpoint is retried; "
            "doubles per consecutive failure"
        ),
    )
    parser.add_argument(
        "--checkpoint-retry-max",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="cap on the checkpoint retry backoff",
    )
    parser.add_argument(
        "--dedup-window",
        type=int,
        default=1024,
        metavar="N",
        help=(
            "recent ingest seq numbers remembered per stream for "
            "idempotent-retry dedup"
        ),
    )
    parser.add_argument(
        "--watchdog-stall",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "flag a stream as stalled when one chunk application exceeds "
            "this long (0 disables the watchdog)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help=(
            "default kernel backend for every stream whose config says "
            "'auto': 'numpy' is the always-available reference, 'numba' "
            "JIT-compiles the hot-path kernels (falls back to numpy with a "
            "warning when unavailable); 'auto' honours "
            "REPRO_KERNEL_BACKEND and otherwise auto-detects"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "default shard count for streams that do not pin one: each "
            "batch is partitioned into N shared-nothing shards updated as "
            "parallel kernel calls against a shared snapshot "
            "(repro.shard).  Unset keeps the exact single-shard path; "
            "resolved values are pinned into each stream's config at start"
        ),
    )
    parser.add_argument(
        "--staleness",
        type=int,
        default=None,
        metavar="S",
        help=(
            "default batches between Gram synchronizations of the sharded "
            "path for streams that do not pin one (0 = re-sync every "
            "batch; larger = faster, bounded fitness deviation)"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help=(
            "JSON fault-injection plan for chaos testing; scripted faults "
            "(checkpoint write errors, apply exceptions, connection resets, "
            "stalls, overloads) fire deterministically from the plan's seed"
        ),
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    if args.backend != "auto":
        # Streams whose StreamConfig.backend is "auto" resolve through the
        # process default, so this pins the whole service in one place.
        from repro.kernels.registry import set_default_backend

        set_default_backend(args.backend)
    if args.shards is not None or args.staleness is not None:
        # Streams whose StreamConfig leaves shards/staleness unset resolve
        # through the process defaults, so this pins the whole service.
        from repro.shard.defaults import set_default_sharding

        set_default_sharding(shards=args.shards, staleness=args.staleness)
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = FaultPlan.from_file(args.fault_plan)
    manager = ServiceManager(
        ServiceConfig(
            max_streams=args.max_streams,
            queue_limit=args.queue_limit,
            checkpoint_root=args.checkpoint_root,
            checkpoint_events=args.checkpoint_events,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_retry_backoff=args.checkpoint_retry_backoff,
            checkpoint_retry_max=args.checkpoint_retry_max,
            dedup_window=args.dedup_window,
            watchdog_stall_seconds=args.watchdog_stall,
            fault_plan=fault_plan,
        )
    )
    server = StreamingServer(manager, host=args.host, port=args.port)
    host, port = await server.start()
    if fault_plan is not None:
        print(
            f"fault injection active: {len(fault_plan.rules)} rule(s), "
            f"seed {fault_plan.seed}",
            flush=True,
        )
    recovered = manager.stream_ids
    if recovered:
        print(f"recovered {len(recovered)} stream(s): {', '.join(recovered)}")
    print(f"listening on {host}:{port}", flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, server.request_shutdown)
    await server.serve_until_shutdown()
    print("server stopped", flush=True)


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point for the service."""
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
