"""Thin blocking client for the streaming service.

One TCP connection, one request line per call, one response line back.
Errors come back as :class:`~repro.exceptions.ServiceError` carrying the
server's machine-readable code, so callers can branch on ``overloaded``
versus ``unknown_stream`` without parsing messages.

Example
-------
::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7342) as client:
        client.create_stream("taxi", mode_sizes=[20, 20], window_length=5,
                             period=3600.0, rank=5)
        client.ingest("taxi", [[[2, 5], 1.0, 1800.0], [[3, 1], 2.0, 5400.0]])
        client.start_stream("taxi")
        print(client.fitness("taxi"))
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.exceptions import ServiceError
from repro.service.protocol import MAX_REQUEST_BYTES, encode_message


class ServiceClient:
    """Blocking line-delimited JSON client."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7342, timeout: float = 60.0
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection."""
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and return the response payload.

        Raises :class:`ServiceError` (with the server's error code) when the
        response is not ok.
        """
        self._socket.sendall(encode_message({"op": op, **fields}))
        line = self._reader.readline(MAX_REQUEST_BYTES + 1024)
        if not line:
            raise ServiceError(
                "internal", "the server closed the connection mid-request"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceError(
                "internal", f"unparseable server response: {error}"
            ) from error
        if not isinstance(response, dict):
            raise ServiceError("internal", "malformed server response")
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "internal")),
                str(response.get("message", "request failed")),
            )
        return response

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Liveness check."""
        return self.request("ping")

    def create_stream(self, stream: str, **config: Any) -> dict[str, Any]:
        """Admit a new stream; ``config`` holds the StreamConfig fields."""
        return self.request("create_stream", stream=stream, config=config)

    def ingest(self, stream: str, records: list[Any]) -> dict[str, Any]:
        """Enqueue one chunk of ``[indices, value, time]`` records."""
        return self.request("ingest", stream=stream, records=records)

    def start_stream(
        self, stream: str, start_time: float | None = None
    ) -> dict[str, Any]:
        """Freeze the buffer into an initial window and go live."""
        fields: dict[str, Any] = {"stream": stream}
        if start_time is not None:
            fields["start_time"] = start_time
        return self.request("start_stream", **fields)

    def flush(self, stream: str) -> dict[str, Any]:
        """Barrier: wait until every queued chunk has been applied."""
        return self.request("flush", stream=stream)

    def advance(self, stream: str, time: float) -> dict[str, Any]:
        """Advance stream time without data (shifts/expiries fire)."""
        return self.request("advance", stream=stream, time=time)

    def factors(self, stream: str) -> dict[str, Any]:
        """Current factor matrices."""
        return self.request("factors", stream=stream)

    def fitness(self, stream: str) -> dict[str, Any]:
        """Current window fitness."""
        return self.request("fitness", stream=stream)

    def anomalies(self, stream: str, k: int = 20) -> dict[str, Any]:
        """Top-``k`` anomaly scoreboard."""
        return self.request("anomalies", stream=stream, k=k)

    def stats(self, stream: str) -> dict[str, Any]:
        """Structural snapshot of one stream."""
        return self.request("stats", stream=stream)

    def telemetry(self, stream: str) -> dict[str, Any]:
        """Lifetime telemetry counters of one stream."""
        return self.request("telemetry", stream=stream)

    def streams(self) -> dict[str, Any]:
        """Summary of every stream."""
        return self.request("streams")

    def checkpoint(self, stream: str) -> dict[str, Any]:
        """Write one stream's checkpoint now."""
        return self.request("checkpoint", stream=stream)

    def checkpoint_all(self) -> dict[str, Any]:
        """Write every stream's checkpoint now."""
        return self.request("checkpoint_all")

    def drop_stream(
        self, stream: str, delete_state: bool = False
    ) -> dict[str, Any]:
        """Forget a stream (optionally deleting its durable state)."""
        return self.request(
            "drop_stream", stream=stream, delete_state=delete_state
        )

    def shutdown(self) -> dict[str, Any]:
        """Gracefully stop the server (checkpoints everything first)."""
        return self.request("shutdown")
