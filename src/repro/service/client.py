"""Blocking client for the streaming service, with optional retries.

One TCP connection, one request line per call, one response line back.
Errors come back as :class:`~repro.exceptions.ServiceError` carrying the
server's machine-readable code, so callers can branch on ``overloaded``
versus ``unknown_stream`` without parsing messages.  Transport failures
(reset, timeout, truncated response) raise the client-side ``connection``
code — no server response existed, so the outcome of the request is
unknown.

Retry policy (``retries > 0``)
------------------------------
* ``overloaded`` is always safe to retry: the server *rejected* the chunk
  without enqueuing it.  Retried for every op with bounded exponential
  backoff plus jitter.
* ``connection`` failures are ambiguous — the op may or may not have been
  applied.  They are retried (after an automatic reconnect) only for ops
  that are idempotent: reads, barriers, checkpoints, and ``ingest`` /
  ``advance`` calls that carry a ``seq`` (the server deduplicates
  re-sends).  A seq-less ingest is *not* connection-retried: it could
  double-apply.
* Everything else (``bad_request``, ``conflict``, ``unknown_stream``, ...)
  is a real answer and raises immediately.

``auto_seq=True`` makes the client stamp each ``ingest`` / ``advance``
with a per-stream monotonic seq automatically, so every ingest becomes
safely retryable.  The counter starts at 1 per client instance — use
explicit seqs when several client instances feed one stream.

Example
-------
::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7342, retries=5, auto_seq=True) as client:
        client.create_stream("taxi", mode_sizes=[20, 20], window_length=5,
                             period=3600.0, rank=5)
        client.ingest("taxi", [[[2, 5], 1.0, 1800.0], [[3, 1], 2.0, 5400.0]])
        client.start_stream("taxi")
        print(client.fitness("taxi"))
"""

from __future__ import annotations

import json
import random
import socket
import time as time_module
from typing import Any

from repro.exceptions import ServiceError
from repro.service.protocol import MAX_REQUEST_BYTES, encode_message

#: Ops that are idempotent as-is: a connection-failure retry can never
#: double-apply them.  ``ingest`` / ``advance`` join this set only when the
#: request carries a ``seq`` (server-side dedup makes the re-send safe).
_SAFE_RETRY_OPS = frozenset(
    {
        "ping",
        "streams",
        "factors",
        "fitness",
        "anomalies",
        "stats",
        "telemetry",
        "flush",
        "health",
        "checkpoint",
        "checkpoint_all",
    }
)


class ServiceClient:
    """Blocking line-delimited JSON client with optional retries.

    Parameters
    ----------
    host, port, timeout:
        Where to connect, and the per-recv socket timeout.
    retries:
        Maximum retry attempts after a retryable failure (``0`` — the
        default — preserves the historical fail-fast behaviour).
    backoff_base, backoff_max, jitter:
        Exponential backoff: attempt ``n`` sleeps
        ``min(backoff_max, backoff_base * 2**n)`` scaled by a random
        factor in ``[1 - jitter, 1 + jitter]``.
    deadline:
        Per-*operation* wall-clock budget in seconds across all retries
        (``None`` = no budget).  The last error is re-raised when the
        budget is exhausted.
    auto_seq:
        Stamp ``ingest`` / ``advance`` with per-stream monotonic seqs so
        they become safely retryable.
    seed:
        Seed for the jitter RNG (deterministic backoff in tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7342,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.25,
        deadline: float | None = None,
        auto_seq: bool = False,
        seed: int | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.deadline = deadline
        self.auto_seq = auto_seq
        #: Diagnostics: retries performed / reconnects made over the
        #: client's lifetime.
        self.retries_performed = 0
        self.reconnects = 0
        self._rng = random.Random(seed)
        self._next_seq: dict[str, int] = {}
        self._socket: socket.socket | None = None
        self._reader = None
        self._connect()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._reader = self._socket.makefile("rb")

    def close(self) -> None:
        """Close the connection."""
        reader, sock = self._reader, self._socket
        self._reader = None
        self._socket = None
        try:
            if reader is not None:
                reader.close()
        finally:
            if sock is not None:
                sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request_once(self, op: str, fields: dict[str, Any]) -> dict[str, Any]:
        """One send/recv cycle, no retries.

        Any transport failure poisons the connection: the response stream
        may hold a stale or partial line, so the socket is closed and the
        next request reconnects.  Raises the ``connection`` code for
        transport failures, server codes otherwise.
        """
        if self._socket is None:
            self._connect()
            self.reconnects += 1
        try:
            self._socket.sendall(encode_message({"op": op, **fields}))
            line = self._reader.readline(MAX_REQUEST_BYTES + 1024)
        except (OSError, ValueError) as error:
            # ValueError covers I/O on a closed file object.
            self.close()
            raise ServiceError(
                "connection", f"transport failure during {op!r}: {error!r}"
            ) from error
        if not line:
            self.close()
            raise ServiceError(
                "connection",
                f"the server closed the connection during {op!r}",
            )
        if not line.endswith(b"\n"):
            # readline hit its size cap (or the peer died mid-line): the
            # response is truncated and the stream is desynchronised.
            self.close()
            raise ServiceError(
                "connection",
                f"oversized or truncated response to {op!r} "
                f"({len(line)} bytes with no newline); connection closed",
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            self.close()
            raise ServiceError(
                "connection", f"unparseable server response: {error}"
            ) from error
        if not isinstance(response, dict):
            self.close()
            raise ServiceError("connection", "malformed server response")
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "internal")),
                str(response.get("message", "request failed")),
            )
        return response

    def _retryable(self, op: str, fields: dict[str, Any], code: str) -> bool:
        if code == "overloaded":
            # The server rejected the request without enqueuing anything —
            # always safe to re-send.
            return True
        if code == "connection":
            if op in _SAFE_RETRY_OPS:
                return True
            if op in ("ingest", "advance") and fields.get("seq") is not None:
                return True
        return False

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and return the response payload.

        Applies the retry policy documented on the class; raises
        :class:`ServiceError` with the server's code (or the client-side
        ``connection`` code) when the request ultimately fails.
        """
        started = time_module.monotonic()
        attempt = 0
        while True:
            try:
                return self._request_once(op, fields)
            except ServiceError as error:
                if attempt >= self.retries or not self._retryable(
                    op, fields, error.code
                ):
                    raise
                delay = min(
                    self.backoff_max, self.backoff_base * (2**attempt)
                )
                if self.jitter:
                    delay *= 1 + self.jitter * (2 * self._rng.random() - 1)
                if (
                    self.deadline is not None
                    and time_module.monotonic() + delay - started
                    > self.deadline
                ):
                    raise
                attempt += 1
                self.retries_performed += 1
                time_module.sleep(delay)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Liveness check."""
        return self.request("ping")

    def create_stream(self, stream: str, **config: Any) -> dict[str, Any]:
        """Admit a new stream; ``config`` holds the StreamConfig fields."""
        return self.request("create_stream", stream=stream, config=config)

    def _stamp_seq(self, stream: str, seq: int | None) -> int | None:
        """Resolve the seq for an ingest/advance (explicit wins)."""
        if seq is not None:
            value = int(seq)
            next_known = self._next_seq.get(stream, 1)
            if value >= next_known:
                self._next_seq[stream] = value + 1
            return value
        if not self.auto_seq:
            return None
        value = self._next_seq.get(stream, 1)
        self._next_seq[stream] = value + 1
        return value

    def ingest(
        self, stream: str, records: list[Any], seq: int | None = None
    ) -> dict[str, Any]:
        """Enqueue one chunk of ``[indices, value, time]`` records.

        ``seq`` (or ``auto_seq=True``) makes the call idempotent: the seq
        is fixed *before* the first send, so every retry re-sends the same
        one and the server deduplicates.
        """
        fields: dict[str, Any] = {"stream": stream, "records": records}
        stamped = self._stamp_seq(stream, seq)
        if stamped is not None:
            fields["seq"] = stamped
        return self.request("ingest", **fields)

    def start_stream(
        self, stream: str, start_time: float | None = None
    ) -> dict[str, Any]:
        """Freeze the buffer into an initial window and go live."""
        fields: dict[str, Any] = {"stream": stream}
        if start_time is not None:
            fields["start_time"] = start_time
        return self.request("start_stream", **fields)

    def flush(self, stream: str) -> dict[str, Any]:
        """Barrier: wait until every queued chunk has been applied."""
        return self.request("flush", stream=stream)

    def advance(
        self, stream: str, time: float, seq: int | None = None
    ) -> dict[str, Any]:
        """Advance stream time without data (shifts/expiries fire)."""
        fields: dict[str, Any] = {"stream": stream, "time": time}
        stamped = self._stamp_seq(stream, seq)
        if stamped is not None:
            fields["seq"] = stamped
        return self.request("advance", **fields)

    def factors(self, stream: str) -> dict[str, Any]:
        """Current factor matrices."""
        return self.request("factors", stream=stream)

    def fitness(self, stream: str) -> dict[str, Any]:
        """Current window fitness."""
        return self.request("fitness", stream=stream)

    def anomalies(self, stream: str, k: int = 20) -> dict[str, Any]:
        """Top-``k`` anomaly scoreboard."""
        return self.request("anomalies", stream=stream, k=k)

    def stats(self, stream: str) -> dict[str, Any]:
        """Structural snapshot of one stream."""
        return self.request("stats", stream=stream)

    def telemetry(self, stream: str) -> dict[str, Any]:
        """Lifetime telemetry counters of one stream."""
        return self.request("telemetry", stream=stream)

    def streams(self) -> dict[str, Any]:
        """Summary of every stream."""
        return self.request("streams")

    def health(self, stream: str | None = None) -> dict[str, Any]:
        """Service-wide (or per-stream) liveness/readiness report."""
        if stream is None:
            return self.request("health")
        return self.request("health", stream=stream)

    def checkpoint(self, stream: str) -> dict[str, Any]:
        """Write one stream's checkpoint now."""
        return self.request("checkpoint", stream=stream)

    def checkpoint_all(self) -> dict[str, Any]:
        """Write every stream's checkpoint now."""
        return self.request("checkpoint_all")

    def drop_stream(
        self, stream: str, delete_state: bool = False
    ) -> dict[str, Any]:
        """Forget a stream (optionally deleting its durable state)."""
        return self.request(
            "drop_stream", stream=stream, delete_state=delete_state
        )

    def shutdown(self) -> dict[str, Any]:
        """Gracefully stop the server (checkpoints everything first)."""
        return self.request("shutdown")
