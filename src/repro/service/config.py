"""Configuration objects for the multi-tenant streaming service.

Two layers of configuration:

* :class:`StreamConfig` — everything one tenant stream needs: the window
  geometry (categorical mode sizes, ``W``, ``T``), the SliceNStitch variant
  that maintains its factors, and the hyper-parameters of that variant.
  Serialisable to/from plain JSON dicts so it can travel over the wire and
  live in per-stream metadata files.
* :class:`ServiceConfig` — service-wide knobs: the stream cap, the
  per-stream ingest queue bound (backpressure), and the checkpoint policy.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.core.registry import ALGORITHMS
from repro.exceptions import ConfigurationError


@dataclasses.dataclass(frozen=True, slots=True)
class StreamConfig:
    """Static description of one tenant stream.

    Parameters
    ----------
    mode_sizes:
        Sizes of the categorical modes (the time mode is implicit).
    window_length:
        Number of tensor units ``W`` in the sliding window.
    period:
        Unit period ``T`` in stream time units.
    rank:
        CP rank of the maintained decomposition.
    method:
        Registered SliceNStitch variant maintaining the factors.
    theta, eta, regularization, nonnegative, sampling, seed:
        Hyper-parameters forwarded to :class:`~repro.core.base.SNSConfig`.
    backend:
        Kernel backend for the model hot path (see :mod:`repro.kernels`),
        forwarded to :class:`~repro.core.base.SNSConfig`.  ``"auto"``
        honours ``repro serve --backend`` / ``REPRO_KERNEL_BACKEND`` and
        otherwise auto-detects; an execution detail (checkpoints restore
        across backends), recorded per stream in telemetry.
    shards, staleness:
        Sharded update path knobs (see :mod:`repro.shard`): shard count and
        batches between Gram synchronizations.  ``None`` — the default —
        defers to the process-wide defaults set by ``repro serve --shards``
        / ``--staleness`` (or their environment variables); the resolved
        values are pinned into the model's
        :class:`~repro.core.base.SNSConfig` when the stream starts, so a
        checkpointed stream keeps its mode across restarts regardless of
        the server's current defaults.
    als_iterations:
        ALS sweeps used to initialise the factors when the stream starts.
    detector_warmup:
        Warm-up observations of the per-stream anomaly detector.
    batch_window:
        Batch grouping window for the live drain (``None`` = the period).
    """

    mode_sizes: tuple[int, ...]
    window_length: int
    period: float
    rank: int
    method: str = "sns_vec"
    theta: int = 20
    eta: float = 1000.0
    regularization: float = 1e-12
    nonnegative: bool = False
    sampling: str = "vectorized"
    backend: str = "auto"
    shards: int | None = None
    staleness: int | None = None
    seed: int = 0
    als_iterations: int = 10
    detector_warmup: int = 30
    batch_window: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mode_sizes", tuple(int(n) for n in self.mode_sizes)
        )
        if not self.mode_sizes or any(n <= 0 for n in self.mode_sizes):
            raise ConfigurationError(
                f"mode_sizes must be positive, got {self.mode_sizes}"
            )
        if self.window_length <= 0:
            raise ConfigurationError(
                f"window_length must be positive, got {self.window_length}"
            )
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.rank <= 0:
            raise ConfigurationError(f"rank must be positive, got {self.rank}")
        if self.method not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown method {self.method!r}; choose one of "
                f"{sorted(ALGORITHMS)}"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(
                f"backend must be a backend name or 'auto', got {self.backend!r}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.staleness is not None and self.staleness < 0:
            raise ConfigurationError(
                f"staleness must be >= 0, got {self.staleness}"
            )
        if self.als_iterations <= 0:
            raise ConfigurationError(
                f"als_iterations must be positive, got {self.als_iterations}"
            )
        if self.batch_window is not None and self.batch_window < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serialisable representation."""
        payload = dataclasses.asdict(self)
        payload["mode_sizes"] = list(self.mode_sizes)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamConfig":
        """Rebuild from :meth:`to_dict` output (or a wire request).

        Unknown keys raise :class:`ConfigurationError` rather than being
        silently dropped — a typoed hyper-parameter must not produce a
        stream with defaults the caller never asked for.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown stream config keys {unknown}; known keys: "
                f"{sorted(known)}"
            )
        try:
            return cls(**dict(payload))
        except TypeError as error:
            raise ConfigurationError(
                f"invalid stream config: {error}"
            ) from error


@dataclasses.dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Service-wide policy knobs.

    Parameters
    ----------
    max_streams:
        Admission cap: ``create_stream`` beyond this count is refused.
    queue_limit:
        Bound of each stream's ingest queue; a full queue makes further
        ingests fail fast with an ``overloaded`` response (backpressure —
        the records are *rejected*, never silently dropped).
    checkpoint_root:
        Directory holding one subdirectory of durable state per stream.
        ``None`` disables persistence (queries and ingestion still work).
    checkpoint_events:
        Write a stream's checkpoint whenever this many events have been
        applied since its last one.  ``None`` disables count-triggered
        checkpoints.
    checkpoint_interval:
        Seconds between background checkpoint sweeps over all live streams.
        ``0`` disables the sweep.
    checkpoint_retry_backoff:
        Base delay (seconds) before a *failed* background checkpoint is
        retried; doubles per consecutive failure up to
        ``checkpoint_retry_max``.  Failed checkpoints mark the stream
        degraded and retry on this schedule instead of re-attempting on
        every subsequent chunk.
    checkpoint_retry_max:
        Cap on the checkpoint retry backoff (seconds).
    dedup_window:
        How many recent ingest/advance ``seq`` numbers each stream
        remembers for idempotent-retry dedup (on top of the applied
        high-water mark, which is persisted in checkpoints).
    watchdog_stall_seconds:
        A worker busy applying one chunk for longer than this is flagged
        as stalled by the watchdog (telemetry + ``health``).  ``0``
        disables the watchdog.
    fault_plan:
        Optional :class:`~repro.service.faults.FaultPlan` (or its dict
        form) scripting deterministic fault injection for chaos runs.
        ``None`` — the default — injects nothing.
    """

    max_streams: int = 64
    queue_limit: int = 64
    checkpoint_root: str | Path | None = None
    checkpoint_events: int | None = None
    checkpoint_interval: float = 0.0
    checkpoint_retry_backoff: float = 0.5
    checkpoint_retry_max: float = 30.0
    dedup_window: int = 1024
    watchdog_stall_seconds: float = 0.0
    fault_plan: Any = None

    def __post_init__(self) -> None:
        if self.fault_plan is not None:
            from repro.service.faults import FaultPlan

            if isinstance(self.fault_plan, Mapping):
                object.__setattr__(
                    self, "fault_plan", FaultPlan.from_dict(self.fault_plan)
                )
            elif not isinstance(self.fault_plan, FaultPlan):
                raise ConfigurationError(
                    "fault_plan must be a FaultPlan or its dict form, got "
                    f"{type(self.fault_plan).__name__}"
                )
        if self.max_streams <= 0:
            raise ConfigurationError(
                f"max_streams must be positive, got {self.max_streams}"
            )
        if self.queue_limit <= 0:
            raise ConfigurationError(
                f"queue_limit must be positive, got {self.queue_limit}"
            )
        if self.checkpoint_events is not None and self.checkpoint_events <= 0:
            raise ConfigurationError(
                f"checkpoint_events must be positive, got {self.checkpoint_events}"
            )
        if self.checkpoint_interval < 0:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}"
            )
        if self.checkpoint_retry_backoff <= 0:
            raise ConfigurationError(
                "checkpoint_retry_backoff must be positive, got "
                f"{self.checkpoint_retry_backoff}"
            )
        if self.checkpoint_retry_max < self.checkpoint_retry_backoff:
            raise ConfigurationError(
                "checkpoint_retry_max must be >= checkpoint_retry_backoff, "
                f"got {self.checkpoint_retry_max}"
            )
        if self.dedup_window <= 0:
            raise ConfigurationError(
                f"dedup_window must be positive, got {self.dedup_window}"
            )
        if self.watchdog_stall_seconds < 0:
            raise ConfigurationError(
                "watchdog_stall_seconds must be >= 0, got "
                f"{self.watchdog_stall_seconds}"
            )

    @property
    def root_path(self) -> Path | None:
        """``checkpoint_root`` as a :class:`~pathlib.Path` (or ``None``)."""
        if self.checkpoint_root is None:
            return None
        return Path(self.checkpoint_root)
