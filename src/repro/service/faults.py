"""Deterministic fault injection for the streaming service.

The service's fault tolerance is a *demonstrated* property, in the same
spirit as the bit-exactness equivalence suites that gate every perf PR: a
:class:`FaultPlan` scripts exactly which operations fail, and the chaos
suites assert that a retrying client driving a faulty service still
converges to the fault-free factor state.

A plan is a seed plus an ordered list of :class:`FaultRule` s.  Each rule
names a *site* (a place in the service instrumented with an injection
check), optional filters (stream ids, wire ops, write stage), a trigger
(explicit 1-based ``hits`` of that site, or a ``probability`` per hit), a
``limit`` on total fires, and the fault ``kind`` to inject:

=================== =================================================
site                where the check runs
=================== =================================================
``checkpoint.write``inside the atomic checkpoint directory writer, at
                    stages ``begin`` / ``arrays`` / ``manifest`` /
                    ``commit`` (so a fault can leave a partial npz or
                    a missing manifest behind the temp-dir swap)
``apply``           in the stream worker, before a queued chunk is
                    applied to the session
``worker.stall``    in the stream worker, before applying (kind
                    ``delay`` sleeps there, tripping the watchdog)
``connection.reset``in the connection handler, per request line; stage
                    ``request`` drops the request before dispatch,
                    stage ``response`` (default) applies the op and
                    then aborts the connection before the ack — the
                    ambiguous "sent but no ack" failure idempotent
                    ingest exists for
``ingest.overload`` in the ingest/advance enqueue path: reject with an
                    ``overloaded`` response even though the queue has
                    room
=================== =================================================

Kinds: ``oserror`` (generic :class:`OSError`), ``enospc``
(:class:`OSError` with ``errno == ENOSPC``), ``exception``
(:class:`~repro.exceptions.InjectedFaultError`), ``delay`` (sleep
``delay`` seconds, then proceed), ``reset`` (abort the connection),
``overload`` (reject with backpressure).

Determinism
-----------
Probabilistic triggers are *reproducible*: the decision for hit ``n`` of
rule ``i`` on stream ``s`` is drawn from ``random.Random`` seeded with the
string ``"<seed>:<i>:<s>:<n>"`` (string seeding hashes with SHA-512, so the
draw is identical across processes and ``PYTHONHASHSEED`` values).  Because
hits are counted per ``(rule, stream)``, the fault schedule of one stream
does not depend on how other streams' requests interleave with it.

Plans round-trip through plain JSON dicts (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`) and load from files for
``repro serve --fault-plan plan.json``.
"""

from __future__ import annotations

import dataclasses
import errno
import fnmatch
import json
import random
import threading
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError, InjectedFaultError

#: Instrumented injection sites.
SITES = (
    "checkpoint.write",
    "apply",
    "worker.stall",
    "connection.reset",
    "ingest.overload",
)

#: Fault kinds a rule may inject.
KINDS = ("oserror", "enospc", "exception", "delay", "reset", "overload")

#: Stages of one atomic checkpoint-directory write, in order.
CHECKPOINT_STAGES = ("begin", "arrays", "manifest", "commit")

#: Stages of one request line on a connection.
CONNECTION_STAGES = ("request", "response")

#: Default kind per site when a rule does not name one.
_DEFAULT_KINDS = {
    "checkpoint.write": "enospc",
    "apply": "exception",
    "worker.stall": "delay",
    "connection.reset": "reset",
    "ingest.overload": "overload",
}


def _tuple_or_none(value: Any, what: str) -> tuple[str, ...] | None:
    if value is None:
        return None
    if isinstance(value, str) or not isinstance(value, Sequence):
        raise ConfigurationError(
            f"fault rule {what} must be a list of strings, got {value!r}"
        )
    return tuple(str(item) for item in value)


@dataclasses.dataclass(frozen=True, slots=True)
class FaultRule:
    """One scripted fault: a site, filters, a trigger, and a fault kind."""

    site: str
    kind: str = ""
    streams: tuple[str, ...] | None = None
    ops: tuple[str, ...] | None = None
    stage: str | None = None
    hits: tuple[int, ...] | None = None
    probability: float = 0.0
    limit: int | None = None
    delay: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; choose one of {SITES}"
            )
        if not self.kind:
            object.__setattr__(self, "kind", _DEFAULT_KINDS[self.site])
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose one of {KINDS}"
            )
        object.__setattr__(
            self, "streams", _tuple_or_none(self.streams, "streams")
        )
        object.__setattr__(self, "ops", _tuple_or_none(self.ops, "ops"))
        if self.stage is None:
            default_stage = {
                "checkpoint.write": "begin",
                "connection.reset": "response",
            }.get(self.site)
            object.__setattr__(self, "stage", default_stage)
        stages = {
            "checkpoint.write": CHECKPOINT_STAGES,
            "connection.reset": CONNECTION_STAGES,
        }.get(self.site)
        if stages is not None and self.stage not in stages:
            raise ConfigurationError(
                f"fault site {self.site!r} has no stage {self.stage!r}; "
                f"choose one of {stages}"
            )
        if self.hits is not None:
            object.__setattr__(
                self, "hits", tuple(int(hit) for hit in self.hits)
            )
            if any(hit < 1 for hit in self.hits):
                raise ConfigurationError(
                    f"fault rule hits are 1-based, got {self.hits}"
                )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.hits is None and self.probability == 0.0:
            raise ConfigurationError(
                f"fault rule on {self.site!r} never fires: give it explicit "
                "hits or a probability > 0"
            )
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError(
                f"fault limit must be positive, got {self.limit}"
            )
        if self.delay < 0:
            raise ConfigurationError(
                f"fault delay must be >= 0, got {self.delay}"
            )
        if self.kind == "delay" and self.delay == 0.0:
            raise ConfigurationError(
                "a 'delay' fault needs a positive delay"
            )

    def matches(
        self, stream: str | None, op: str | None, stage: str | None
    ) -> bool:
        """True when this rule's filters accept the given context."""
        if self.streams is not None:
            if stream is None or not any(
                fnmatch.fnmatchcase(stream, pattern)
                for pattern in self.streams
            ):
                return False
        if self.ops is not None and (op is None or op not in self.ops):
            return False
        if self.stage is not None and stage is not None and stage != self.stage:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serialisable representation (defaults omitted)."""
        payload: dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.streams is not None:
            payload["streams"] = list(self.streams)
        if self.ops is not None:
            payload["ops"] = list(self.ops)
        if self.stage is not None:
            payload["stage"] = self.stage
        if self.hits is not None:
            payload["hits"] = list(self.hits)
        if self.probability:
            payload["probability"] = self.probability
        if self.limit is not None:
            payload["limit"] = self.limit
        if self.delay:
            payload["delay"] = self.delay
        if self.message:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultRule":
        """Rebuild from :meth:`to_dict` output (or a plan file entry)."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"a fault rule must be a JSON object, got {payload!r}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault rule keys {unknown}; known keys: "
                f"{sorted(known)}"
            )
        try:
            return cls(**dict(payload))
        except TypeError as error:
            raise ConfigurationError(f"invalid fault rule: {error}") from error


@dataclasses.dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed plus an ordered list of fault rules."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "seed", int(self.seed))

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serialisable representation."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild from :meth:`to_dict` output (or a parsed plan file)."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"a fault plan must be a JSON object, got {payload!r}"
            )
        unknown = sorted(set(payload) - {"seed", "rules"})
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys {unknown}; known keys: "
                "['rules', 'seed']"
            )
        rules_payload = payload.get("rules", [])
        if isinstance(rules_payload, (str, Mapping)) or not isinstance(
            rules_payload, Sequence
        ):
            raise ConfigurationError(
                "a fault plan's 'rules' must be a list of rule objects"
            )
        return cls(
            rules=tuple(
                FaultRule.from_dict(rule) for rule in rules_payload
            ),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` format)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"fault plan at {path} is unreadable: {error}"
            ) from error
        return cls.from_dict(payload)


@dataclasses.dataclass(frozen=True, slots=True)
class FaultAction:
    """What a fired rule injects at its site."""

    site: str
    kind: str
    stage: str | None
    delay: float
    message: str

    def raise_fault(self) -> None:
        """Raise the exception this action injects (no-op for delays)."""
        if self.kind == "enospc":
            raise OSError(errno.ENOSPC, self.message)
        if self.kind == "oserror":
            raise OSError(self.message)
        if self.kind == "exception":
            raise InjectedFaultError(self.message)


class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan`.

    Thread-safe: checkpoint writes run in worker threads while connection
    and queue checks run on the event loop, so hit counting takes a lock.
    ``check`` counts one hit per *matching* rule per call and returns the
    first rule that fires (or ``None``); counters are inspectable through
    :meth:`report`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        #: hits per (rule index, stream key)
        self._hits: dict[tuple[int, str], int] = {}
        #: fires per rule index
        self._fires: dict[int, int] = {}
        #: fires per site (for telemetry)
        self.fired: dict[str, int] = {site: 0 for site in SITES}

    def check(
        self,
        site: str,
        stream: str | None = None,
        op: str | None = None,
        stage: str | None = None,
    ) -> FaultAction | None:
        """Evaluate ``site`` once; return the first firing rule's action."""
        if site not in SITES:
            raise ConfigurationError(f"unknown fault site {site!r}")
        stream_key = stream if stream is not None else ""
        action: FaultAction | None = None
        with self._lock:
            # Every matching rule observes the event (its hit counter
            # advances) even when an earlier rule already fired — so each
            # rule's schedule is independent of the others in the plan.
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site:
                    continue
                if not rule.matches(stream, op, stage):
                    continue
                key = (index, stream_key)
                hit = self._hits.get(key, 0) + 1
                self._hits[key] = hit
                if rule.limit is not None and self._fires.get(index, 0) >= rule.limit:
                    continue
                if rule.hits is not None:
                    fire = hit in rule.hits
                else:
                    draw = random.Random(
                        f"{self.plan.seed}:{index}:{stream_key}:{hit}"
                    ).random()
                    fire = draw < rule.probability
                if not fire:
                    continue
                self._fires[index] = self._fires.get(index, 0) + 1
                self.fired[site] += 1
                if action is None:
                    message = rule.message or (
                        f"injected {rule.kind} fault at {site}"
                        + (f" (stream {stream!r})" if stream else "")
                    )
                    action = FaultAction(
                        site=site,
                        kind=rule.kind,
                        stage=rule.stage,
                        delay=rule.delay,
                        message=message,
                    )
        return action

    # ------------------------------------------------------------------
    # Site adapters
    # ------------------------------------------------------------------
    def checkpoint_write_hook(self, path: Path, stage: str) -> None:
        """Hook for the atomic checkpoint writer (runs in worker threads).

        The stream id is recovered from the directory layout
        (``<root>/<stream>/state`` for run checkpoints, ``<root>/<stream>``
        for metadata-only writes).
        """
        path = Path(path)
        stream = path.parent.name if path.name == "state" else path.name
        action = self.check("checkpoint.write", stream=stream, stage=stage)
        if action is None:
            return
        if action.kind == "delay":
            time.sleep(action.delay)
            return
        action.raise_fault()

    def report(self) -> dict[str, Any]:
        """Counters snapshot: fires per site and per rule."""
        with self._lock:
            return {
                "active": True,
                "seed": self.plan.seed,
                "rules": len(self.plan.rules),
                "fired_by_site": {
                    site: count
                    for site, count in self.fired.items()
                    if count
                },
                "fired_by_rule": [
                    self._fires.get(index, 0)
                    for index in range(len(self.plan.rules))
                ],
            }
