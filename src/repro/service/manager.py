"""Multi-tenant stream registry: admission, lookup, durability, recovery.

The :class:`ServiceManager` owns every :class:`~repro.service.session.StreamSession`
of a running service.  It enforces the stream cap, maps stream ids to
filesystem directories under the checkpoint root, persists/recovers sessions,
and reports service-wide state.  Like the sessions it holds, the manager is
synchronous and single-threaded by contract — the async layer serialises
calls into it.
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path
from typing import Any

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ReproError,
    ServiceError,
)
from repro.service.config import ServiceConfig, StreamConfig
from repro.service.session import StreamSession

#: Stream ids double as directory names, so keep them filesystem-safe.
_STREAM_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class ServiceManager:
    """Registry and lifecycle manager for all tenant streams."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self._sessions: dict[str, StreamSession] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def stream_ids(self) -> list[str]:
        """Ids of every registered stream, in creation order."""
        return list(self._sessions)

    def get(self, stream_id: str) -> StreamSession:
        """Session for ``stream_id``; ``unknown_stream`` error if absent."""
        session = self._sessions.get(stream_id)
        if session is None:
            raise ServiceError(
                "unknown_stream", f"no stream named {stream_id!r}"
            )
        return session

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_stream(
        self, stream_id: str, config: StreamConfig
    ) -> StreamSession:
        """Admit a new stream (buffering phase).

        Refuses duplicates (``conflict``), malformed ids (``bad_request``),
        and admissions beyond ``max_streams`` (``stream_cap``).
        """
        if not _STREAM_ID_PATTERN.match(str(stream_id)):
            raise ServiceError(
                "bad_request",
                f"invalid stream id {stream_id!r}: use 1-128 characters "
                "from [A-Za-z0-9._-], starting with a letter or digit",
            )
        if stream_id in self._sessions:
            raise ServiceError(
                "conflict", f"stream {stream_id!r} already exists"
            )
        if len(self._sessions) >= self.config.max_streams:
            raise ServiceError(
                "stream_cap",
                f"stream cap reached ({self.config.max_streams}); drop a "
                "stream or raise max_streams",
            )
        session = StreamSession(stream_id, config)
        self._sessions[stream_id] = session
        return session

    def drop_stream(self, stream_id: str, delete_state: bool = False) -> None:
        """Forget a stream; optionally delete its durable state too."""
        self.get(stream_id)  # unknown_stream if absent
        del self._sessions[stream_id]
        if delete_state:
            directory = self.stream_directory(stream_id)
            if directory is not None and directory.exists():
                shutil.rmtree(directory)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def stream_directory(self, stream_id: str) -> Path | None:
        """Durable state directory of ``stream_id`` (``None`` = no root)."""
        root = self.config.root_path
        if root is None:
            return None
        return root / stream_id

    def checkpoint_stream(self, stream_id: str) -> Path | None:
        """Persist one stream; returns its directory (``None`` = no root)."""
        session = self.get(stream_id)
        directory = self.stream_directory(stream_id)
        if directory is None:
            return None
        return session.save(directory)

    def checkpoint_all(self) -> list[str]:
        """Persist every stream; returns the ids actually written.

        Best-effort: one stream's write failure must not keep the others
        from being persisted.  Failures are recorded on the failing
        stream's telemetry (``last_checkpoint_error`` / degraded state) by
        :meth:`~repro.service.session.StreamSession.save` and the sweep
        continues.
        """
        if self.config.root_path is None:
            return []
        written = []
        for stream_id in self.stream_ids:
            try:
                self.checkpoint_stream(stream_id)
            except (ReproError, OSError):
                # Known failure modes only (service/checkpoint/injected
                # faults, disk errors); session.save already recorded the
                # cause on the stream's telemetry.  Anything else is a bug
                # and should propagate.
                continue
            written.append(stream_id)
        return written

    def recover(self) -> dict[str, Any]:
        """Rebuild every stream found under the checkpoint root.

        Damaged directories are reported, not fatal: one corrupt stream must
        not keep the other tenants down.  Returns
        ``{"recovered": [ids...], "failed": {id: reason, ...}}``.
        """
        root = self.config.root_path
        report: dict[str, Any] = {"recovered": [], "failed": {}}
        if root is None or not root.is_dir():
            return report
        for directory in sorted(root.iterdir()):
            if not directory.is_dir():
                continue
            stream_id = directory.name
            if stream_id in self._sessions:
                continue
            if len(self._sessions) >= self.config.max_streams:
                report["failed"][stream_id] = (
                    f"stream cap reached ({self.config.max_streams})"
                )
                continue
            try:
                session = StreamSession.load(directory)
            except (CheckpointError, ConfigurationError) as error:
                report["failed"][stream_id] = str(error)
                continue
            if session.stream_id != stream_id:
                report["failed"][stream_id] = (
                    f"directory name {stream_id!r} does not match the saved "
                    f"stream id {session.stream_id!r}"
                )
                continue
            self._sessions[stream_id] = session
            report["recovered"].append(stream_id)
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> list[dict[str, Any]]:
        """One summary row per stream (id, phase, clock, backlog counters)."""
        return [
            {
                "stream": stream_id,
                "phase": session.phase,
                "clock": (
                    None if session.clock == float("-inf") else session.clock
                ),
                "records_ingested": session.telemetry.records_ingested,
                "events_applied": session.telemetry.events_applied,
                "degraded": session.telemetry.degraded,
            }
            for stream_id, session in self._sessions.items()
        ]
