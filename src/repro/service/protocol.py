"""Line-delimited JSON wire protocol of the streaming service.

One request per line, one response per line — no framing library, no heavy
web framework, trivially scriptable with ``nc`` or a few lines of Python.

Request::

    {"op": "ingest", "stream": "taxi", "records": [[[2, 5], 1.0, 3600.5], ...]}

Response::

    {"ok": true, ...op-specific fields...}
    {"ok": false, "error": "overloaded", "message": "..."}

Records travel as ``[indices, value, time]`` triples.  Error codes are the
machine-readable contract (``unknown_stream``, ``overloaded``,
``stream_cap``, ``bad_request``, ``conflict``, ``internal``, plus the
client-side ``connection``); messages are for humans and may change.

Idempotent ingest: an ``ingest`` / ``advance`` request may carry a
per-stream monotonically increasing integer ``seq``.  The server remembers
the applied high-water mark (persisted in checkpoints) plus a recent-seq
dedup window, and answers an already-seen ``seq`` with
``{"ok": true, "duplicate": true}`` without re-applying — so a client
retrying after an ambiguous "sent but no ack" failure is exactly-once.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.exceptions import ReproError, ServiceError
from repro.stream.events import StreamRecord

#: Codes a response's ``error`` field may carry.  ``connection`` is never
#: sent by the server: the client raises it locally for transport failures
#: (reset, timeout, truncated response) where no server response exists, so
#: retry policy can branch on transport-vs-server faults.
ERROR_CODES = (
    "unknown_stream",
    "overloaded",
    "stream_cap",
    "bad_request",
    "conflict",
    "internal",
    "connection",
)

#: Requests larger than this are refused outright; a malicious or buggy
#: client must not be able to balloon the server's memory with one line.
MAX_REQUEST_BYTES = 8 * 1024 * 1024


def _sanitize(value: Any) -> Any:
    """Replace non-finite floats, which JSON cannot carry portably."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def encode_message(payload: dict[str, Any]) -> bytes:
    """Serialise one message to a newline-terminated JSON line."""
    return (json.dumps(_sanitize(payload), separators=(",", ":")) + "\n").encode()


def decode_request(line: bytes) -> dict[str, Any]:
    """Parse one request line; raises ``bad_request`` on malformed input."""
    if len(line) > MAX_REQUEST_BYTES:
        raise ServiceError(
            "bad_request",
            f"request of {len(line)} bytes exceeds the "
            f"{MAX_REQUEST_BYTES}-byte limit",
        )
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(
            "bad_request", f"request is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or not isinstance(payload.get("op"), str):
        raise ServiceError(
            "bad_request", 'a request must be a JSON object with an "op" string'
        )
    return payload


def ok_response(**fields: Any) -> dict[str, Any]:
    """Build a success response."""
    return {"ok": True, **fields}


def error_response(code: str, message: str) -> dict[str, Any]:
    """Build a failure response."""
    return {"ok": False, "error": code, "message": message}


def parse_records(payload: Any) -> list[StreamRecord]:
    """Parse the wire form of a record chunk into :class:`StreamRecord` s."""
    if not isinstance(payload, list):
        raise ServiceError(
            "bad_request",
            'records must be a list of "[indices, value, time]" triples',
        )
    records: list[StreamRecord] = []
    for position, item in enumerate(payload):
        try:
            indices, value, time = item
            records.append(
                StreamRecord(
                    indices=tuple(int(i) for i in indices),
                    value=float(value),
                    time=float(time),
                )
            )
        except (TypeError, ValueError, ReproError) as error:
            raise ServiceError(
                "bad_request", f"record {position} is malformed: {error}"
            ) from error
    return records


def records_to_wire(records: list[StreamRecord]) -> list[list[Any]]:
    """Inverse of :func:`parse_records` (used by the client)."""
    return [
        [list(record.indices), record.value, record.time] for record in records
    ]
