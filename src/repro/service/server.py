"""Asyncio front-end of the multi-tenant streaming service.

Concurrency model
-----------------
* One bounded :class:`asyncio.Queue` and one worker task per stream.  An
  ``ingest`` (or ``advance``) request enqueues one work item and returns
  immediately; a full queue is an explicit ``overloaded`` response — the
  chunk is *rejected*, never silently dropped, and the client owns the
  retry.  The worker applies items strictly in arrival order, so each
  stream's state is a deterministic function of its chunk sequence no
  matter how many streams run concurrently.
* One :class:`asyncio.Lock` per stream guards every touch of its session.
  The worker holds it across a whole chunk application and queries hold it
  across their read, so a query observes either the pre-chunk or the
  post-chunk state — never a half-applied batch (atomic snapshots).
* The numeric work itself runs in worker threads (``asyncio.to_thread``),
  keeping the event loop responsive while numpy grinds.

Durability: checkpoints are written by the stream's own worker once
``checkpoint_events`` events have accumulated, by a periodic background
sweep (``checkpoint_interval``), on explicit ``checkpoint`` ops, and on
graceful shutdown — always under the stream lock, so every checkpoint is a
consistent between-chunks snapshot.

Deferred errors: because ingestion is acknowledged before it is applied, an
out-of-order chunk fails *after* its response was sent.  Such failures are
kept per stream and surfaced on the next ``flush`` / ``telemetry`` response
instead of vanishing.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.exceptions import ReproError, ServiceError
from repro.service.config import ServiceConfig
from repro.service.manager import ServiceManager
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    decode_request,
    encode_message,
    error_response,
    ok_response,
    parse_records,
)


class _StreamWorker:
    """Queue + lock + apply-loop of one stream."""

    def __init__(self, server: "StreamingServer", stream_id: str) -> None:
        self.stream_id = stream_id
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=server.manager.config.queue_limit
        )
        self.lock = asyncio.Lock()
        self.deferred_errors: list[str] = []
        self._server = server
        self._task: asyncio.Task | None = None

    def ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    def take_deferred_errors(self) -> list[str]:
        errors, self.deferred_errors = self.deferred_errors, []
        return errors

    async def _run(self) -> None:
        manager = self._server.manager
        checkpoint_events = manager.config.checkpoint_events
        while True:
            kind, payload = await self.queue.get()
            try:
                session = manager.get(self.stream_id)
                async with self.lock:
                    if kind == "ingest":
                        await asyncio.to_thread(session.ingest, payload)
                    else:  # "advance"
                        await asyncio.to_thread(session.advance, payload)
                    if (
                        checkpoint_events is not None
                        and session.telemetry.events_since_checkpoint
                        >= checkpoint_events
                    ):
                        await asyncio.to_thread(
                            manager.checkpoint_stream, self.stream_id
                        )
            except asyncio.CancelledError:
                raise
            except ServiceError as error:
                self.deferred_errors.append(f"{error.code}: {error}")
            except Exception as error:  # keep the worker alive
                self.deferred_errors.append(f"internal: {error!r}")
            finally:
                self.queue.task_done()


class StreamingServer:
    """Line-delimited JSON TCP server over a :class:`ServiceManager`."""

    def __init__(
        self,
        manager: ServiceManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        # Not `manager or ...`: an empty manager has __len__ == 0 and would
        # be discarded as falsy.
        self.manager = (
            manager if manager is not None else ServiceManager(ServiceConfig())
        )
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._workers: dict[str, _StreamWorker] = {}
        self._checkpoint_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Resolved ``(host, port)`` once the server is started."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("conflict", "the server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Recover persisted streams and start accepting connections."""
        self.manager.recover()
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.host,
            port=self.port,
            limit=MAX_REQUEST_BYTES + 1024,
        )
        interval = self.manager.config.checkpoint_interval
        if interval > 0 and self.manager.config.root_path is not None:
            self._checkpoint_task = asyncio.get_running_loop().create_task(
                self._checkpoint_loop(interval)
            )
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (signal handlers call this)."""
        self._shutdown.set()

    async def stop(self) -> None:
        """Graceful stop: drain queues, checkpoint everything, close."""
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._checkpoint_task
            self._checkpoint_task = None
        for worker in self._workers.values():
            await worker.queue.join()
            await worker.stop()
        await asyncio.to_thread(self.manager.checkpoint_all)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _checkpoint_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            for stream_id in self.manager.stream_ids:
                worker = self._workers.get(stream_id)
                if worker is None:
                    await asyncio.to_thread(
                        self.manager.checkpoint_stream, stream_id
                    )
                    continue
                async with worker.lock:
                    await asyncio.to_thread(
                        self.manager.checkpoint_stream, stream_id
                    )

    # ------------------------------------------------------------------
    # Per-stream plumbing
    # ------------------------------------------------------------------
    def _worker(self, stream_id: str) -> _StreamWorker:
        """Worker for an *existing* stream (``unknown_stream`` otherwise)."""
        self.manager.get(stream_id)  # raises unknown_stream
        worker = self._workers.get(stream_id)
        if worker is None:
            worker = _StreamWorker(self, stream_id)
            self._workers[stream_id] = worker
        worker.ensure_running()
        return worker

    @staticmethod
    def _require(request: dict[str, Any], key: str) -> Any:
        value = request.get(key)
        if value is None:
            raise ServiceError(
                "bad_request", f'the {request["op"]!r} op needs a {key!r} field'
            )
        return value

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            error_response(
                                "bad_request",
                                "request line too long; closing connection",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch_safely(line)
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("shutdown"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch_safely(self, line: bytes) -> dict[str, Any]:
        try:
            request = decode_request(line)
            return await self._dispatch(request)
        except ServiceError as error:
            return error_response(error.code, str(error))
        except ReproError as error:
            return error_response("bad_request", str(error))
        except Exception as error:  # pragma: no cover - defensive
            return error_response("internal", repr(error))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request["op"]
        if op == "ping":
            return ok_response(pong=True, streams=len(self.manager))
        if op == "streams":
            rows = self.manager.describe()
            for row in rows:
                worker = self._workers.get(row["stream"])
                row["queue_depth"] = worker.queue.qsize() if worker else 0
            return ok_response(streams=rows)
        if op == "create_stream":
            return await self._op_create(request)
        if op == "checkpoint_all":
            written = []
            for stream_id in self.manager.stream_ids:
                worker = self._worker(stream_id)
                async with worker.lock:
                    await asyncio.to_thread(
                        self.manager.checkpoint_stream, stream_id
                    )
                written.append(stream_id)
            return ok_response(checkpointed=written)
        if op == "shutdown":
            return ok_response(shutdown=True)

        # Everything below addresses one existing stream.
        stream_id = str(self._require(request, "stream"))
        if op == "ingest":
            return self._op_ingest(stream_id, request)
        if op == "advance":
            return self._op_advance(stream_id, request)
        worker = self._worker(stream_id)
        session = self.manager.get(stream_id)
        if op == "start_stream":
            await worker.queue.join()  # buffered ingests land first
            async with worker.lock:
                result = await asyncio.to_thread(
                    session.start, request.get("start_time")
                )
            return ok_response(**result)
        if op == "flush":
            await worker.queue.join()
            return ok_response(
                clock=None if session.clock == float("-inf") else session.clock,
                events_applied=session.telemetry.events_applied,
                deferred_errors=worker.take_deferred_errors(),
            )
        if op == "factors":
            async with worker.lock:
                return ok_response(
                    **await asyncio.to_thread(session.factors)
                )
        if op == "fitness":
            async with worker.lock:
                return ok_response(
                    **await asyncio.to_thread(session.fitness)
                )
        if op == "anomalies":
            k = int(request.get("k", 20))
            async with worker.lock:
                return ok_response(
                    **await asyncio.to_thread(session.anomalies, k)
                )
        if op == "stats":
            async with worker.lock:
                return ok_response(**await asyncio.to_thread(session.stats))
        if op == "telemetry":
            async with worker.lock:
                payload = await asyncio.to_thread(session.telemetry_snapshot)
            payload["queue_depth"] = worker.queue.qsize()
            return ok_response(
                telemetry=payload,
                deferred_errors=list(worker.deferred_errors),
            )
        if op == "checkpoint":
            async with worker.lock:
                path = await asyncio.to_thread(
                    self.manager.checkpoint_stream, stream_id
                )
            return ok_response(path=None if path is None else str(path))
        if op == "drop_stream":
            await worker.queue.join()
            await worker.stop()
            self._workers.pop(stream_id, None)
            await asyncio.to_thread(
                self.manager.drop_stream,
                stream_id,
                bool(request.get("delete_state", False)),
            )
            return ok_response(dropped=stream_id)
        raise ServiceError("bad_request", f"unknown op {op!r}")

    async def _op_create(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.service.config import StreamConfig

        stream_id = str(self._require(request, "stream"))
        config = StreamConfig.from_dict(self._require(request, "config"))
        session = self.manager.create_stream(stream_id, config)
        self._worker(stream_id)
        return ok_response(stream=stream_id, phase=session.phase)

    def _op_ingest(
        self, stream_id: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        worker = self._worker(stream_id)
        session = self.manager.get(stream_id)
        records = parse_records(self._require(request, "records"))
        try:
            worker.queue.put_nowait(("ingest", records))
        except asyncio.QueueFull:
            session.telemetry.overload_rejections += 1
            raise ServiceError(
                "overloaded",
                f"stream {stream_id!r}'s ingest queue is full "
                f"({worker.queue.maxsize} chunks); retry after a flush",
            ) from None
        return ok_response(queued=len(records), depth=worker.queue.qsize())

    def _op_advance(
        self, stream_id: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        worker = self._worker(stream_id)
        session = self.manager.get(stream_id)
        to_time = float(self._require(request, "time"))
        try:
            worker.queue.put_nowait(("advance", to_time))
        except asyncio.QueueFull:
            session.telemetry.overload_rejections += 1
            raise ServiceError(
                "overloaded",
                f"stream {stream_id!r}'s ingest queue is full "
                f"({worker.queue.maxsize} chunks); retry after a flush",
            ) from None
        return ok_response(depth=worker.queue.qsize())


async def serve(
    manager: ServiceManager,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: "asyncio.Future | None" = None,
) -> None:
    """Start a server, announce its address, and run until shutdown."""
    server = StreamingServer(manager, host=host, port=port)
    address = await server.start()
    if ready is not None and not ready.done():
        ready.set_result(address)
    await server.serve_until_shutdown()
