"""Asyncio front-end of the multi-tenant streaming service.

Concurrency model
-----------------
* One bounded :class:`asyncio.Queue` and one worker task per stream.  An
  ``ingest`` (or ``advance``) request enqueues one work item and returns
  immediately; a full queue is an explicit ``overloaded`` response — the
  chunk is *rejected*, never silently dropped, and the client owns the
  retry.  The worker applies items strictly in arrival order, so each
  stream's state is a deterministic function of its chunk sequence no
  matter how many streams run concurrently.
* One :class:`asyncio.Lock` per stream guards every touch of its session.
  The worker holds it across a whole chunk application and queries hold it
  across their read, so a query observes either the pre-chunk or the
  post-chunk state — never a half-applied batch (atomic snapshots).
* The numeric work itself runs in worker threads (``asyncio.to_thread``),
  keeping the event loop responsive while numpy grinds.

Durability: checkpoints are performed by a dedicated background *writer
task*, off the ingest hot path.  Workers merely *request* a write once
``checkpoint_events`` events have accumulated; the periodic sweep
(``checkpoint_interval``) and explicit ``checkpoint`` ops feed the same
machinery.  A failed write marks the stream *degraded* (telemetry:
``last_checkpoint_error`` / ``checkpoint_failure_streak``) and is retried
on an exponential backoff schedule — never re-attempted on every chunk,
and never fatal to the worker; the next successful write clears the
degraded state.  Graceful shutdown still checkpoints every stream.

Idempotent ingest: ``ingest`` / ``advance`` may carry a per-stream
monotonic ``seq``.  Already-seen sequence numbers (the applied high-water
mark persisted in checkpoints, plus a bounded window of recently enqueued
ones) are acknowledged as duplicates without re-applying, making client
retries after ambiguous transport failures exactly-once.

Deferred errors: because ingestion is acknowledged before it is applied, an
out-of-order chunk fails *after* its response was sent.  Such failures are
kept per stream and surfaced on the next ``flush`` / ``telemetry`` response
instead of vanishing.

Health: the ``health`` op aggregates per-stream liveness (queue depth,
deferred errors, checkpoint staleness, degraded state, watchdog stall
flags); a background watchdog flags workers stuck applying one chunk for
longer than ``watchdog_stall_seconds``.

Fault injection: when the :class:`~repro.service.config.ServiceConfig`
carries a :class:`~repro.service.faults.FaultPlan`, the server threads a
:class:`~repro.service.faults.FaultInjector` through its checkpoint writer,
worker apply loop, connection handler, and ingest path — the chaos suites
drive scripted failures through exactly the code paths production takes.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections import OrderedDict
from typing import Any

from repro.exceptions import ReproError, ServiceError
from repro.service.config import ServiceConfig
from repro.service.faults import FaultInjector
from repro.service.manager import ServiceManager
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    decode_request,
    encode_message,
    error_response,
    ok_response,
    parse_records,
)
from repro.stream import checkpoint as checkpoint_module

#: Lock-discipline contract, enforced by ``repro lint``: every mention of
#: ``<receiver>.<method>`` below must sit inside an ``async with
#: <stream>.lock`` block (the atomic-snapshot guarantee).  Deliberate
#: unguarded uses (shutdown after the workers stopped, streams that never
#: had a worker) carry an inline ``# repro: allow[lock-discipline]``.
LOCK_GUARDED_METHODS = frozenset(
    {
        "session.ingest",
        "session.advance",
        "manager.checkpoint_stream",
        "manager.checkpoint_all",
    }
)


class _StreamWorker:
    """Queue + lock + apply-loop + seq-dedup window of one stream."""

    def __init__(self, server: "StreamingServer", stream_id: str) -> None:
        self.stream_id = stream_id
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=server.manager.config.queue_limit
        )
        self.lock = asyncio.Lock()
        self.deferred_errors: list[str] = []
        #: Recently accepted (enqueued or applied) ingest seqs, oldest first.
        self.seen_seqs: OrderedDict[int, bool] = OrderedDict()
        #: Highest seq ever accepted on this stream (monotonicity guard);
        #: starts at the session's applied high-water mark so a recovered
        #: stream keeps deduplicating across the restart.
        self.max_seq_seen = server.manager.get(stream_id).last_seq
        #: ``time.monotonic()`` at which the in-flight apply began
        #: (``None`` while idle) — the watchdog's stall signal.
        self.busy_since: float | None = None
        #: Set by the watchdog when one apply exceeds the stall threshold;
        #: cleared when the apply finally completes.
        self.stalled = False
        self._server = server
        self._task: asyncio.Task | None = None

    def ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    def take_deferred_errors(self) -> list[str]:
        errors, self.deferred_errors = self.deferred_errors, []
        return errors

    # ------------------------------------------------------------------
    # Idempotent-ingest bookkeeping
    # ------------------------------------------------------------------
    def note_seq(self, seq: int) -> None:
        """Remember an accepted seq (bounded dedup window)."""
        self.seen_seqs[seq] = True
        if seq > self.max_seq_seen:
            self.max_seq_seen = seq
        limit = self._server.manager.config.dedup_window
        while len(self.seen_seqs) > limit:
            self.seen_seqs.popitem(last=False)

    def _forget_seq(self, seq: int | None) -> None:
        """Drop a failed seq so an intentional retry is re-applied, not
        silently swallowed as a duplicate."""
        if seq is not None:
            self.seen_seqs.pop(seq, None)

    async def _run(self) -> None:
        server = self._server
        manager = server.manager
        checkpoint_events = manager.config.checkpoint_events
        while True:
            kind, payload, seq = await self.queue.get()
            self.busy_since = time.monotonic()
            try:
                session = manager.get(self.stream_id)
                async with self.lock:
                    faults = server.faults
                    if faults is not None:
                        stall = faults.check(
                            "worker.stall", stream=self.stream_id
                        )
                        if stall is not None and stall.kind == "delay":
                            # Deliberate chaos injection: the stall *must*
                            # block the stream so the watchdog sees it.
                            # repro: allow[sleep-under-lock] injected stall
                            await asyncio.sleep(stall.delay)
                        action = faults.check("apply", stream=self.stream_id)
                        if action is not None:
                            action.raise_fault()
                    if kind == "ingest":
                        await asyncio.to_thread(session.ingest, payload)
                    else:  # "advance"
                        await asyncio.to_thread(session.advance, payload)
                    if seq is not None and seq > session.last_seq:
                        session.last_seq = seq
                    if (
                        checkpoint_events is not None
                        and session.telemetry.events_since_checkpoint
                        >= checkpoint_events
                    ):
                        server.request_checkpoint(self.stream_id)
            except asyncio.CancelledError:
                raise
            except ServiceError as error:
                self._forget_seq(seq)
                self.deferred_errors.append(f"{error.code}: {error}")
            except Exception as error:  # keep the worker alive
                self._forget_seq(seq)
                self.deferred_errors.append(f"internal: {error!r}")
            finally:
                self.stalled = False
                self.busy_since = None
                self.queue.task_done()


class _CheckpointWriter:
    """Dedicated background checkpoint writer (off the ingest hot path).

    Workers, the periodic sweep, and count triggers *request* writes here;
    one task performs them under the stream lock.  Failure isolation: a
    failed write leaves the stream live and degraded
    (:meth:`~repro.service.session.StreamSession.save` records the error on
    its telemetry) and is retried after
    ``checkpoint_retry_backoff * 2**(streak-1)`` seconds (capped at
    ``checkpoint_retry_max``); count-triggered requests arriving during the
    backoff are coalesced into that retry instead of hammering the disk on
    every chunk.
    """

    def __init__(self, server: "StreamingServer") -> None:
        self._server = server
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._pending: set[str] = set()
        self._idle: dict[str, asyncio.Event] = {}
        self._retry_not_before: dict[str, float] = {}
        self._retry_handles: dict[str, asyncio.TimerHandle] = {}
        self._task: asyncio.Task | None = None

    def ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    def request(self, stream_id: str, force: bool = False) -> None:
        """Ask for one background checkpoint of ``stream_id``.

        Coalesces: a no-op while a write for the stream is already queued
        or in flight, and — unless ``force`` — while the stream is inside
        its failure backoff window (the scheduled retry will cover it).
        """
        if stream_id in self._pending:
            return
        if not force and time.monotonic() < self._retry_not_before.get(
            stream_id, 0.0
        ):
            return
        self.ensure_running()
        self._pending.add(stream_id)
        self._idle.setdefault(stream_id, asyncio.Event()).clear()
        self._queue.put_nowait(stream_id)

    async def wait_idle(self, stream_id: str) -> None:
        """Barrier: wait until no write for ``stream_id`` is queued/in flight
        (scheduled backoff retries are *not* waited for)."""
        event = self._idle.get(stream_id)
        if event is not None:
            await event.wait()

    def forget(self, stream_id: str) -> None:
        """Drop retry state for a removed stream."""
        handle = self._retry_handles.pop(stream_id, None)
        if handle is not None:
            handle.cancel()
        self._retry_not_before.pop(stream_id, None)

    async def stop(self) -> None:
        """Finish queued writes, cancel retries, and stop the task."""
        for handle in self._retry_handles.values():
            handle.cancel()
        self._retry_handles.clear()
        self._retry_not_before.clear()
        if self._task is not None and not self._task.done():
            await self._queue.join()
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        self._pending.clear()
        for event in self._idle.values():
            event.set()

    async def _run(self) -> None:
        while True:
            stream_id = await self._queue.get()
            try:
                await self._write(stream_id)
            finally:
                self._pending.discard(stream_id)
                event = self._idle.get(stream_id)
                if event is not None:
                    event.set()
                self._queue.task_done()

    async def _write(self, stream_id: str) -> None:
        server = self._server
        if stream_id not in server.manager:
            return  # dropped while the request was queued
        worker = server._workers.get(stream_id)
        try:
            if worker is None:
                # No worker == no concurrent ingest on this stream.
                await asyncio.to_thread(
                    # repro: allow[lock-discipline] stream has no worker
                    server.manager.checkpoint_stream,
                    stream_id,
                )
            else:
                async with worker.lock:
                    await asyncio.to_thread(
                        server.manager.checkpoint_stream, stream_id
                    )
        except asyncio.CancelledError:
            raise
        # The writer task must survive *any* write failure; session.save
        # already recorded the cause on the stream's telemetry (degraded).
        except Exception:  # repro: allow[broad-except] retried via backoff
            self._schedule_retry(stream_id)
        else:
            self.forget(stream_id)

    def _schedule_retry(self, stream_id: str) -> None:
        config = self._server.manager.config
        try:
            streak = self._server.manager.get(
                stream_id
            ).telemetry.checkpoint_failure_streak
        except ServiceError:
            return
        delay = min(
            config.checkpoint_retry_max,
            config.checkpoint_retry_backoff * (2 ** max(streak - 1, 0)),
        )
        self._retry_not_before[stream_id] = time.monotonic() + delay
        old = self._retry_handles.pop(stream_id, None)
        if old is not None:
            old.cancel()
        self._retry_handles[stream_id] = asyncio.get_running_loop().call_later(
            delay, self._fire_retry, stream_id
        )

    def _fire_retry(self, stream_id: str) -> None:
        self._retry_handles.pop(stream_id, None)
        self._retry_not_before.pop(stream_id, None)
        if stream_id in self._server.manager:
            self.request(stream_id, force=True)


class StreamingServer:
    """Line-delimited JSON TCP server over a :class:`ServiceManager`."""

    def __init__(
        self,
        manager: ServiceManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        # Not `manager or ...`: an empty manager has __len__ == 0 and would
        # be discarded as falsy.
        self.manager = (
            manager if manager is not None else ServiceManager(ServiceConfig())
        )
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._workers: dict[str, _StreamWorker] = {}
        self._writer = _CheckpointWriter(self)
        self._checkpoint_task: asyncio.Task | None = None
        self._watchdog_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        plan = self.manager.config.fault_plan
        #: Active fault injector (``None`` outside chaos runs).
        self.faults: FaultInjector | None = (
            FaultInjector(plan) if plan is not None else None
        )
        self._hook_installed = False
        if self.faults is not None:
            checkpoint_module.install_write_fault_hook(
                self.faults.checkpoint_write_hook
            )
            self._hook_installed = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Resolved ``(host, port)`` once the server is started."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("conflict", "the server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Recover persisted streams and start accepting connections."""
        await asyncio.to_thread(self.manager.recover)
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.host,
            port=self.port,
            limit=MAX_REQUEST_BYTES + 1024,
        )
        interval = self.manager.config.checkpoint_interval
        if interval > 0 and self.manager.config.root_path is not None:
            self._checkpoint_task = asyncio.get_running_loop().create_task(
                self._checkpoint_loop(interval)
            )
        threshold = self.manager.config.watchdog_stall_seconds
        if threshold > 0:
            self._watchdog_task = asyncio.get_running_loop().create_task(
                self._watchdog_loop(threshold)
            )
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (signal handlers call this)."""
        self._shutdown.set()

    async def stop(self) -> None:
        """Graceful stop: drain queues, checkpoint everything, close."""
        for task_attr in ("_checkpoint_task", "_watchdog_task"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                setattr(self, task_attr, None)
        for worker in self._workers.values():
            await worker.queue.join()
            await worker.stop()
        await self._writer.stop()
        # Every worker and the writer have stopped: nothing else can touch
        # the sessions, so the final sweep needs no per-stream lock.
        # repro: allow[lock-discipline] quiesced shutdown sweep
        await asyncio.to_thread(self.manager.checkpoint_all)
        if self._hook_installed:
            checkpoint_module.install_write_fault_hook(None)
            self._hook_installed = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _checkpoint_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            for stream_id in self.manager.stream_ids:
                self._writer.request(stream_id)

    async def _watchdog_loop(self, threshold: float) -> None:
        """Flag workers stuck applying one chunk longer than ``threshold``."""
        interval = max(min(threshold / 4.0, 1.0), 0.01)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for stream_id, worker in list(self._workers.items()):
                busy_since = worker.busy_since
                if (
                    busy_since is not None
                    and not worker.stalled
                    and now - busy_since >= threshold
                ):
                    worker.stalled = True
                    with contextlib.suppress(ServiceError):
                        self.manager.get(
                            stream_id
                        ).telemetry.stalls_detected += 1

    def request_checkpoint(self, stream_id: str) -> None:
        """Hand a stream to the background checkpoint writer (no-op without
        a checkpoint root)."""
        if self.manager.config.root_path is not None:
            self._writer.request(stream_id)

    # ------------------------------------------------------------------
    # Per-stream plumbing
    # ------------------------------------------------------------------
    def _worker(self, stream_id: str) -> _StreamWorker:
        """Worker for an *existing* stream (``unknown_stream`` otherwise)."""
        self.manager.get(stream_id)  # raises unknown_stream
        worker = self._workers.get(stream_id)
        if worker is None:
            worker = _StreamWorker(self, stream_id)
            self._workers[stream_id] = worker
        worker.ensure_running()
        return worker

    @staticmethod
    def _require(request: dict[str, Any], key: str) -> Any:
        value = request.get(key)
        if value is None:
            raise ServiceError(
                "bad_request", f'the {request["op"]!r} op needs a {key!r} field'
            )
        return value

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    @staticmethod
    def _peek_request(line: bytes) -> tuple[str | None, str | None]:
        """Best-effort ``(op, stream)`` of a raw request line (fault
        matching only; real validation happens in ``decode_request``)."""
        try:
            payload = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, None
        if not isinstance(payload, dict):
            return None, None
        op = payload.get("op")
        stream = payload.get("stream")
        return (
            op if isinstance(op, str) else None,
            str(stream) if stream is not None else None,
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            error_response(
                                "bad_request",
                                "request line too long; closing connection",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                reset = None
                if self.faults is not None:
                    op, stream = self._peek_request(line)
                    reset = self.faults.check(
                        "connection.reset", stream=stream, op=op
                    )
                if reset is not None and reset.kind == "delay":
                    # Slow response: the op proceeds, the client may time out.
                    await asyncio.sleep(reset.delay)
                    reset = None
                if reset is not None and reset.stage == "request":
                    # Drop the request before any processing happened.
                    writer.transport.abort()
                    break
                response = await self._dispatch_safely(line)
                if reset is not None:
                    # The op was applied; its ack is lost — the ambiguous
                    # failure idempotent retries exist for.
                    writer.transport.abort()
                    break
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("shutdown"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            # Peer may already be gone; nothing to do about close errors.
            # repro: allow[broad-except] best-effort socket teardown
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch_safely(self, line: bytes) -> dict[str, Any]:
        try:
            request = decode_request(line)
            return await self._dispatch(request)
        except ServiceError as error:
            return error_response(error.code, str(error))
        except ReproError as error:
            return error_response("bad_request", str(error))
        except Exception as error:  # pragma: no cover - defensive
            return error_response("internal", repr(error))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request["op"]
        if op == "ping":
            return ok_response(pong=True, streams=len(self.manager))
        if op == "streams":
            rows = self.manager.describe()
            for row in rows:
                worker = self._workers.get(row["stream"])
                row["queue_depth"] = worker.queue.qsize() if worker else 0
            return ok_response(streams=rows)
        if op == "create_stream":
            return await self._op_create(request)
        if op == "checkpoint_all":
            written: list[str] = []
            failed: dict[str, str] = {}
            for stream_id in self.manager.stream_ids:
                worker = self._worker(stream_id)
                try:
                    async with worker.lock:
                        await asyncio.to_thread(
                            self.manager.checkpoint_stream, stream_id
                        )
                except Exception as error:
                    failed[stream_id] = f"{type(error).__name__}: {error}"
                    continue
                written.append(stream_id)
            return ok_response(checkpointed=written, failed=failed)
        if op == "health":
            if request.get("stream") is None:
                return self._op_health_service()
            return ok_response(
                **self._stream_health(str(request["stream"]))
            )
        if op == "shutdown":
            return ok_response(shutdown=True)

        # Everything below addresses one existing stream.
        stream_id = str(self._require(request, "stream"))
        if op == "ingest":
            return self._op_ingest(stream_id, request)
        if op == "advance":
            return self._op_advance(stream_id, request)
        worker = self._worker(stream_id)
        session = self.manager.get(stream_id)
        if op == "start_stream":
            await worker.queue.join()  # buffered ingests land first
            async with worker.lock:
                result = await asyncio.to_thread(
                    session.start, request.get("start_time")
                )
            return ok_response(**result)
        if op == "flush":
            await worker.queue.join()
            # Flush is also a durability barrier: requested checkpoint
            # writes land before the response (backoff retries excluded).
            await self._writer.wait_idle(stream_id)
            return ok_response(
                clock=None if session.clock == float("-inf") else session.clock,
                events_applied=session.telemetry.events_applied,
                deferred_errors=worker.take_deferred_errors(),
            )
        if op == "factors":
            async with worker.lock:
                return ok_response(
                    **await asyncio.to_thread(session.factors)
                )
        if op == "fitness":
            async with worker.lock:
                return ok_response(
                    **await asyncio.to_thread(session.fitness)
                )
        if op == "anomalies":
            k = int(request.get("k", 20))
            async with worker.lock:
                return ok_response(
                    **await asyncio.to_thread(session.anomalies, k)
                )
        if op == "stats":
            async with worker.lock:
                return ok_response(**await asyncio.to_thread(session.stats))
        if op == "telemetry":
            async with worker.lock:
                payload = await asyncio.to_thread(session.telemetry_snapshot)
            payload["queue_depth"] = worker.queue.qsize()
            return ok_response(
                telemetry=payload,
                deferred_errors=list(worker.deferred_errors),
            )
        if op == "checkpoint":
            async with worker.lock:
                path = await asyncio.to_thread(
                    self.manager.checkpoint_stream, stream_id
                )
            return ok_response(path=None if path is None else str(path))
        if op == "drop_stream":
            await worker.queue.join()
            await worker.stop()
            self._workers.pop(stream_id, None)
            self._writer.forget(stream_id)
            await asyncio.to_thread(
                self.manager.drop_stream,
                stream_id,
                bool(request.get("delete_state", False)),
            )
            return ok_response(dropped=stream_id)
        raise ServiceError("bad_request", f"unknown op {op!r}")

    async def _op_create(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.service.config import StreamConfig

        stream_id = str(self._require(request, "stream"))
        config = StreamConfig.from_dict(self._require(request, "config"))
        session = self.manager.create_stream(stream_id, config)
        self._worker(stream_id)
        return ok_response(stream=stream_id, phase=session.phase)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _stream_health(self, stream_id: str) -> dict[str, Any]:
        """Liveness/readiness snapshot of one stream (lock-free on purpose:
        health must answer even while an apply is stalled under the lock)."""
        session = self.manager.get(stream_id)
        telemetry = session.telemetry
        worker = self._workers.get(stream_id)
        config = self.manager.config
        busy_since = worker.busy_since if worker is not None else None
        busy_seconds = (
            time.monotonic() - busy_since if busy_since is not None else None
        )
        threshold = config.watchdog_stall_seconds
        stalled = bool(worker is not None and worker.stalled) or (
            threshold > 0
            and busy_seconds is not None
            and busy_seconds >= threshold
        )
        checkpoint_stale = (
            config.checkpoint_events is not None
            and config.root_path is not None
            and telemetry.events_since_checkpoint
            >= 2 * config.checkpoint_events
        )
        degraded = telemetry.degraded or checkpoint_stale
        status = "stalled" if stalled else "degraded" if degraded else "ok"
        return {
            "stream": stream_id,
            "status": status,
            "phase": session.phase,
            "queue_depth": worker.queue.qsize() if worker is not None else 0,
            "deferred_errors": (
                len(worker.deferred_errors) if worker is not None else 0
            ),
            "degraded": telemetry.degraded,
            "last_checkpoint_error": telemetry.last_checkpoint_error,
            "checkpoint_failures": telemetry.checkpoint_failures,
            "checkpoint_age": telemetry.checkpoint_age,
            "checkpoint_stale": bool(checkpoint_stale),
            "events_since_checkpoint": telemetry.events_since_checkpoint,
            "apply_busy_seconds": busy_seconds,
            "stalled": stalled,
            "stalls_detected": telemetry.stalls_detected,
            "last_seq": session.last_seq,
        }

    def _op_health_service(self) -> dict[str, Any]:
        """Service-wide health: worst stream status wins."""
        rows = [
            self._stream_health(stream_id)
            for stream_id in self.manager.stream_ids
        ]
        degraded = [row["stream"] for row in rows if row["status"] == "degraded"]
        stalled = [row["stream"] for row in rows if row["status"] == "stalled"]
        status = "stalled" if stalled else "degraded" if degraded else "ok"
        payload: dict[str, Any] = {
            "status": status,
            "streams": {
                "total": len(rows),
                "ok": len(rows) - len(degraded) - len(stalled),
                "degraded": degraded,
                "stalled": stalled,
            },
        }
        if self.faults is not None:
            payload["faults"] = self.faults.report()
        return ok_response(**payload)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _accept_seq(
        self,
        worker: _StreamWorker,
        session,
        request: dict[str, Any],
    ) -> tuple[int | None, dict[str, Any] | None]:
        """Validate an optional ``seq``; returns ``(seq, duplicate_response)``.

        A ``seq`` at or below the applied high-water mark, or inside the
        recent-seq window (enqueued but not yet applied), is a duplicate:
        acknowledged without re-applying.  A ``seq`` below the highest one
        seen that is *not* a known duplicate is refused (``conflict``) —
        it would silently reorder the stream.
        """
        raw = request.get("seq")
        if raw is None:
            return None, None
        try:
            seq = int(raw)
        except (TypeError, ValueError):
            raise ServiceError(
                "bad_request", f"seq must be an integer, got {raw!r}"
            ) from None
        if seq < 1:
            raise ServiceError(
                "bad_request", f"seq must be >= 1, got {seq}"
            )
        if seq <= session.last_seq or seq in worker.seen_seqs:
            session.telemetry.duplicates_skipped += 1
            return seq, ok_response(
                duplicate=True,
                queued=0,
                depth=worker.queue.qsize(),
                seq=seq,
            )
        if seq < worker.max_seq_seen:
            raise ServiceError(
                "conflict",
                f"non-monotonic seq {seq} on stream "
                f"{worker.stream_id!r}: {worker.max_seq_seen} was already "
                "accepted",
            )
        return seq, None

    def _check_injected_overload(self, stream_id: str, session, op: str) -> None:
        if self.faults is None:
            return
        action = self.faults.check(
            "ingest.overload", stream=stream_id, op=op
        )
        if action is not None:
            session.telemetry.overload_rejections += 1
            raise ServiceError(
                "overloaded", f"{action.message}; retry after a flush"
            )

    def _op_ingest(
        self, stream_id: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        worker = self._worker(stream_id)
        session = self.manager.get(stream_id)
        records = parse_records(self._require(request, "records"))
        seq, duplicate = self._accept_seq(worker, session, request)
        if duplicate is not None:
            return duplicate
        self._check_injected_overload(stream_id, session, "ingest")
        try:
            worker.queue.put_nowait(("ingest", records, seq))
        except asyncio.QueueFull:
            session.telemetry.overload_rejections += 1
            raise ServiceError(
                "overloaded",
                f"stream {stream_id!r}'s ingest queue is full "
                f"({worker.queue.maxsize} chunks); retry after a flush",
            ) from None
        if seq is not None:
            worker.note_seq(seq)
        response = ok_response(
            queued=len(records), depth=worker.queue.qsize()
        )
        if seq is not None:
            response["seq"] = seq
            response["duplicate"] = False
        return response

    def _op_advance(
        self, stream_id: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        worker = self._worker(stream_id)
        session = self.manager.get(stream_id)
        to_time = float(self._require(request, "time"))
        seq, duplicate = self._accept_seq(worker, session, request)
        if duplicate is not None:
            return duplicate
        self._check_injected_overload(stream_id, session, "advance")
        try:
            worker.queue.put_nowait(("advance", to_time, seq))
        except asyncio.QueueFull:
            session.telemetry.overload_rejections += 1
            raise ServiceError(
                "overloaded",
                f"stream {stream_id!r}'s ingest queue is full "
                f"({worker.queue.maxsize} chunks); retry after a flush",
            ) from None
        if seq is not None:
            worker.note_seq(seq)
        response = ok_response(depth=worker.queue.qsize())
        if seq is not None:
            response["seq"] = seq
            response["duplicate"] = False
        return response


async def serve(
    manager: ServiceManager,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: "asyncio.Future | None" = None,
) -> None:
    """Start a server, announce its address, and run until shutdown."""
    server = StreamingServer(manager, host=host, port=port)
    address = await server.start()
    if ready is not None and not ready.done():
        ready.set_result(address)
    await server.serve_until_shutdown()
