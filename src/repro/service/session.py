"""One tenant stream: buffering, live factor maintenance, durable state.

A :class:`StreamSession` is the synchronous core behind one stream of the
multi-tenant service.  It has two phases:

``buffering``
    Records accumulate in a chronological buffer.  Nothing is decomposed
    yet — the stream needs an initial window before factors exist.
``live``
    :meth:`start` replays the buffer into a
    :class:`~repro.stream.processor.ContinuousStreamProcessor`, initialises
    the configured SliceNStitch variant from an ALS decomposition of the
    initial window, and from then on every ingest chunk is applied with
    :meth:`apply_chunk`: ``processor.extend`` + a batched drain up to the
    chunk's watermark, with every arrival scored by the stream's
    :class:`~repro.anomaly.detector.ZScoreDetector`
    (:func:`repro.anomaly.scoring.score_batch`).

Determinism contract
--------------------
A session's factor/detector state is a pure function of its config and the
*sequence of chunks* applied — wall-clock time never enters the state.  The
service applies one queued chunk at a time in arrival order, so N streams
ingesting concurrently produce states bit-identical to replaying each
stream's chunk sequence alone.

Sessions are not thread-safe: the async layer serialises all access to one
session behind a per-stream lock.

Durability: :meth:`save` persists a ``meta.json`` (identity, config, phase,
and — for buffering streams — the buffer itself) plus, for live streams, an
exact run checkpoint (window, scheduler, factors, RNG stream, detector
state, telemetry) under ``state/`` via the atomic checkpoint writer.
:meth:`load` rebuilds the session; a live stream resumes bit-exactly from
its last checkpoint.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.als.als import decompose
from repro.anomaly.detector import ZScoreDetector
from repro.anomaly.scoring import score_batch
from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.exceptions import (
    CheckpointError,
    ReproError,
    ServiceError,
)
from repro.service.config import StreamConfig
from repro.service.telemetry import StreamTelemetry
from repro.shard.defaults import resolve_shards, resolve_staleness
from repro.stream.checkpoint import (
    is_checkpoint,
    restore_run,
    sweep_stale_sibling_dirs,
)
from repro.stream.events import StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig

_META_FORMAT = "slicenstitch-service-stream"
_META_VERSION = 1
#: Subdirectory of a stream's state directory holding the run checkpoint.
_STATE_DIR = "state"

PHASE_BUFFERING = "buffering"
PHASE_LIVE = "live"


def _write_json_atomic(path: Path, payload: dict[str, Any]) -> None:
    """Write JSON via a temp file + rename so readers never see a torn file."""
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    temp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    temp.replace(path)


class StreamSession:
    """Synchronous state machine of one tenant stream."""

    def __init__(self, stream_id: str, config: StreamConfig) -> None:
        self.stream_id = str(stream_id)
        self.config = config
        self.telemetry = StreamTelemetry()
        self.phase = PHASE_BUFFERING
        self._buffer: list[StreamRecord] = []
        self._processor: ContinuousStreamProcessor | None = None
        self._model = None
        self._detector = ZScoreDetector(warmup=config.detector_warmup)
        #: Logical stream time: the latest instant whose events have been
        #: applied (or, while buffering, the newest buffered record's time).
        #: Ingests must not go backwards past it.
        self.clock = float("-inf")
        #: High-water mark of *applied* idempotent ingest sequence numbers
        #: (0 = none yet).  Persisted in checkpoints, so after a crash the
        #: mark rolls back with the state and retried chunks re-apply.
        self.last_seq = 0

    # ------------------------------------------------------------------
    # Phase and identity
    # ------------------------------------------------------------------
    @property
    def is_live(self) -> bool:
        """True once :meth:`start` has run."""
        return self.phase == PHASE_LIVE

    @property
    def window_config(self) -> WindowConfig:
        """Window geometry derived from the stream config."""
        return WindowConfig(
            mode_sizes=self.config.mode_sizes,
            window_length=self.config.window_length,
            period=self.config.period,
        )

    def _sns_config(self) -> SNSConfig:
        # Sharding knobs resolve at model-construction time (explicit
        # per-stream value → `repro serve --shards/--staleness` process
        # default → environment → exact path) and are pinned into the
        # SNSConfig, so checkpoints carry the stream's actual mode.
        return SNSConfig(
            rank=self.config.rank,
            theta=self.config.theta,
            eta=self.config.eta,
            regularization=self.config.regularization,
            nonnegative=self.config.nonnegative,
            seed=self.config.seed,
            sampling=self.config.sampling,
            backend=self.config.backend,
            shards=resolve_shards(self.config.shards),
            staleness=resolve_staleness(self.config.staleness),
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, records: Sequence[StreamRecord]) -> int:
        """Accept a chunk of chronologically ordered records.

        Buffering: records are validated and appended to the buffer.
        Live: the chunk is applied immediately (extend + drain + score).
        Returns the number of records accepted.
        """
        records = list(records)
        if not records:
            return 0
        if self.is_live:
            return self.apply_chunk(records)
        self._validate_chunk(records)
        self._buffer.extend(records)
        self.clock = records[-1].time
        self.telemetry.records_ingested += len(records)
        return len(records)

    def _validate_chunk(self, records: Sequence[StreamRecord]) -> None:
        n_categorical = len(self.config.mode_sizes)
        previous = self.clock
        for record in records:
            if len(record.indices) != n_categorical:
                raise ServiceError(
                    "bad_request",
                    f"record {record.indices} has {len(record.indices)} "
                    f"categorical indices; stream {self.stream_id!r} has "
                    f"{n_categorical}",
                )
            for mode, (index, size) in enumerate(
                zip(record.indices, self.config.mode_sizes)
            ):
                if not 0 <= index < size:
                    raise ServiceError(
                        "bad_request",
                        f"record index {index} exceeds size {size} of mode "
                        f"{mode} on stream {self.stream_id!r}",
                    )
            if record.time < previous:
                raise ServiceError(
                    "conflict",
                    f"record at time {record.time} is behind stream "
                    f"{self.stream_id!r}'s clock {previous}; feed records "
                    "chronologically",
                )
            previous = record.time

    def apply_chunk(self, records: Sequence[StreamRecord]) -> int:
        """Apply one chunk to a live stream: extend, drain, score.

        One chunk is the unit of atomicity: the caller (the async layer)
        holds the stream lock across this call, so queries observe either
        the pre-chunk or the post-chunk state, never a half-applied one.
        """
        if not self.is_live:
            raise ServiceError(
                "conflict",
                f"stream {self.stream_id!r} is still buffering; start it "
                "before applying chunks",
            )
        records = list(records)
        if not records:
            return 0
        self._validate_chunk(records)
        processor = self._processor
        assert processor is not None
        started = time.perf_counter()
        try:
            added = processor.extend(records)
        except ReproError as error:
            raise ServiceError("bad_request", str(error)) from error
        n_events, n_batches = self._drain(processor.ingest_horizon)
        self.clock = max(self.clock, processor.ingest_horizon)
        self.telemetry.record_apply(
            n_records=added,
            n_events=n_events,
            n_batches=n_batches,
            seconds=time.perf_counter() - started,
        )
        return added

    def advance(self, to_time: float) -> int:
        """Advance stream time without new data (shifts/expiries fire).

        Lets a tenant with a quiet stream age its window forward; after
        advancing, records earlier than ``to_time`` are refused (their
        arrival would land in the wrong tensor unit).
        Returns the number of events applied.
        """
        to_time = float(to_time)
        if not self.is_live:
            raise ServiceError(
                "conflict",
                f"stream {self.stream_id!r} is still buffering; start it "
                "before advancing",
            )
        if to_time < self.clock:
            raise ServiceError(
                "conflict",
                f"cannot advance stream {self.stream_id!r} to {to_time}: "
                f"its clock is already at {self.clock}",
            )
        started = time.perf_counter()
        n_events, n_batches = self._drain(to_time)
        self.clock = to_time
        self.telemetry.record_apply(
            n_records=0,
            n_events=n_events,
            n_batches=n_batches,
            seconds=time.perf_counter() - started,
        )
        return n_events

    def _drain(self, end_time: float) -> tuple[int, int]:
        """Apply every pending event up to ``end_time``, scoring arrivals."""
        processor = self._processor
        assert processor is not None and self._model is not None
        n_events = 0
        n_batches = 0
        for batch in processor.iter_batches(
            end_time=end_time, batch_window=self.config.batch_window
        ):
            score_batch(self._model, batch, self._detector)
            n_events += batch.n_events
            n_batches += 1
        return n_events, n_batches

    # ------------------------------------------------------------------
    # Going live
    # ------------------------------------------------------------------
    def start(self, start_time: float | None = None) -> dict[str, Any]:
        """Build the initial window from the buffer and initialise factors.

        ``start_time`` defaults to ``first record + W * T`` (a fully
        populated initial window).  Buffered records after ``start_time``
        are replayed as live events immediately, so the session comes up
        caught-up to its newest buffered record.
        """
        if self.is_live:
            raise ServiceError(
                "conflict", f"stream {self.stream_id!r} is already live"
            )
        if not self._buffer:
            raise ServiceError(
                "conflict",
                f"stream {self.stream_id!r} has no buffered records to "
                "build an initial window from",
            )
        try:
            stream = MultiAspectStream(
                self._buffer, mode_sizes=self.config.mode_sizes
            )
            processor = ContinuousStreamProcessor(
                stream, self.window_config, start_time=start_time
            )
            initial = decompose(
                processor.window.tensor,
                rank=self.config.rank,
                n_iterations=self.config.als_iterations,
                seed=self.config.seed,
            ).decomposition
            model = create_algorithm(self.config.method, self._sns_config())
            model.initialize(processor.window, initial)
        except ServiceError:
            raise
        except ReproError as error:
            raise ServiceError("bad_request", str(error)) from error
        self._processor = processor
        self._model = model
        self._buffer = []
        self.phase = PHASE_LIVE
        self.clock = processor.start_time
        started = time.perf_counter()
        n_events, n_batches = self._drain(processor.ingest_horizon)
        self.clock = max(self.clock, processor.ingest_horizon)
        self.telemetry.record_apply(
            n_records=0,
            n_events=n_events,
            n_batches=n_batches,
            seconds=time.perf_counter() - started,
        )
        return {
            "start_time": processor.start_time,
            "initial_events": n_events,
            "clock": self.clock,
        }

    # ------------------------------------------------------------------
    # Queries (read-only; callers hold the stream lock)
    # ------------------------------------------------------------------
    def _require_live(self, what: str):
        if not self.is_live:
            raise ServiceError(
                "conflict",
                f"stream {self.stream_id!r} is still buffering; {what} "
                "is only available on live streams",
            )
        return self._model

    def factors(self) -> dict[str, Any]:
        """Current factor matrices (dense lists) of the live decomposition."""
        model = self._require_live("factors")
        started = time.perf_counter()
        payload = {
            "rank": self.config.rank,
            "factors": [factor.tolist() for factor in model.factors],
            "n_updates": model.n_updates,
            "clock": self.clock,
        }
        self.telemetry.record_query(time.perf_counter() - started)
        return payload

    def fitness(self) -> dict[str, Any]:
        """Current window fitness of the live decomposition."""
        model = self._require_live("fitness")
        started = time.perf_counter()
        payload = {"fitness": float(model.fitness()), "clock": self.clock}
        self.telemetry.record_query(time.perf_counter() - started)
        return payload

    def anomalies(self, k: int = 20) -> dict[str, Any]:
        """Top-``k`` anomaly scoreboard of the live stream."""
        self._require_live("anomalies")
        started = time.perf_counter()
        payload = {
            "k": int(k),
            "scored": self._detector.count,
            "anomalies": [
                {
                    "coordinate": list(score.coordinate),
                    "z_score": score.z_score,
                    "error": score.error,
                    "event_time": score.event_time,
                    "detection_time": score.detection_time,
                }
                for score in self._detector.top_k(k)
            ],
            "clock": self.clock,
        }
        self.telemetry.record_query(time.perf_counter() - started)
        return payload

    def stats(self) -> dict[str, Any]:
        """Cheap structural snapshot (no factor math)."""
        started = time.perf_counter()
        payload: dict[str, Any] = {
            "stream": self.stream_id,
            "phase": self.phase,
            "method": self.config.method,
            "rank": self.config.rank,
            "mode_sizes": list(self.config.mode_sizes),
            "window_length": self.config.window_length,
            "period": self.config.period,
            "clock": None if self.clock == float("-inf") else self.clock,
            "buffered_records": len(self._buffer),
        }
        if self.is_live:
            processor = self._processor
            assert processor is not None
            payload.update(
                {
                    "window_nnz": processor.window.tensor.nnz,
                    "pending_records": processor.n_pending_records,
                    "events_applied": processor.n_events_emitted,
                    "n_updates": self._model.n_updates,
                    "kernel_backend": self._model.kernel_backend,
                    "shards": self._model.config.shards,
                    "staleness": self._model.config.staleness,
                }
            )
        self.telemetry.record_query(time.perf_counter() - started)
        return payload

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Lifetime telemetry counters of this stream."""
        payload = self.telemetry.to_dict()
        payload["kernel_backend"] = (
            self._model.kernel_backend if self.is_live else None
        )
        payload["shards"] = self._model.config.shards if self.is_live else None
        payload["staleness"] = (
            self._model.config.staleness if self.is_live else None
        )
        return payload

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist the session under ``directory`` (one dir per stream).

        Live streams write an exact run checkpoint (atomic directory swap);
        buffering streams persist their buffer inside ``meta.json``.  Either
        way a killed-and-restarted service rebuilds the session with
        :meth:`load`.
        """
        directory = Path(directory)
        meta: dict[str, Any] = {
            "format": _META_FORMAT,
            "version": _META_VERSION,
            "stream_id": self.stream_id,
            "phase": self.phase,
            "config": self.config.to_dict(),
        }
        # Count the checkpoint first so the persisted counters include it (a
        # restored stream then reports the write that produced its state).
        # On failure the bump is rolled back and the failure recorded
        # instead: the stream is then *degraded*, never half-counted.
        rollback = (
            self.telemetry.checkpoints_written,
            self.telemetry.events_since_checkpoint,
            self.telemetry.last_checkpoint_time,
            self.telemetry.last_checkpoint_monotonic,
            self.telemetry.checkpoint_failure_streak,
            self.telemetry.last_checkpoint_error,
        )
        self.telemetry.record_checkpoint()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            if self.is_live:
                processor = self._processor
                assert processor is not None
                processor.save_checkpoint(
                    directory / _STATE_DIR,
                    model=self._model,
                    extra={
                        "clock": self.clock,
                        "last_seq": self.last_seq,
                        "detector": self._detector.state_dict(),
                        "telemetry": self.telemetry.to_dict(),
                    },
                )
            else:
                meta["clock"] = (
                    None if self.clock == float("-inf") else self.clock
                )
                meta["last_seq"] = self.last_seq
                meta["buffer"] = [
                    [list(record.indices), record.value, record.time]
                    for record in self._buffer
                ]
                meta["telemetry"] = self.telemetry.to_dict()
            _write_json_atomic(directory / "meta.json", meta)
        except BaseException as error:
            (
                self.telemetry.checkpoints_written,
                self.telemetry.events_since_checkpoint,
                self.telemetry.last_checkpoint_time,
                self.telemetry.last_checkpoint_monotonic,
                self.telemetry.checkpoint_failure_streak,
                self.telemetry.last_checkpoint_error,
            ) = rollback
            if isinstance(error, Exception):
                self.telemetry.record_checkpoint_failure(
                    f"{type(error).__name__}: {error}"
                )
            raise
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "StreamSession":
        """Rebuild a session saved by :meth:`save`.

        Live streams resume bit-exactly from their run checkpoint (stale
        ``*.tmp`` / ``*.old`` siblings from a mid-write kill are swept or
        salvaged first).  Raises :class:`CheckpointError` on damaged state.
        """
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.is_file():
            raise CheckpointError(
                f"{directory} has no meta.json; not a service stream directory"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"stream metadata at {meta_path} is unreadable: {error}"
            ) from error
        if not isinstance(meta, dict) or meta.get("format") != _META_FORMAT:
            raise CheckpointError(
                f"{meta_path} is not a service stream metadata file"
            )
        if meta.get("version") != _META_VERSION:
            raise CheckpointError(
                f"unsupported service metadata version {meta.get('version')!r} "
                f"at {meta_path}"
            )
        try:
            config = StreamConfig.from_dict(meta["config"])
            stream_id = str(meta["stream_id"])
            phase = meta["phase"]
        except (KeyError, TypeError) as error:
            raise CheckpointError(
                f"stream metadata at {meta_path} is missing fields: {error}"
            ) from error
        session = cls(stream_id, config)
        if phase == PHASE_BUFFERING:
            try:
                session._buffer = [
                    StreamRecord(
                        indices=tuple(int(i) for i in indices),
                        value=float(value),
                        time=float(record_time),
                    )
                    for indices, value, record_time in meta.get("buffer", [])
                ]
            except (TypeError, ValueError, ReproError) as error:
                raise CheckpointError(
                    f"buffered records at {meta_path} are unreadable: {error}"
                ) from error
            clock = meta.get("clock")
            session.clock = float("-inf") if clock is None else float(clock)
            session.last_seq = int(meta.get("last_seq", 0) or 0)
            session.telemetry = StreamTelemetry.from_dict(
                meta.get("telemetry", {})
            )
            return session
        if phase != PHASE_LIVE:
            raise CheckpointError(
                f"unknown stream phase {phase!r} at {meta_path}"
            )
        state_dir = directory / _STATE_DIR
        sweep_stale_sibling_dirs(state_dir)
        if not is_checkpoint(state_dir):
            raise CheckpointError(
                f"live stream {stream_id!r} has no run checkpoint at {state_dir}"
            )
        processor, model, extra = restore_run(state_dir)
        if model is None:
            raise CheckpointError(
                f"checkpoint at {state_dir} holds no model state"
            )
        extra = extra if isinstance(extra, Mapping) else {}
        session._processor = processor
        session._model = model
        session.phase = PHASE_LIVE
        clock = extra.get("clock")
        session.clock = (
            float(clock) if clock is not None else processor.ingest_horizon
        )
        session.last_seq = int(extra.get("last_seq", 0) or 0)
        if "detector" in extra:
            session._detector = ZScoreDetector.from_state(extra["detector"])
        else:
            session._detector = ZScoreDetector(warmup=config.detector_warmup)
        session.telemetry = StreamTelemetry.from_dict(
            extra.get("telemetry", {}) or {}
        )
        return session
