"""Per-stream telemetry counters.

Every mutation of a stream bumps counters here; the ``telemetry`` wire op
returns them verbatim.  Counters are plain numbers (JSON-serialisable), ride
along in checkpoint ``extra`` payloads, and survive restarts — a recovered
stream reports lifetime totals, not totals-since-restart.

Timings are wall-clock observability data, *not* part of the deterministic
stream state: two runs with identical factor state may report different
``apply_seconds``.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Mapping
from typing import Any


@dataclasses.dataclass(slots=True)
class StreamTelemetry:
    """Lifetime counters and stage timings of one stream."""

    #: Stream records accepted by ``ingest`` (buffered or applied).
    records_ingested: int = 0
    #: Ingest chunks applied to the live processor.
    chunks_applied: int = 0
    #: Window events (arrival/shift/expiry) applied.
    events_applied: int = 0
    #: Delta batches handed to the model.
    batches_applied: int = 0
    #: Read queries served (factors / fitness / anomalies / stats).
    queries_served: int = 0
    #: Ingest requests refused because the stream's queue was full.
    overload_rejections: int = 0
    #: Checkpoints written for this stream.
    checkpoints_written: int = 0
    #: Events applied since the last checkpoint (drives count-triggered saves).
    events_since_checkpoint: int = 0
    #: Unix time of the last checkpoint write (0.0 = never).  Diagnostic
    #: only — ``checkpoint_age`` prefers the monotonic stamp below.
    last_checkpoint_time: float = 0.0
    #: ``time.monotonic()`` stamp of the last checkpoint written *by this
    #: process* (0.0 = none yet).  Never persisted: monotonic clocks are
    #: process-local, so a restored stream falls back to wall-clock age.
    last_checkpoint_monotonic: float = 0.0
    #: Checkpoint write attempts that failed (lifetime).
    checkpoint_failures: int = 0
    #: Consecutive failed checkpoint attempts since the last success
    #: (drives the background writer's retry backoff).
    checkpoint_failure_streak: int = 0
    #: Human-readable cause of the most recent checkpoint failure, cleared
    #: by the next successful write.  Non-``None`` == the stream is degraded.
    last_checkpoint_error: str | None = None
    #: Duplicate ingest/advance requests skipped by seq-based dedup.
    duplicates_skipped: int = 0
    #: Stall episodes flagged by the worker watchdog.
    stalls_detected: int = 0
    #: Cumulative seconds spent applying chunks (extend + drain + score).
    apply_seconds: float = 0.0
    #: Cumulative seconds spent serving read queries.
    query_seconds: float = 0.0

    def record_apply(
        self, n_records: int, n_events: int, n_batches: int, seconds: float
    ) -> None:
        """Account one applied ingest chunk."""
        self.chunks_applied += 1
        self.records_ingested += int(n_records)
        self.events_applied += int(n_events)
        self.batches_applied += int(n_batches)
        self.events_since_checkpoint += int(n_events)
        self.apply_seconds += float(seconds)

    def record_query(self, seconds: float) -> None:
        """Account one served read query."""
        self.queries_served += 1
        self.query_seconds += float(seconds)

    def record_checkpoint(self) -> None:
        """Account one written checkpoint and reset the since-counter."""
        self.checkpoints_written += 1
        self.events_since_checkpoint = 0
        # Persisted diagnostic timestamp; in-process staleness math uses
        # the monotonic stamp below, not this.
        # repro: allow[wall-clock] persisted diagnostic timestamp
        self.last_checkpoint_time = time.time()
        self.last_checkpoint_monotonic = time.monotonic()
        self.checkpoint_failure_streak = 0
        self.last_checkpoint_error = None

    def record_checkpoint_failure(self, message: str) -> None:
        """Account one failed checkpoint attempt; marks the stream degraded."""
        self.checkpoint_failures += 1
        self.checkpoint_failure_streak += 1
        self.last_checkpoint_error = str(message)

    @property
    def degraded(self) -> bool:
        """True while the last checkpoint attempt failed (durability at risk:
        ingestion keeps running, but a crash would lose more than expected)."""
        return self.last_checkpoint_error is not None

    @property
    def checkpoint_age(self) -> float | None:
        """Seconds since the last checkpoint, or ``None`` if never written.

        Checkpoints written by this process are aged with the monotonic
        clock, immune to wall-clock steps (an NTP jump must not flip a
        healthy stream into the stale alarm).  A freshly recovered stream
        has no monotonic stamp yet, so its age falls back to the persisted
        wall-clock timestamp, clamped at zero.
        """
        if self.last_checkpoint_monotonic > 0.0:
            return max(time.monotonic() - self.last_checkpoint_monotonic, 0.0)
        if self.last_checkpoint_time <= 0.0:
            return None
        # The monotonic stamp does not survive a restart; the persisted
        # wall timestamp is the only age signal a recovered stream has.
        # repro: allow[wall-clock] cross-restart staleness fallback
        return max(time.time() - self.last_checkpoint_time, 0.0)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (includes the derived fields)."""
        payload = dataclasses.asdict(self)
        # Monotonic stamps are meaningless outside this process.
        payload.pop("last_checkpoint_monotonic", None)
        payload["checkpoint_age"] = self.checkpoint_age
        payload["degraded"] = self.degraded
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamTelemetry":
        """Rebuild from a saved snapshot, ignoring derived/unknown keys."""
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: payload[key] for key in known if key in payload})
