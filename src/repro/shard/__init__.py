"""Shard-aware update plans: relaxed-consistency sharded batch execution.

The :mod:`repro.shard` subsystem turns a model's batched update into an
explicit **plan → execute → merge** pipeline:

- :func:`plan_batch` / :class:`ShardPlan` partition a batch's events into
  shared-nothing shards by categorical factor row (stage 1);
- :class:`ShardedExecutor` runs shard-local kernel work against an immutable
  factor snapshot and merges results deterministically (stages 2-3), with a
  ``staleness`` knob bounding how many batches may elapse between
  synchronizations;
- :func:`resolve_shards` / :func:`resolve_staleness` /
  :func:`set_default_sharding` implement the process-wide default contract
  used by the CLI entry points.

The exact update path is the ``shards=1``, ``staleness=0`` special case and
stays bit-for-bit unchanged.
"""

from repro.shard.defaults import (
    SHARDS_ENV,
    STALENESS_ENV,
    resolve_shards,
    resolve_staleness,
    set_default_sharding,
)
from repro.shard.executor import POOL_ENV, ShardedExecutor, execute_shard
from repro.shard.plan import ShardPlan, plan_batch

__all__ = [
    "POOL_ENV",
    "SHARDS_ENV",
    "STALENESS_ENV",
    "ShardPlan",
    "ShardedExecutor",
    "execute_shard",
    "plan_batch",
    "resolve_shards",
    "resolve_staleness",
    "set_default_sharding",
]
