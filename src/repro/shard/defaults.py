"""Process-wide sharding defaults (the ``repro serve --shards`` knob).

Mirrors the kernel-backend selection contract
(:func:`repro.kernels.registry.set_default_backend`): an explicit value wins,
then the process-wide default set by a CLI entry point, then the
``REPRO_SHARDS`` / ``REPRO_STALENESS`` environment variables, then the exact
path (1 shard, 0 staleness).  The resolved values are *pinned into each
model's* :class:`~repro.core.base.SNSConfig` at construction time, so a
checkpointed run never depends on the environment it is restored under.
"""

from __future__ import annotations

import os

from repro.exceptions import ConfigurationError

_DEFAULT_SHARDS: int | None = None
_DEFAULT_STALENESS: int | None = None

#: Environment variables consulted when no explicit/process default is set.
SHARDS_ENV = "REPRO_SHARDS"
STALENESS_ENV = "REPRO_STALENESS"


def _validated_shards(value: object, origin: str) -> int:
    try:
        shards = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ConfigurationError(f"{origin} must be an integer, got {value!r}") from None
    if shards < 1:
        raise ConfigurationError(f"{origin} must be >= 1, got {shards}")
    return shards


def _validated_staleness(value: object, origin: str) -> int:
    try:
        staleness = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ConfigurationError(f"{origin} must be an integer, got {value!r}") from None
    if staleness < 0:
        raise ConfigurationError(f"{origin} must be >= 0, got {staleness}")
    return staleness


def set_default_sharding(
    shards: int | None = None, staleness: int | None = None
) -> None:
    """Set the process-wide sharding defaults (``None`` clears one).

    Used by ``repro serve --shards/--staleness`` so every stream created
    without an explicit per-stream setting inherits the server's mode.
    """
    global _DEFAULT_SHARDS, _DEFAULT_STALENESS
    _DEFAULT_SHARDS = (
        None if shards is None else _validated_shards(shards, "default shards")
    )
    _DEFAULT_STALENESS = (
        None
        if staleness is None
        else _validated_staleness(staleness, "default staleness")
    )


def resolve_shards(explicit: int | None = None) -> int:
    """Resolve a shard count: explicit → process default → env → 1."""
    if explicit is not None:
        return _validated_shards(explicit, "shards")
    if _DEFAULT_SHARDS is not None:
        return _DEFAULT_SHARDS
    env = os.environ.get(SHARDS_ENV)
    if env:
        return _validated_shards(env, SHARDS_ENV)
    return 1


def resolve_staleness(explicit: int | None = None) -> int:
    """Resolve a staleness bound: explicit → process default → env → 0."""
    if explicit is not None:
        return _validated_staleness(explicit, "staleness")
    if _DEFAULT_STALENESS is not None:
        return _DEFAULT_STALENESS
    env = os.environ.get(STALENESS_ENV)
    if env:
        return _validated_staleness(env, STALENESS_ENV)
    return 0
