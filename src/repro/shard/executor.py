"""Stages 2-3 of the sharded pipeline: execute shard tasks, merge results.

:class:`ShardedExecutor` runs a model's ``update_batch`` as an explicit
**plan → execute → merge** pipeline with relaxed consistency:

1. **Plan** (:func:`repro.shard.plan.plan_batch`): the batch's events are
   partitioned into shared-nothing shards by categorical ``(mode, index)``
   keys.  The whole batch is applied to the window up front — the first
   relaxation: row updates observe the batch-final window, not the per-event
   interleaving of the exact path.
2. **Execute** (:func:`execute_shard`, a pure module-level function safe for
   thread *and* process pools): each shard updates its categorical factor
   rows against a shared immutable *snapshot* of the factors — kernel calls
   only (``mttkrp_rows``, the fused ``sampled_residual``, one batched
   ``solve_regularized`` per mode, or the shared clipped coordinate-descent
   sweep) with no access to live model state.  Workers receive pre-gathered
   slice arrays and pre-drawn samples, so they hold no locks, read no shared
   mutable state, and draw no randomness of their own.
3. **Merge** (serial, in shard-id order): shard row results are committed to
   the live factors with rank-one Gram maintenance, the per-shard time-row
   contributions are summed and applied per time index in ascending order,
   and counters advance.  Serial deterministic merging is what makes the
   sharded path replayable: thread scheduling can reorder *work*, never
   *effects*.

The ``staleness`` knob bounds how many batches may elapse between snapshot
refreshes (Gram/λ synchronizations): ``0`` re-snapshots every batch, ``s``
lets shards work against factors up to ``s`` batches old.  At every refresh
the live Gram matrices are also recomputed exactly from the factors, so
rank-one float drift cannot accumulate across sync intervals.

Sampling determinism: rows whose slice degree exceeds ``θ`` draw their
coordinates in the dispatch stage from a *stateless* per-(batch, shard)
generator — ``np.random.default_rng((seed, batch_counter, shard_id))`` — so
results are independent of pool type and thread schedule, and restoring a
checkpoint mid-interval replays the exact draw sequence.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.rowmath import clipped_coordinate_descent
from repro.core.sampling import SliceSampler
from repro.exceptions import ConfigurationError
from repro.kernels.api import empty_overrides
from repro.kernels.registry import resolve_backend
from repro.shard.plan import ShardPlan, plan_batch
from repro.stream.deltas import DeltaBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.base import ContinuousCPD

#: Environment variable selecting the worker pool implementation.
POOL_ENV = "REPRO_SHARD_POOL"
POOL_KINDS = ("thread", "serial", "process")


def _resolve_pool(explicit: str | None) -> str:
    kind = explicit if explicit is not None else os.environ.get(POOL_ENV, "thread")
    if kind not in POOL_KINDS:
        raise ConfigurationError(
            f"shard pool must be one of {POOL_KINDS}, got {kind!r}"
        )
    return kind


@dataclasses.dataclass(slots=True)
class ShardSpec:
    """Per-model constants every shard task is executed under."""

    rank: int
    time_mode: int
    clipped: bool
    sampled: bool
    theta: int
    eta: float
    lower: float
    ridge: float
    ridge_matrix: np.ndarray | None
    backend: str


@dataclasses.dataclass(slots=True)
class ShardSnapshot:
    """Immutable factor/Gram state every shard reads during one interval."""

    factors: list[np.ndarray]
    grams: list[np.ndarray]
    hadamards: list[np.ndarray]


@dataclasses.dataclass(slots=True)
class ShardRowTask:
    """One categorical factor row owned by a shard, with pre-gathered data."""

    mode: int
    index: int
    slice_indices: np.ndarray  # (deg, M) int64 — the row's Omega slice
    slice_values: np.ndarray  # (deg,) float64
    samples: np.ndarray | None  # (n, M) int64, sampled rows only
    observed: np.ndarray | None  # (n,) float64, window values at samples


@dataclasses.dataclass(slots=True)
class ShardTask:
    """Everything one shard needs: its rows plus its events' entry changes."""

    shard_id: int
    rows: list[ShardRowTask]
    entry_coords: np.ndarray  # (nnz, M) int64
    entry_values: np.ndarray  # (nnz,) float64


@dataclasses.dataclass(slots=True)
class ShardResult:
    """A shard's proposed effects, applied by the serial merge stage."""

    shard_id: int
    row_updates: list[tuple[int, int, np.ndarray]]
    time_contrib: dict[int, np.ndarray]


def _hadamards(grams: list[np.ndarray]) -> list[np.ndarray]:
    """Per-mode ``*_{n != mode} grams[n]`` products."""
    order = len(grams)
    result = []
    for mode in range(order):
        product: np.ndarray | None = None
        for other in range(order):
            if other == mode:
                continue
            product = grams[other].copy() if product is None else product * grams[other]
        result.append(product)
    return result


def _row_numerator(
    row: ShardRowTask, snapshot: ShardSnapshot, spec: ShardSpec, kernels: Any
) -> np.ndarray:
    """Data term of one shard-local row update, against the snapshot.

    Low-degree rows (and every row of the non-sampled variants) use the
    exact MTTKRP over the row's slice (Eq. 12 / Eq. 21 with the snapshot
    factors); sampled rows use the Eq. 16 / Eq. 23 structure with the
    snapshot playing the role of ``A_prev``: ``a_snap @ H_snap`` plus the
    fused sampled residual of the window against the snapshot
    reconstruction.  The window already contains the whole batch, so the
    event's own entries need no special casing — any sample landing on them
    contributes its residual naturally.
    """
    factors = snapshot.factors
    if row.samples is None:
        return kernels.mttkrp_rows(row.slice_indices, row.slice_values, factors, row.mode)
    snap_row = factors[row.mode][row.index, :]
    if row.samples.shape[0]:
        override_modes, override_indices, override_rows = empty_overrides(spec.rank)
        residual = kernels.sampled_residual(
            row.samples,
            row.observed,
            factors,
            row.mode,
            snap_row,
            override_modes,
            override_indices,
            override_rows,
        )
    else:
        residual = np.zeros(spec.rank, dtype=np.float64)
    return snap_row @ snapshot.hadamards[row.mode] + residual


def _time_contributions(
    task: ShardTask, snapshot: ShardSnapshot, spec: ShardSpec
) -> dict[int, np.ndarray]:
    """Per-time-index ``sum_J Δx_J * prod_{n != time} a_snap(n)_{j_n}`` terms.

    The shard's share of the Eq. 9 delta row for every time index its events
    touched, evaluated against the snapshot rows; the merge stage sums these
    across shards and applies one time-row update per index.
    """
    contrib: dict[int, np.ndarray] = {}
    coords = task.entry_coords
    if coords.shape[0] == 0:
        return contrib
    factors = snapshot.factors
    products = np.ones((coords.shape[0], spec.rank), dtype=np.float64)
    for mode in range(spec.time_mode):
        products *= factors[mode][coords[:, mode], :]
    weighted = products * task.entry_values[:, None]
    units = coords[:, spec.time_mode]
    for unit in np.unique(units):  # ascending: deterministic accumulation
        contrib[int(unit)] = weighted[units == unit].sum(axis=0)
    return contrib


def execute_shard(
    task: ShardTask, snapshot: ShardSnapshot, spec: ShardSpec
) -> ShardResult:
    """Execute one shard's row updates — pure function of its arguments.

    Reads only the immutable snapshot and the task's pre-gathered arrays;
    returns proposed row values and time contributions without touching any
    live state.  Safe to run on any worker of any pool, in any order.
    """
    kernels = resolve_backend(spec.backend)
    factors = snapshot.factors
    row_updates: list[tuple[int, int, np.ndarray]] = []
    if spec.clipped:
        for row in task.rows:
            numerator = _row_numerator(row, snapshot, spec, kernels)
            new_row = clipped_coordinate_descent(
                factors[row.mode][row.index, :],
                numerator,
                snapshot.hadamards[row.mode],
                spec.eta,
                spec.lower,
                spec.ridge,
            )
            row_updates.append((row.mode, row.index, new_row))
    else:
        # Least-squares variants: one batched regularized solve per mode
        # over all of the shard's rows of that mode.
        solve_scratch = np.empty((spec.rank, spec.rank))
        by_mode: dict[int, list[ShardRowTask]] = {}
        for row in task.rows:
            by_mode.setdefault(row.mode, []).append(row)
        solved: dict[tuple[int, int], np.ndarray] = {}
        for mode, rows in by_mode.items():
            rhs = np.empty((len(rows), spec.rank), dtype=np.float64)
            for position, row in enumerate(rows):
                rhs[position, :] = _row_numerator(row, snapshot, spec, kernels)
            new_rows = kernels.solve_regularized(
                snapshot.hadamards[mode], rhs, spec.ridge_matrix, solve_scratch
            )
            for row, new_row in zip(rows, new_rows):
                solved[(row.mode, row.index)] = np.asarray(new_row, dtype=np.float64)
        for row in task.rows:
            row_updates.append((row.mode, row.index, solved[(row.mode, row.index)]))
    return ShardResult(
        shard_id=task.shard_id,
        row_updates=row_updates,
        time_contrib=_time_contributions(task, snapshot, spec),
    )


class ShardedExecutor:
    """Relaxed-consistency sharded ``update_batch`` for one model.

    Attached by :meth:`repro.core.base.ContinuousCPD._attach_sharded` when
    ``config.shards > 1`` or ``config.staleness > 0``; holds the batch
    counter, the shared snapshot, and the worker pool.  The pool kind
    defaults to threads (the kernels release the GIL under the numba
    backend; the numpy reference spends its time in BLAS which mostly does
    too) and can be forced with ``REPRO_SHARD_POOL=serial|thread|process``
    — results are bit-identical across pool kinds by construction.
    """

    def __init__(self, model: "ContinuousCPD", pool: str | None = None) -> None:
        config = model.config
        self._model = model
        self._n_shards = int(config.shards)
        self._staleness = int(config.staleness)
        self._seed = int(config.seed or 0)
        self._pool_kind = _resolve_pool(pool)
        self._batch_counter = 0
        self._snapshot: ShardSnapshot | None = None
        self._pool: Any | None = None
        self._sampler = SliceSampler(model.window.shape) if model.shard_sampled else None
        eta = float(config.eta)
        self._spec = ShardSpec(
            rank=int(config.rank),
            time_mode=model.time_mode,
            clipped=bool(model.shard_clipped),
            sampled=bool(model.shard_sampled),
            theta=int(config.theta),
            eta=eta,
            lower=0.0 if config.nonnegative else -eta,
            ridge=float(config.regularization),
            ridge_matrix=(
                float(config.regularization) * np.eye(int(config.rank))
                if config.regularization > 0
                else None
            ),
            backend=model.kernel_backend,
        )

    # ------------------------------------------------------------------
    # Introspection (telemetry / tests)
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Configured shard count."""
        return self._n_shards

    @property
    def staleness(self) -> int:
        """Configured staleness bound (batches between synchronizations)."""
        return self._staleness

    @property
    def batch_counter(self) -> int:
        """Number of batches executed through the sharded pipeline."""
        return self._batch_counter

    @property
    def pool_kind(self) -> str:
        """Worker pool implementation in use."""
        return self._pool_kind

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------
    def update_batch(self, batch: DeltaBatch) -> None:
        """Run one batch through plan → execute → merge."""
        model = self._model
        model.window.apply_batch(batch)
        if self._snapshot is None or self._batch_counter % (self._staleness + 1) == 0:
            self._refresh_snapshot()
        plan = plan_batch(batch, self._n_shards)
        tasks = self._build_tasks(batch, plan)
        results = self._execute(tasks)
        self._merge(results)
        model._n_updates += batch.n_events
        self._batch_counter += 1

    def _refresh_snapshot(self) -> None:
        """Synchronize: exact Grams from the live factors, fresh snapshot.

        Recomputing the live Gram matrices here (instead of trusting the
        rank-one maintenance) bounds float drift by the staleness interval;
        the randomized variants' prev-Grams are re-pinned to the Grams so a
        checkpoint taken mid-run restores into a consistent object.
        """
        model = self._model
        factors = [factor.copy() for factor in model._factors]
        grams = [factor.T @ factor for factor in factors]
        for live, exact in zip(model._grams, grams):
            np.copyto(live, exact)
        prev_grams = getattr(model, "_prev_grams", None)
        if prev_grams is not None:
            for buffer, gram in zip(prev_grams, grams):
                np.copyto(buffer, gram)
        self._snapshot = ShardSnapshot(
            factors=factors, grams=grams, hadamards=_hadamards(grams)
        )

    def _build_tasks(self, batch: DeltaBatch, plan: ShardPlan) -> list[ShardTask]:
        """Dispatch stage: gather per-shard rows, slices, samples, entries.

        Runs in the caller's thread against the batch-final window so the
        execute stage touches no shared mutable state.  Sample draws use the
        stateless per-(batch, shard) generators described in the module
        docstring; the distinct rows of a shard keep first-occurrence order.
        """
        model = self._model
        tensor = model.window.tensor
        spec = self._spec
        groups = list(batch.entry_groups())
        shard_events: list[list[int]] = [[] for _ in range(self._n_shards)]
        for event, shard in enumerate(plan.assignments):
            shard_events[shard].append(event)
        tasks: list[ShardTask] = []
        for shard_id, events in enumerate(shard_events):
            owned_rows: dict[tuple[int, int], None] = {}
            coords: list[tuple[int, ...]] = []
            values: list[float] = []
            for event in events:
                record, _step, entries = groups[event]
                for mode, index in enumerate(record.indices):
                    owned_rows.setdefault((mode, int(index)), None)
                for coordinate, value in entries:
                    coords.append(coordinate)
                    values.append(value)
            rng: np.random.Generator | None = None
            row_tasks: list[ShardRowTask] = []
            for mode, index in owned_rows:
                slice_indices, slice_values = tensor.mode_slice_arrays(mode, index)
                samples: np.ndarray | None = None
                observed: np.ndarray | None = None
                if (
                    spec.sampled
                    and self._sampler is not None
                    and slice_values.shape[0] > spec.theta
                ):
                    if rng is None:
                        rng = np.random.default_rng(
                            (self._seed, self._batch_counter, shard_id)
                        )
                    samples = self._sampler.sample(mode, index, spec.theta, rng)
                    observed = (
                        tensor._get_batch_trusted(samples)
                        if samples.shape[0]
                        else np.empty(0, dtype=np.float64)
                    )
                row_tasks.append(
                    ShardRowTask(
                        mode=mode,
                        index=index,
                        slice_indices=slice_indices,
                        slice_values=slice_values,
                        samples=samples,
                        observed=observed,
                    )
                )
            if coords:
                entry_coords = np.asarray(coords, dtype=np.int64)
                entry_values = np.asarray(values, dtype=np.float64)
            else:
                entry_coords = np.empty((0, model.order), dtype=np.int64)
                entry_values = np.empty(0, dtype=np.float64)
            tasks.append(
                ShardTask(
                    shard_id=shard_id,
                    rows=row_tasks,
                    entry_coords=entry_coords,
                    entry_values=entry_values,
                )
            )
        return tasks

    def _execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Run the pure execute stage on the configured pool, in task order."""
        snapshot = self._snapshot
        spec = self._spec
        if self._pool_kind == "serial" or self._n_shards == 1:
            return [execute_shard(task, snapshot, spec) for task in tasks]
        pool = self._ensure_pool()
        futures = [
            pool.submit(execute_shard, task, snapshot, spec) for task in tasks
        ]
        return [future.result() for future in futures]

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            if self._pool_kind == "process":
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self._n_shards
                )
            else:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self._n_shards, thread_name_prefix="repro-shard"
                )
        return self._pool

    def _merge(self, results: list[ShardResult]) -> None:
        """Serial merge in shard-id order: the only stage that mutates state.

        Categorical rows are shard-disjoint by the plan, so commit order
        within the batch cannot change values — it is fixed anyway (shard
        id, then task order) to keep the Gram rank-one updates bit-stable.
        Time rows are shared: contributions are summed across shards and one
        update per time index is applied in ascending index order, with the
        clipped variants using the coordinate-descent rule (Eq. 22) and the
        least-squares variants the Eq. 9 rule, both against the snapshot's
        time-mode Hadamard matrix.
        """
        model = self._model
        factors = model._factors
        spec = self._spec
        snapshot = self._snapshot
        time_mode = spec.time_mode
        for result in results:
            for mode, index, new_row in result.row_updates:
                old_row = factors[mode][index, :].copy()
                factors[mode][index, :] = new_row
                model._update_gram(mode, old_row, new_row)
        time_contrib: dict[int, np.ndarray] = {}
        for result in results:
            for unit, vector in result.time_contrib.items():
                existing = time_contrib.get(unit)
                if existing is None:
                    time_contrib[unit] = vector.copy()
                else:
                    existing += vector
        hadamard = snapshot.hadamards[time_mode]
        if spec.clipped:
            for unit in sorted(time_contrib):
                old_row = factors[time_mode][unit, :].copy()
                numerator = old_row @ hadamard + time_contrib[unit]
                new_row = clipped_coordinate_descent(
                    old_row, numerator, hadamard, spec.eta, spec.lower, spec.ridge
                )
                factors[time_mode][unit, :] = new_row
                model._update_gram(time_mode, old_row, new_row)
        else:
            inverse = model._pinv(hadamard)
            for unit in sorted(time_contrib):
                old_row = factors[time_mode][unit, :].copy()
                new_row = old_row + time_contrib[unit] @ inverse
                factors[time_mode][unit, :] = new_row
                model._update_gram(time_mode, old_row, new_row)

    # ------------------------------------------------------------------
    # Checkpoint aux protocol (rides in the model's state_dict aux)
    # ------------------------------------------------------------------
    def aux_state(self) -> dict[str, Any]:
        """Executor bookkeeping as checkpoint-serializable aux entries."""
        aux: dict[str, Any] = {
            "shard_batch_counter": np.array(
                [self._batch_counter], dtype=np.float64
            )
        }
        if self._snapshot is not None:
            aux["shard_snapshot_factors"] = [
                factor.copy() for factor in self._snapshot.factors
            ]
            aux["shard_snapshot_grams"] = [
                gram.copy() for gram in self._snapshot.grams
            ]
        return aux

    def load_aux_state(self, aux: Any) -> None:
        """Restore what :meth:`aux_state` saved (missing keys: fresh start).

        Restoring the batch counter and the snapshot mid staleness interval
        is what makes a sharded checkpoint/restore continuation bit-identical
        to the uninterrupted run: the refresh schedule, the stateless sample
        generators, and the snapshot every shard reads all line up again.
        """
        counter = aux.get("shard_batch_counter")
        if counter is not None:
            self._batch_counter = int(np.asarray(counter).reshape(-1)[0])
        factors = aux.get("shard_snapshot_factors")
        grams = aux.get("shard_snapshot_grams")
        if factors is not None and grams is not None:
            restored_factors = [
                np.array(factor, dtype=np.float64, copy=True) for factor in factors
            ]
            restored_grams = [
                np.array(gram, dtype=np.float64, copy=True) for gram in grams
            ]
            self._snapshot = ShardSnapshot(
                factors=restored_factors,
                grams=restored_grams,
                hadamards=_hadamards(restored_grams),
            )
