"""Stage 1 of the sharded pipeline: partition a batch into shared-nothing shards.

A :class:`ShardPlan` assigns every event of a
:class:`~repro.stream.deltas.DeltaBatch` to one shard such that no two shards
ever touch the same *categorical* factor row: events are connected whenever
they share a ``(mode, index)`` key in any non-temporal mode, the connected
components of that relation are the atomic units of work, and components are
packed onto shards greedily by size.  The temporal mode is shared by
construction (every event touches it) and is therefore *not* part of the
partition — time-row work is accumulated per shard and reconciled by the
executor's merge step.

Planning is a pure, deterministic function of the batch contents and the
shard count: dictionaries only (no set iteration), union-find with
lowest-root representatives, and deterministic tie-breaks (largest component
first, then first event index; least-loaded shard first, then lowest shard
id).  Running it twice on the same batch yields the same plan, which is what
makes sharded runs replayable and checkpoint/restore exact.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import ConfigurationError
from repro.stream.deltas import DeltaBatch


@dataclasses.dataclass(frozen=True, slots=True)
class ShardPlan:
    """Deterministic event → shard assignment for one batch.

    Attributes
    ----------
    n_shards:
        Number of shards the plan was built for (some may be empty).
    n_events:
        Number of events in the planned batch.
    assignments:
        Shard id of every event, in event order.
    n_components:
        Number of connected components the events formed; the upper bound on
        useful parallelism for this batch.
    """

    n_shards: int
    n_events: int
    assignments: tuple[int, ...]
    n_components: int

    def events_of(self, shard: int) -> list[int]:
        """Event positions assigned to ``shard``, in event order."""
        return [
            event
            for event, assigned in enumerate(self.assignments)
            if assigned == shard
        ]

    @property
    def shard_sizes(self) -> list[int]:
        """Number of events per shard."""
        sizes = [0] * self.n_shards
        for assigned in self.assignments:
            sizes[assigned] += 1
        return sizes


def plan_batch(batch: DeltaBatch, n_shards: int) -> ShardPlan:
    """Partition ``batch``'s events into ``n_shards`` shared-nothing shards.

    Two events that share any categorical ``(mode, index)`` key are placed in
    the same shard (transitively), so every categorical factor row is owned
    by exactly one shard.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    event_indices = [record.indices for record, _step, _entries in batch.entry_groups()]
    n_events = len(event_indices)
    parent = list(range(n_events))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    owner: dict[tuple[int, int], int] = {}
    for event, indices in enumerate(event_indices):
        for mode, index in enumerate(indices):
            key = (mode, int(index))
            prior = owner.get(key)
            if prior is None:
                owner[key] = event
                continue
            root_a = find(event)
            root_b = find(prior)
            if root_a == root_b:
                continue
            # Lowest root wins: representatives are deterministic regardless
            # of union order.
            if root_a < root_b:
                parent[root_b] = root_a
            else:
                parent[root_a] = root_b

    component_events: dict[int, list[int]] = {}
    for event in range(n_events):
        component_events.setdefault(find(event), []).append(event)

    # Greedy balanced packing: largest component first (ties by first event
    # index), onto the least-loaded shard (ties by lowest shard id).
    components = sorted(
        component_events.values(), key=lambda events: (-len(events), events[0])
    )
    loads = [0] * n_shards
    assignments = [0] * n_events
    for events in components:
        shard = min(range(n_shards), key=lambda candidate: (loads[candidate], candidate))
        loads[shard] += len(events)
        for event in events:
            assignments[event] = shard
    return ShardPlan(
        n_shards=n_shards,
        n_events=n_events,
        assignments=tuple(assignments),
        n_components=len(components),
    )
