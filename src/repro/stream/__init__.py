"""Multi-aspect data streams and the continuous tensor model (Section IV).

This package implements:

* :class:`~repro.stream.stream.MultiAspectStream` — Definition 1, a
  chronological sequence of timestamped tuples.
* :class:`~repro.stream.window.TensorWindow` — the tensor window
  ``D(t, W)`` of Definition 4, stored sparsely.
* :class:`~repro.stream.deltas.Delta` — the input change ``ΔX`` of
  Definition 6 caused by one event.
* :class:`~repro.stream.processor.ContinuousStreamProcessor` — the
  event-driven implementation of the continuous tensor model (Algorithm 1),
  which turns a stream into a chronological sequence of events/deltas while
  keeping the window up to date.
"""

from repro.stream.events import EventKind, StreamRecord, WindowEvent
from repro.stream.stream import MultiAspectStream
from repro.stream.deltas import Delta, DeltaBatch
from repro.stream.window import TensorWindow, WindowConfig
from repro.stream.scheduler import EventScheduler
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.checkpoint import (
    StreamCheckpoint,
    is_checkpoint,
    load_checkpoint,
    restore_model,
    restore_processor,
    restore_run,
    save_checkpoint,
    sweep_stale_sibling_dirs,
)

__all__ = [
    "EventKind",
    "StreamRecord",
    "WindowEvent",
    "MultiAspectStream",
    "Delta",
    "DeltaBatch",
    "TensorWindow",
    "WindowConfig",
    "EventScheduler",
    "ContinuousStreamProcessor",
    "StreamCheckpoint",
    "is_checkpoint",
    "load_checkpoint",
    "restore_model",
    "restore_processor",
    "restore_run",
    "save_checkpoint",
    "sweep_stale_sibling_dirs",
]
