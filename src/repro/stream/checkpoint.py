"""Exact checkpoint / restore of streaming runs (versioned npz + JSON manifest).

A checkpoint is a directory holding two files:

* ``manifest.json`` — format name + version, the window configuration, the
  scalar processor state (``start_time``, the event counter, the scheduler's
  sequence counter), the model metadata (registry name, hyper-parameter
  config, update counter, numpy bit-generator state), and an optional
  caller-supplied ``extra`` payload (the experiment runner stores its fitness
  bookkeeping there).
* ``state.npz`` — every array: the window's COO entries in storage order, a
  table of the unique stream records still referenced by the run, the
  scheduler heap (raw heap-array order, so the restored heap is structurally
  identical and pops in the exact same order, ties included), the pending
  future-record cursor as an id list, and the model's factor / Gram / aux
  matrices.

Guarantees
----------
Restore is *exact*, not approximate:

* the window tensor is rebuilt entry by entry in the saved storage order, so
  ``to_coo_arrays`` ordering — and with it every COO-driven float reduction —
  is preserved, and continuing the run leaves the window **bit-identical** to
  an uninterrupted one;
* the scheduler heap is adopted verbatim (no re-heapify) with its sequence
  counter, so simultaneous events resume with the same tie-breaking;
* the model's numpy ``Generator`` state is restored bit-for-bit, so both the
  legacy and the vectorized samplers continue on the exact same draw stream;
* ``_squared_norm`` is *recomputed exactly* from the restored entries (a
  compensated sum), shedding any incremental float drift the live run had
  accumulated.

The tensor's per-mode inverted index uses insertion-ordered dict buckets
whose iteration order is exactly the projection of the entry storage order,
so rebuilding the entries in ``to_coo_arrays`` order restores slice
enumeration — and with it every slice-driven float reduction — exactly.  The
equivalence suite (``tests/stream/test_checkpoint_equivalence.py``) pins the
resulting guarantee: checkpoint → restore → continue matches an
uninterrupted run bit-identically on the window and within ``1e-12`` on the
factors (observed: exactly equal) for all five variants × both engines ×
both samplers.

Checkpoints are self-contained: restoring does not need the original stream
object (the records still in flight are stored in the checkpoint itself).

Experiment snapshots
--------------------
:func:`save_experiment_snapshot` / :func:`load_experiment_snapshot` persist a
*prepared-but-unstarted* experiment: the full stream record table, the window
configuration, and the shared ALS initial factors every method starts from.
The snapshot is the unit of distribution for parallel replay
(:mod:`repro.experiments.parallel`): the parent prepares once, ships the
directory, and each worker rehydrates the identical stream and initial
decomposition — no per-worker data generation or ALS.  Rehydration is exact:
records and factors round-trip through float64 npz arrays bit-for-bit, so a
worker's ``run_method`` outcome is identical to an in-process run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError
from repro.stream.events import StreamRecord, WindowEvent
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.scheduler import EventScheduler, RawEvent
from repro.stream.stream import MultiAspectStream
from repro.stream.window import TensorWindow, WindowConfig
from repro.tensor.sparse import SparseTensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.base import ContinuousCPD
    from repro.tensor.kruskal import KruskalTensor

#: Format identifier written into every manifest.
FORMAT_NAME = "repro-stream-checkpoint"

#: On-disk format version.  Bump on any incompatible layout change; loading a
#: checkpoint with a different version raises :class:`ConfigurationError`.
FORMAT_VERSION = 1

MANIFEST_FILENAME = "manifest.json"
ARRAYS_FILENAME = "state.npz"

#: Format identifier of prepared-experiment snapshots (same file layout, a
#: different payload: stream records + window config + initial factors).
SNAPSHOT_FORMAT_NAME = "repro-experiment-snapshot"

#: On-disk snapshot format version; mismatches raise ConfigurationError.
SNAPSHOT_FORMAT_VERSION = 1


@dataclasses.dataclass(slots=True)
class StreamCheckpoint:
    """A loaded checkpoint: the parsed manifest plus the npz arrays."""

    path: Path
    manifest: dict[str, Any]
    arrays: dict[str, np.ndarray]

    @property
    def extra(self) -> Any:
        """The caller-supplied payload stored at save time (or ``None``)."""
        return self.manifest.get("extra")

    @property
    def has_model(self) -> bool:
        """True when model state was saved alongside the processor."""
        return self.manifest.get("model") is not None


def is_checkpoint(path: str | Path) -> bool:
    """True if ``path`` looks like a checkpoint directory (manifest present)."""
    path = Path(path)
    return (path / MANIFEST_FILENAME).is_file() and (path / ARRAYS_FILENAME).is_file()


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str | Path,
    processor: ContinuousStreamProcessor,
    model: "ContinuousCPD | None" = None,
    extra: Any = None,
) -> Path:
    """Write a checkpoint of ``processor`` (and optionally ``model``) to ``path``.

    ``path`` is created as a directory (parents included).  The save is
    crash-safe for the single-writer case: both files are written into a
    fresh temporary sibling directory which then replaces ``path``, so an
    interrupted save can never corrupt an existing checkpoint or leave a
    manifest paired with mismatched arrays — the worst case of a crash in
    the swap window is that ``path`` is briefly absent while the previous
    state survives under a ``<name>.old-<pid>`` sibling.  ``extra`` must be
    JSON-serializable; callers use it to persist run-loop bookkeeping (the
    experiment runner stores its fitness series and event count).

    When ``model`` is given it must track the *same* window object as
    ``processor`` — two objects that merely hold equal values would silently
    diverge after resume.
    """
    path = Path(path)
    if model is not None and model.window is not processor.window:
        raise ConfigurationError(
            "model.window is not the processor's window; checkpointing "
            "inconsistent objects would not restore a coherent run"
        )
    config = processor.config
    tensor = processor.window.tensor
    indices, values = tensor.to_coo_arrays()

    # Unique-record table shared by the heap entries and the pending records.
    record_rows: list[StreamRecord] = []
    record_ids: dict[int, int] = {}

    def intern_record(record: StreamRecord) -> int:
        key = id(record)
        row = record_ids.get(key)
        if row is None:
            row = len(record_rows)
            record_ids[key] = row
            record_rows.append(record)
        return row

    heap_entries, sequence = processor._scheduler.snapshot()
    heap_times = np.array([entry[0] for entry in heap_entries], dtype=np.float64)
    heap_sequences = np.array([entry[1] for entry in heap_entries], dtype=np.int64)
    heap_records = np.array(
        [intern_record(entry[3]) for entry in heap_entries], dtype=np.int64
    )
    heap_steps = np.array([entry[4] for entry in heap_entries], dtype=np.int64)
    future_ids = np.array(
        [intern_record(record) for record in processor._future_records],
        dtype=np.int64,
    )
    n_categorical = len(config.mode_sizes)
    records_indices = (
        np.array([record.indices for record in record_rows], dtype=np.int64)
        if record_rows
        else np.empty((0, n_categorical), dtype=np.int64)
    )
    records_values = np.array(
        [record.value for record in record_rows], dtype=np.float64
    )
    records_times = np.array(
        [record.time for record in record_rows], dtype=np.float64
    )

    arrays: dict[str, np.ndarray] = {
        "window_indices": indices,
        "window_values": values,
        "records_indices": records_indices,
        "records_values": records_values,
        "records_times": records_times,
        "heap_times": heap_times,
        "heap_sequences": heap_sequences,
        "heap_steps": heap_steps,
        "heap_records": heap_records,
        "future_records": future_ids,
    }

    manifest: dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "window": {
            "mode_sizes": list(config.mode_sizes),
            "window_length": config.window_length,
            "period": config.period,
            "n_deltas_applied": processor.window.n_deltas_applied,
            "tensor_version": tensor.version,
            # Diagnostic only: the incremental value at save time.  Restore
            # recomputes the squared norm exactly from the entries.
            "squared_norm": tensor.squared_norm(),
        },
        "processor": {
            "start_time": processor.start_time,
            "n_events_emitted": processor.n_events_emitted,
            "scheduler_sequence": sequence,
            # Live-ingestion watermark (see ContinuousStreamProcessor.extend);
            # absent in pre-service checkpoints, restored with a fallback.
            "ingest_horizon": processor.ingest_horizon,
        },
        "model": None,
        "extra": extra,
    }
    if model is not None:
        manifest["model"] = _pack_model_state(model.state_dict(), arrays)

    return _atomic_write_directory(path, manifest, arrays)


def sweep_stale_sibling_dirs(path: str | Path) -> list[Path]:
    """Remove stale ``<name>.tmp-*`` / ``<name>.old-*`` siblings of ``path``.

    A process killed inside :func:`_atomic_write_directory` can leave behind
    a half-written ``.tmp-<pid>`` directory, or — in the narrow window
    between retiring the previous checkpoint and renaming the new one in — a
    ``.old-<pid>`` directory holding the last good state while ``path``
    itself is absent.  A long-running service's background checkpoint writer
    makes both routine, so:

    * when ``path`` is missing but a ``.old-*`` sibling is a complete
      checkpoint, that sibling is renamed back to ``path`` (salvage);
    * every remaining ``.tmp-*`` / ``.old-*`` sibling is deleted.

    Returns the paths that were swept (deleted or salvaged).  Called
    automatically before every atomic write; recovery scans call it
    explicitly before probing :func:`is_checkpoint`.
    """
    path = Path(path)
    swept: list[Path] = []
    if not path.parent.is_dir():
        return swept
    stale = sorted(path.parent.glob(f"{path.name}.tmp-*")) + sorted(
        path.parent.glob(f"{path.name}.old-*")
    )
    for sibling in stale:
        if not sibling.is_dir():
            continue
        if (
            not path.exists()
            and sibling.name.startswith(f"{path.name}.old-")
            and (sibling / MANIFEST_FILENAME).is_file()
            and (sibling / ARRAYS_FILENAME).is_file()
        ):
            sibling.rename(path)
            swept.append(sibling)
            continue
        shutil.rmtree(sibling, ignore_errors=True)
        swept.append(sibling)
    return swept


#: Optional test/chaos hook called by :func:`_atomic_write_directory` at
#: each write stage (``begin`` / ``arrays`` / ``manifest`` / ``commit``)
#: with ``(path, stage)``.  The service's fault-injection harness installs
#: one to script mid-write ``OSError`` / ``ENOSPC`` / slow-write faults;
#: anything it raises propagates exactly like a real filesystem error (the
#: temp directory is cleaned up, the previous checkpoint survives).
_write_fault_hook = None


def install_write_fault_hook(hook) -> None:
    """Install (or, with ``None``, remove) the checkpoint write-fault hook."""
    global _write_fault_hook
    _write_fault_hook = hook


def _write_stage(path: Path, stage: str) -> None:
    hook = _write_fault_hook
    if hook is not None:
        hook(path, stage)


def _atomic_write_directory(
    path: Path, manifest: dict[str, Any], arrays: dict[str, np.ndarray]
) -> Path:
    """Write ``manifest.json`` + ``state.npz`` to ``path`` via a tmp-dir swap.

    Crash-safe for the single-writer case: an interrupted write can never
    leave a manifest paired with mismatched arrays (see
    :func:`save_checkpoint` for the full guarantee).  Stale ``.tmp-*`` /
    ``.old-*`` siblings left by a previously killed writer are swept first.
    """
    sweep_stale_sibling_dirs(path)
    _write_stage(path, "begin")
    temp_dir = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    if temp_dir.exists():
        shutil.rmtree(temp_dir)
    temp_dir.mkdir(parents=True)
    try:
        with open(temp_dir / ARRAYS_FILENAME, "wb") as handle:
            np.savez(handle, **arrays)
        _write_stage(path, "arrays")
        (temp_dir / MANIFEST_FILENAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        _write_stage(path, "manifest")
        if path.exists():
            retired = path.with_name(f"{path.name}.old-{os.getpid()}")
            if retired.exists():
                shutil.rmtree(retired)
            path.rename(retired)
            temp_dir.rename(path)
            shutil.rmtree(retired)
        else:
            temp_dir.rename(path)
        # After the swap: a fault here models "the write landed but the
        # writer saw an error" — the ambiguous success retries must tolerate.
        _write_stage(path, "commit")
    except BaseException:
        shutil.rmtree(temp_dir, ignore_errors=True)
        raise
    return path


def _pack_model_state(
    state: dict[str, Any], arrays: dict[str, np.ndarray]
) -> dict[str, Any]:
    """Split a model ``state_dict`` into manifest scalars and npz arrays."""
    for mode, factor in enumerate(state["factors"]):
        arrays[f"model_factor_{mode}"] = np.asarray(factor, dtype=np.float64)
    for mode, gram in enumerate(state["grams"]):
        arrays[f"model_gram_{mode}"] = np.asarray(gram, dtype=np.float64)
    aux_spec: dict[str, Any] = {}
    for key, value in (state.get("aux") or {}).items():
        if isinstance(value, (list, tuple)):
            aux_spec[key] = {"kind": "list", "length": len(value)}
            for position, item in enumerate(value):
                arrays[f"model_aux_{key}_{position}"] = np.asarray(
                    item, dtype=np.float64
                )
        else:
            aux_spec[key] = {"kind": "array"}
            arrays[f"model_aux_{key}"] = np.asarray(value, dtype=np.float64)
    return {
        "name": state["name"],
        "config": state["config"],
        # The backend that actually executed the run (diagnostic only —
        # restore rebuilds the model from its config and may resolve to a
        # different backend on this machine).
        "kernel_backend": state.get("kernel_backend"),
        "n_updates": state["n_updates"],
        "rng_state": state["rng_state"],
        "n_factors": len(state["factors"]),
        "aux_spec": aux_spec,
    }


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
#: Arrays every checkpoint must carry regardless of whether a model was saved.
_CHECKPOINT_ARRAY_KEYS = (
    "window_indices",
    "window_values",
    "records_indices",
    "records_values",
    "records_times",
    "heap_times",
    "heap_sequences",
    "heap_steps",
    "heap_records",
    "future_records",
)


def _check_complete_directory(path: Path, what: str) -> tuple[Path, Path]:
    """Both files present -> their paths; one present -> CheckpointError."""
    manifest_path = path / MANIFEST_FILENAME
    arrays_path = path / ARRAYS_FILENAME
    has_manifest = manifest_path.is_file()
    has_arrays = arrays_path.is_file()
    if not has_manifest and not has_arrays:
        raise ConfigurationError(f"{path} is not a {what} directory")
    if not (has_manifest and has_arrays):
        missing = ARRAYS_FILENAME if has_manifest else MANIFEST_FILENAME
        raise CheckpointError(
            f"{what} at {path} is incomplete ({missing} is missing) — the "
            "directory was truncated or partially written; delete it or "
            "restore from an intact checkpoint"
        )
    return manifest_path, arrays_path


def _read_manifest(manifest_path: Path, what: str) -> dict[str, Any]:
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"cannot read {what} manifest {manifest_path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise CheckpointError(
            f"{what} manifest {manifest_path} does not hold a JSON object"
        )
    return manifest


def _read_arrays(arrays_path: Path, what: str) -> dict[str, np.ndarray]:
    """Load the npz payload, mapping corruption onto :class:`CheckpointError`."""
    try:
        with np.load(arrays_path, allow_pickle=False) as payload:
            return {key: payload[key] for key in payload.files}
    except CheckpointError:
        raise
    except Exception as error:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise CheckpointError(
            f"cannot read {what} arrays {arrays_path}: {error} — the file is "
            "truncated or corrupt"
        ) from error


def _require_arrays(
    arrays: Mapping[str, np.ndarray],
    required: Sequence[str],
    path: Path,
    what: str,
) -> None:
    missing = [key for key in required if key not in arrays]
    if missing:
        raise CheckpointError(
            f"{what} at {path} is missing required arrays {missing} — the "
            "directory was truncated or written by an interrupted save"
        )


def _model_array_keys(model_manifest: Mapping[str, Any]) -> list[str]:
    """Array keys a manifest's model section promises to find in the npz."""
    keys: list[str] = []
    try:
        n_factors = int(model_manifest["n_factors"])
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint model metadata is unreadable: {error}"
        ) from error
    for mode in range(n_factors):
        keys.append(f"model_factor_{mode}")
        keys.append(f"model_gram_{mode}")
    for key, spec in (model_manifest.get("aux_spec") or {}).items():
        if not isinstance(spec, Mapping) or "kind" not in spec:
            raise CheckpointError(
                f"checkpoint model aux spec for {key!r} is unreadable"
            )
        if spec["kind"] == "list":
            for position in range(int(spec.get("length", 0))):
                keys.append(f"model_aux_{key}_{position}")
        else:
            keys.append(f"model_aux_{key}")
    return keys


def load_checkpoint(path: str | Path) -> StreamCheckpoint:
    """Read and validate a checkpoint directory.

    Raises :class:`ConfigurationError` when the directory is not a
    checkpoint at all or the format name / version does not match this
    implementation, and the narrower :class:`CheckpointError` when the
    directory *is* a checkpoint but is truncated or corrupt (one file
    missing, unreadable manifest, damaged npz, missing arrays) — the
    routine failure modes of a background checkpoint writer killed mid-save.
    """
    path = Path(path)
    manifest_path, arrays_path = _check_complete_directory(path, "checkpoint")
    manifest = _read_manifest(manifest_path, "checkpoint")
    if manifest.get("format") != FORMAT_NAME:
        raise ConfigurationError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"checkpoint format version {version!r} is not supported "
            f"(this implementation reads version {FORMAT_VERSION})"
        )
    for section in ("window", "processor"):
        if not isinstance(manifest.get(section), dict):
            raise CheckpointError(
                f"checkpoint manifest {manifest_path} lacks its {section!r} "
                "section — the manifest was truncated or hand-edited"
            )
    arrays = _read_arrays(arrays_path, "checkpoint")
    required = list(_CHECKPOINT_ARRAY_KEYS)
    model_manifest = manifest.get("model")
    if model_manifest is not None:
        required.extend(_model_array_keys(model_manifest))
    _require_arrays(arrays, required, path, "checkpoint")
    return StreamCheckpoint(path=path, manifest=manifest, arrays=arrays)


def restore_processor(checkpoint: StreamCheckpoint) -> ContinuousStreamProcessor:
    """Rebuild the stream processor saved in ``checkpoint``.

    The window tensor is reconstructed in the saved storage order with its
    mutation counter carried forward, the squared norm is recomputed exactly
    from the entries, and the scheduler heap is adopted verbatim with its
    sequence counter — so continuing the run is exact (see the module
    docstring for the precise guarantee).
    """
    manifest = checkpoint.manifest
    arrays = checkpoint.arrays
    window_manifest = manifest["window"]
    processor_manifest = manifest["processor"]
    config = WindowConfig(
        mode_sizes=tuple(window_manifest["mode_sizes"]),
        window_length=window_manifest["window_length"],
        period=window_manifest["period"],
    )
    tensor = SparseTensor.from_coo(
        config.shape,
        arrays["window_indices"],
        arrays["window_values"],
        version=int(window_manifest.get("tensor_version", 0)),
    )
    window = TensorWindow.from_tensor(
        config, tensor, n_deltas_applied=int(window_manifest["n_deltas_applied"])
    )
    records = _restore_records(checkpoint, len(config.mode_sizes))
    kind_by_step = tuple(
        WindowEvent.kind_for_step(step, config.window_length)
        for step in range(config.window_length + 1)
    )
    heap_entries: list[RawEvent] = []
    for time, sequence, record_id, step in zip(
        arrays["heap_times"].tolist(),
        arrays["heap_sequences"].tolist(),
        arrays["heap_records"].tolist(),
        arrays["heap_steps"].tolist(),
    ):
        heap_entries.append(
            (time, sequence, kind_by_step[step], records[record_id], step)
        )
    scheduler = EventScheduler.from_snapshot(
        heap_entries, int(processor_manifest["scheduler_sequence"])
    )
    future_records = [
        records[record_id] for record_id in arrays["future_records"].tolist()
    ]
    ingest_horizon = processor_manifest.get("ingest_horizon")
    return ContinuousStreamProcessor._restore(
        config=config,
        start_time=float(processor_manifest["start_time"]),
        window=window,
        scheduler=scheduler,
        future_records=future_records,
        n_events_emitted=int(processor_manifest["n_events_emitted"]),
        ingest_horizon=(
            None if ingest_horizon is None else float(ingest_horizon)
        ),
    )


def _restore_records(
    checkpoint: StreamCheckpoint, n_categorical: int
) -> list[StreamRecord]:
    """Materialise the unique-record table (one shared object per row)."""
    arrays = checkpoint.arrays
    indices = np.asarray(arrays["records_indices"], dtype=np.int64)
    if indices.size and indices.shape[1] != n_categorical:
        raise ConfigurationError(
            f"checkpointed records have {indices.shape[1]} categorical "
            f"indices; the window has {n_categorical} categorical modes"
        )
    return [
        StreamRecord(indices=tuple(row), value=value, time=time)
        for row, value, time in zip(
            indices.tolist(),
            arrays["records_values"].tolist(),
            arrays["records_times"].tolist(),
        )
    ]


def restore_model(
    checkpoint: StreamCheckpoint, window: TensorWindow
) -> "ContinuousCPD | None":
    """Rebuild the model saved in ``checkpoint`` against a restored ``window``.

    Returns ``None`` when the checkpoint carries no model state.  The model
    class is resolved through the algorithm registry by its saved name and
    reconstructed with its saved hyper-parameters, then ``load_state``
    restores factors, Grams, counters, aux buffers, and the RNG stream.
    """
    model_manifest = checkpoint.manifest.get("model")
    if model_manifest is None:
        return None
    # Local imports: repro.core imports repro.stream at module load time.
    from repro.core.base import SNSConfig
    from repro.core.registry import create_algorithm

    arrays = checkpoint.arrays
    config = SNSConfig(**model_manifest["config"])
    model = create_algorithm(model_manifest["name"], config)
    n_factors = int(model_manifest["n_factors"])
    aux: dict[str, Any] = {}
    for key, spec in (model_manifest.get("aux_spec") or {}).items():
        if spec["kind"] == "list":
            aux[key] = [
                arrays[f"model_aux_{key}_{position}"]
                for position in range(int(spec["length"]))
            ]
        else:
            aux[key] = arrays[f"model_aux_{key}"]
    state = {
        "name": model_manifest["name"],
        "config": model_manifest["config"],
        "n_updates": model_manifest["n_updates"],
        "rng_state": model_manifest["rng_state"],
        "factors": [arrays[f"model_factor_{mode}"] for mode in range(n_factors)],
        "grams": [arrays[f"model_gram_{mode}"] for mode in range(n_factors)],
        "aux": aux,
    }
    model.load_state(window, state)
    return model


def restore_run(
    path: str | Path,
) -> tuple[ContinuousStreamProcessor, "ContinuousCPD | None", Any]:
    """One-call restore: ``(processor, model or None, extra payload)``."""
    checkpoint = load_checkpoint(path)
    processor = restore_processor(checkpoint)
    model = restore_model(checkpoint, processor.window)
    return processor, model, checkpoint.extra


# ----------------------------------------------------------------------
# Experiment snapshots (prepared-but-unstarted runs)
# ----------------------------------------------------------------------
@dataclasses.dataclass(slots=True)
class ExperimentSnapshot:
    """A rehydrated prepared experiment: everything a worker needs to replay.

    ``stream`` and ``initial_factors`` are bit-identical to the objects the
    parent snapshotted, so ``run_method(stream, window_config, ...)`` in a
    worker process produces exactly the sequential result.
    """

    stream: MultiAspectStream
    window_config: WindowConfig
    initial_factors: "KruskalTensor"
    extra: Any = None


def is_experiment_snapshot(path: str | Path) -> bool:
    """True if ``path`` holds an experiment snapshot (cheap manifest sniff)."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not manifest_path.is_file() or not (path / ARRAYS_FILENAME).is_file():
        return False
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return manifest.get("format") == SNAPSHOT_FORMAT_NAME


def save_experiment_snapshot(
    path: str | Path,
    stream: MultiAspectStream,
    window_config: WindowConfig,
    initial_factors: "KruskalTensor | Sequence[np.ndarray]",
    extra: Any = None,
) -> Path:
    """Persist a prepared experiment (stream + window config + initial factors).

    The write is atomic in the same sense as :func:`save_checkpoint`.
    ``extra`` must be JSON-serializable; the parallel runner stores the
    dataset spec scalars (rank, θ, η) and the initial fitness there so
    workers never re-derive them.
    """
    from repro.tensor.kruskal import KruskalTensor

    path = Path(path)
    if stream.mode_sizes != window_config.mode_sizes:
        raise ConfigurationError(
            f"stream mode sizes {stream.mode_sizes} do not match window "
            f"config {window_config.mode_sizes}"
        )
    if not isinstance(initial_factors, KruskalTensor):
        initial_factors = KruskalTensor(list(initial_factors))
    n_categorical = len(window_config.mode_sizes)
    records = stream.records
    arrays: dict[str, np.ndarray] = {
        "records_indices": (
            np.array([record.indices for record in records], dtype=np.int64)
            if records
            else np.empty((0, n_categorical), dtype=np.int64)
        ),
        "records_values": np.array(
            [record.value for record in records], dtype=np.float64
        ),
        "records_times": np.array(
            [record.time for record in records], dtype=np.float64
        ),
        "initial_weights": np.asarray(initial_factors.weights, dtype=np.float64),
    }
    for mode, factor in enumerate(initial_factors.factors):
        arrays[f"initial_factor_{mode}"] = np.asarray(factor, dtype=np.float64)
    manifest: dict[str, Any] = {
        "format": SNAPSHOT_FORMAT_NAME,
        "version": SNAPSHOT_FORMAT_VERSION,
        "window": {
            "mode_sizes": list(window_config.mode_sizes),
            "window_length": window_config.window_length,
            "period": window_config.period,
        },
        "mode_names": list(stream.mode_names),
        "n_factors": len(initial_factors.factors),
        "extra": extra,
    }
    return _atomic_write_directory(path, manifest, arrays)


def load_experiment_snapshot(path: str | Path) -> ExperimentSnapshot:
    """Rehydrate a snapshot written by :func:`save_experiment_snapshot`.

    Corruption handling mirrors :func:`load_checkpoint`: a directory that is
    recognisably a snapshot but truncated or damaged raises the narrower
    :class:`CheckpointError` instead of a raw traceback.
    """
    from repro.tensor.kruskal import KruskalTensor

    path = Path(path)
    manifest_path, arrays_path = _check_complete_directory(
        path, "experiment snapshot"
    )
    manifest = _read_manifest(manifest_path, "experiment snapshot")
    if manifest.get("format") != SNAPSHOT_FORMAT_NAME:
        raise ConfigurationError(
            f"{manifest_path} is not a {SNAPSHOT_FORMAT_NAME} manifest "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ConfigurationError(
            f"snapshot format version {version!r} is not supported "
            f"(this implementation reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    if not isinstance(manifest.get("window"), dict):
        raise CheckpointError(
            f"snapshot manifest {manifest_path} lacks its 'window' section — "
            "the manifest was truncated or hand-edited"
        )
    arrays = _read_arrays(arrays_path, "experiment snapshot")
    required = [
        "records_indices",
        "records_values",
        "records_times",
        "initial_weights",
    ]
    try:
        n_factors = int(manifest["n_factors"])
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"snapshot manifest {manifest_path} has an unreadable "
            f"'n_factors' entry: {error}"
        ) from error
    required.extend(f"initial_factor_{mode}" for mode in range(n_factors))
    _require_arrays(arrays, required, path, "experiment snapshot")
    window_manifest = manifest["window"]
    window_config = WindowConfig(
        mode_sizes=tuple(window_manifest["mode_sizes"]),
        window_length=window_manifest["window_length"],
        period=window_manifest["period"],
    )
    records = [
        StreamRecord(indices=tuple(row), value=value, time=time)
        for row, value, time in zip(
            np.asarray(arrays["records_indices"], dtype=np.int64).tolist(),
            arrays["records_values"].tolist(),
            arrays["records_times"].tolist(),
        )
    ]
    stream = MultiAspectStream(
        records,
        mode_sizes=window_config.mode_sizes,
        mode_names=tuple(manifest.get("mode_names") or ()) or None,
    )
    factors = [
        arrays[f"initial_factor_{mode}"]
        for mode in range(int(manifest["n_factors"]))
    ]
    initial = KruskalTensor(factors, arrays["initial_weights"])
    return ExperimentSnapshot(
        stream=stream,
        window_config=window_config,
        initial_factors=initial,
        extra=manifest.get("extra"),
    )
