"""Input changes ``ΔX`` caused by window events (Definition 6).

Every event touches at most two entries of the tensor window: an arrival adds
the value to the newest unit, a shift moves it one unit older (a subtraction
and an addition), and an expiry subtracts it from the oldest unit.  The
:class:`Delta` object records those entry changes explicitly so that the
online update rules can iterate over them without re-deriving the event
semantics.

:class:`DeltaBatch` is the batched counterpart: the coalesced ``ΔX`` of a
whole *group* of chronologically consecutive events, stored in COO style
(categorical ``indices`` array, time-mode ``units`` array, ``values`` array)
so the window can absorb the group with one vectorized scatter-add and the
batched update rules can group entries by mode index.  The per-event
:class:`Delta` objects remain recoverable (lazily) for algorithms that need
exact per-event semantics, so batched processing never loses information
relative to the per-event path.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from repro.exceptions import ShapeError
from repro.stream.events import EventKind, StreamRecord, WindowEvent

Coordinate = tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class Delta:
    """The sparse change ``ΔX`` in the tensor window caused by one event.

    Attributes
    ----------
    entries:
        Tuple of ``(coordinate, value)`` pairs; at most two.  Coordinates are
        full ``M``-dimensional window coordinates (categorical indices followed
        by the time-mode index, 0-based with ``W - 1`` the newest unit).
    record:
        The stream record that caused the event.
    step:
        The ``w`` of Section IV-B (0 arrival, ``1..W-1`` shift, ``W`` expiry).
    kind:
        The event kind, kept for convenience.
    """

    entries: tuple[tuple[Coordinate, float], ...]
    record: StreamRecord
    step: int
    kind: EventKind

    @property
    def categorical_indices(self) -> tuple[int, ...]:
        """The ``(i_1, ..., i_{M-1})`` indices of the affected entries."""
        return self.record.indices

    @property
    def time_indices(self) -> tuple[int, ...]:
        """Time-mode indices touched by this delta (one or two)."""
        return tuple(coordinate[-1] for coordinate, _ in self.entries)

    @property
    def nnz(self) -> int:
        """Number of changed entries (1 or 2)."""
        return len(self.entries)

    def value_at(self, coordinate: Coordinate) -> float:
        """Return the delta value at ``coordinate`` (0.0 if untouched)."""
        for entry_coordinate, value in self.entries:
            if entry_coordinate == coordinate:
                return value
        return 0.0

    @staticmethod
    def from_event(event: WindowEvent, window_length: int) -> "Delta":
        """Build the ``ΔX`` of Definition 6 for ``event`` in a window of ``W`` units.

        Using 0-based time indices with ``W - 1`` the newest unit:

        * arrival (``w = 0``): ``+v`` at index ``W - 1``,
        * shift (``0 < w < W``): ``-v`` at index ``W - w`` and ``+v`` at
          ``W - w - 1``,
        * expiry (``w = W``): ``-v`` at index ``0``.
        """
        window_length = int(window_length)
        if window_length <= 0:
            raise ShapeError(f"window length must be positive, got {window_length}")
        record = event.record
        step = int(event.step)
        value = record.value
        prefix = record.indices
        if step == 0:
            entries = (((*prefix, window_length - 1), value),)
        elif step == window_length:
            entries = (((*prefix, 0), -value),)
        elif 0 < step < window_length:
            entries = (
                ((*prefix, window_length - step), -value),
                ((*prefix, window_length - step - 1), value),
            )
        else:
            raise ShapeError(
                f"event step {step} is outside the valid range 0..{window_length}"
            )
        return Delta(entries=entries, record=record, step=step, kind=event.kind)


class DeltaBatch:
    """The coalesced ``ΔX`` of a group of consecutive window events.

    Built by :meth:`ContinuousStreamProcessor.iter_batches` from the raw
    scheduler entries of one batch window.  The batch stores the entry-level
    changes of all its events *in event order* — event order is what makes
    window application bit-identical to the per-event path — plus enough
    event metadata to lazily reconstruct the individual
    :class:`~repro.stream.events.WindowEvent` / :class:`Delta` objects.

    Parameters
    ----------
    raw_events:
        ``(time, sequence, kind, record, step)`` tuples, chronological.
    coordinates:
        Full window coordinates of every entry change, in event order.
        An arrival or expiry contributes one entry, a shift two, so
        ``len(coordinates) >= len(raw_events)``.
    values:
        The signed change at each coordinate, aligned with ``coordinates``.
    window_length:
        The window length ``W`` (needed to rebuild per-event deltas).
    trusted:
        Set by the event engine, whose coordinates are validated by
        construction; consumers skip re-validation for trusted batches and
        bounds-check untrusted (hand-built) ones.
    """

    __slots__ = (
        "_raw_events",
        "_coordinates",
        "_values",
        "_window_length",
        "_trusted",
        "_events",
        "_deltas",
        "_indices_array",
        "_units_array",
        "_values_array",
    )

    def __init__(
        self,
        raw_events: list[tuple[float, int, EventKind, StreamRecord, int]],
        coordinates: list[Coordinate],
        values: list[float],
        window_length: int,
        trusted: bool = False,
    ) -> None:
        if len(coordinates) != len(values):
            raise ShapeError(
                f"{len(coordinates)} coordinates for {len(values)} values"
            )
        self._raw_events = raw_events
        self._coordinates = coordinates
        self._values = values
        self._window_length = int(window_length)
        self._trusted = bool(trusted)
        self._events: tuple[WindowEvent, ...] | None = None
        self._deltas: tuple[Delta, ...] | None = None
        self._indices_array: np.ndarray | None = None
        self._units_array: np.ndarray | None = None
        self._values_array: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Sizes and time span
    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Number of events coalesced into this batch."""
        return len(self._raw_events)

    @property
    def nnz(self) -> int:
        """Number of entry changes carried by this batch."""
        return len(self._coordinates)

    def __len__(self) -> int:
        return self.n_events

    @property
    def start_time(self) -> float:
        """Fire time of the first event in the batch."""
        return self._raw_events[0][0]

    @property
    def end_time(self) -> float:
        """Fire time of the last event in the batch."""
        return self._raw_events[-1][0]

    @property
    def window_length(self) -> int:
        """Window length ``W`` the batch was generated for."""
        return self._window_length

    @property
    def trusted(self) -> bool:
        """True when the coordinates were validated by the event engine."""
        return self._trusted

    # ------------------------------------------------------------------
    # COO view (vectorized consumers)
    # ------------------------------------------------------------------
    @property
    def coordinates(self) -> list[Coordinate]:
        """Full window coordinates of every entry change, in event order."""
        return self._coordinates

    @property
    def raw_values(self) -> list[float]:
        """Entry-change values aligned with :attr:`coordinates`."""
        return self._values

    @property
    def indices(self) -> np.ndarray:
        """Categorical indices of every entry as an ``(nnz, M-1)`` array."""
        if self._indices_array is None:
            self._build_arrays()
        return self._indices_array  # type: ignore[return-value]

    @property
    def units(self) -> np.ndarray:
        """Time-mode index of every entry as an ``(nnz,)`` array."""
        if self._units_array is None:
            self._build_arrays()
        return self._units_array  # type: ignore[return-value]

    @property
    def values(self) -> np.ndarray:
        """Entry-change values as an ``(nnz,)`` float64 array."""
        if self._values_array is None:
            self._build_arrays()
        return self._values_array  # type: ignore[return-value]

    def _build_arrays(self) -> None:
        if self._coordinates:
            full = np.asarray(self._coordinates, dtype=np.int64)
        else:  # batches are non-empty by construction; keep shapes sensible anyway
            full = np.empty((0, 1), dtype=np.int64)
        self._indices_array = full[:, :-1]
        self._units_array = full[:, -1]
        self._values_array = np.asarray(self._values, dtype=np.float64)

    # ------------------------------------------------------------------
    # Per-event views (exact-semantics consumers)
    # ------------------------------------------------------------------
    def entry_groups(
        self,
    ) -> Iterator[tuple[StreamRecord, int, tuple[tuple[Coordinate, float], ...]]]:
        """Yield ``(record, step, entries)`` per event, in event order.

        The flat per-event view of the batch: ``entries`` is exactly what the
        corresponding :class:`Delta` would carry, sliced out of the batch's
        entry arrays without materialising :class:`WindowEvent` / ``Delta``
        objects.  The randomised variants' ``update_batch`` iterates this to
        keep exact per-event semantics at batch speed.
        """
        coordinates = self._coordinates
        values = self._values
        window_length = self._window_length
        position = 0
        for _time, _sequence, _kind, record, step in self._raw_events:
            if 0 < step < window_length:
                entries = (
                    (coordinates[position], values[position]),
                    (coordinates[position + 1], values[position + 1]),
                )
                position += 2
            else:
                entries = ((coordinates[position], values[position]),)
                position += 1
            yield record, step, entries

    @property
    def events(self) -> tuple[WindowEvent, ...]:
        """The batch's events, materialised lazily in chronological order."""
        if self._events is None:
            self._events = tuple(
                WindowEvent(
                    time=time, sequence=sequence, kind=kind, record=record, step=step
                )
                for time, sequence, kind, record, step in self._raw_events
            )
        return self._events

    @property
    def deltas(self) -> tuple[Delta, ...]:
        """Per-event ``ΔX`` objects, materialised lazily in event order.

        Iterating these and applying/updating one at a time reproduces the
        per-event path exactly; the default
        :meth:`repro.core.base.ContinuousCPD.update_batch` relies on this.
        """
        if self._deltas is None:
            window_length = self._window_length
            self._deltas = tuple(
                Delta.from_event(event, window_length) for event in self.events
            )
        return self._deltas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaBatch(n_events={self.n_events}, nnz={self.nnz})"
