"""Input changes ``ΔX`` caused by window events (Definition 6).

Every event touches at most two entries of the tensor window: an arrival adds
the value to the newest unit, a shift moves it one unit older (a subtraction
and an addition), and an expiry subtracts it from the oldest unit.  The
:class:`Delta` object records those entry changes explicitly so that the
online update rules can iterate over them without re-deriving the event
semantics.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import ShapeError
from repro.stream.events import EventKind, StreamRecord, WindowEvent

Coordinate = tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class Delta:
    """The sparse change ``ΔX`` in the tensor window caused by one event.

    Attributes
    ----------
    entries:
        Tuple of ``(coordinate, value)`` pairs; at most two.  Coordinates are
        full ``M``-dimensional window coordinates (categorical indices followed
        by the time-mode index, 0-based with ``W - 1`` the newest unit).
    record:
        The stream record that caused the event.
    step:
        The ``w`` of Section IV-B (0 arrival, ``1..W-1`` shift, ``W`` expiry).
    kind:
        The event kind, kept for convenience.
    """

    entries: tuple[tuple[Coordinate, float], ...]
    record: StreamRecord
    step: int
    kind: EventKind

    @property
    def categorical_indices(self) -> tuple[int, ...]:
        """The ``(i_1, ..., i_{M-1})`` indices of the affected entries."""
        return self.record.indices

    @property
    def time_indices(self) -> tuple[int, ...]:
        """Time-mode indices touched by this delta (one or two)."""
        return tuple(coordinate[-1] for coordinate, _ in self.entries)

    @property
    def nnz(self) -> int:
        """Number of changed entries (1 or 2)."""
        return len(self.entries)

    def value_at(self, coordinate: Coordinate) -> float:
        """Return the delta value at ``coordinate`` (0.0 if untouched)."""
        for entry_coordinate, value in self.entries:
            if entry_coordinate == coordinate:
                return value
        return 0.0

    @staticmethod
    def from_event(event: WindowEvent, window_length: int) -> "Delta":
        """Build the ``ΔX`` of Definition 6 for ``event`` in a window of ``W`` units.

        Using 0-based time indices with ``W - 1`` the newest unit:

        * arrival (``w = 0``): ``+v`` at index ``W - 1``,
        * shift (``0 < w < W``): ``-v`` at index ``W - w`` and ``+v`` at
          ``W - w - 1``,
        * expiry (``w = W``): ``-v`` at index ``0``.
        """
        window_length = int(window_length)
        if window_length <= 0:
            raise ShapeError(f"window length must be positive, got {window_length}")
        record = event.record
        step = int(event.step)
        value = record.value
        prefix = record.indices
        if step == 0:
            entries = (((*prefix, window_length - 1), value),)
        elif step == window_length:
            entries = (((*prefix, 0), -value),)
        elif 0 < step < window_length:
            entries = (
                ((*prefix, window_length - step), -value),
                ((*prefix, window_length - step - 1), value),
            )
        else:
            raise ShapeError(
                f"event step {step} is outside the valid range 0..{window_length}"
            )
        return Delta(entries=entries, record=record, step=step, kind=event.kind)
