"""Stream records and the events they induce in the continuous tensor model.

Each timestamped tuple ``(e_n = (i_1, ..., i_{M-1}, v_n), t_n)`` of a
multi-aspect data stream (Definition 1) causes ``W + 1`` events in the
continuous tensor model (Section IV-B):

* S.1 — at ``t = t_n`` the value enters the newest tensor unit,
* S.2 — at ``t = t_n + w T`` (``w = 1 .. W-1``) the value moves one unit older,
* S.3 — at ``t = t_n + W T`` the value leaves the window.

:class:`WindowEvent` captures one such event; the corresponding entry-level
change ``ΔX`` is derived by :class:`repro.stream.deltas.Delta`.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.exceptions import ShapeError


@dataclasses.dataclass(frozen=True, slots=True)
class StreamRecord:
    """One timestamped tuple of a multi-aspect data stream (Definition 1).

    Attributes
    ----------
    indices:
        The ``M - 1`` categorical indices ``(i_1, ..., i_{M-1})``.
    value:
        The numerical value ``v_n``.
    time:
        The timestamp ``t_n`` (any monotone real clock, e.g. Unix seconds).
    """

    indices: tuple[int, ...]
    value: float
    time: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))
        if len(self.indices) == 0:
            raise ShapeError("a stream record needs at least one categorical index")
        if any(i < 0 for i in self.indices):
            raise ShapeError(f"negative categorical index in {self.indices}")
        object.__setattr__(self, "value", float(self.value))
        object.__setattr__(self, "time", float(self.time))


class EventKind(enum.Enum):
    """Kind of window event caused by a stream record."""

    ARRIVAL = "arrival"  # S.1: value enters the newest unit
    SHIFT = "shift"      # S.2: value moves one unit older
    EXPIRY = "expiry"    # S.3: value leaves the window


@dataclasses.dataclass(frozen=True, slots=True, order=True)
class WindowEvent:
    """One of the ``W + 1`` events induced by a stream record.

    Events are totally ordered by ``(time, sequence)`` so that the scheduler
    processes simultaneous events deterministically in creation order.

    Attributes
    ----------
    time:
        The wall-clock time at which the event fires.
    sequence:
        Tie-breaking sequence number assigned by the scheduler.
    kind:
        Arrival, shift, or expiry.
    record:
        The stream record that caused the event.
    step:
        The ``w`` of Section IV-B: 0 for arrival, ``1 .. W-1`` for shifts,
        ``W`` for expiry.
    """

    time: float
    sequence: int
    kind: EventKind = dataclasses.field(compare=False)
    record: StreamRecord = dataclasses.field(compare=False)
    step: int = dataclasses.field(compare=False)

    @staticmethod
    def kind_for_step(step: int, window_length: int) -> EventKind:
        """Map the step ``w`` to its event kind for a window of ``W`` units."""
        if step == 0:
            return EventKind.ARRIVAL
        if step == window_length:
            return EventKind.EXPIRY
        if 0 < step < window_length:
            return EventKind.SHIFT
        raise ShapeError(
            f"step {step} is outside the valid range 0..{window_length}"
        )
