"""Event-driven implementation of the continuous tensor model (Algorithm 1).

The processor replays a :class:`~repro.stream.stream.MultiAspectStream`
against a :class:`~repro.stream.window.TensorWindow`:

1. Records with timestamps up to the chosen ``start_time`` are aggregated
   directly into the initial window ``D(start_time, W)`` (and their remaining
   shift/expiry events are scheduled), so streaming algorithms can be
   initialised with a batch decomposition of a realistic window, exactly as
   in Section VI-A of the paper.
2. Records after ``start_time`` generate arrival events; every processed
   event schedules the record's next event ``T`` time units later, exactly as
   in Algorithm 1, so each record causes ``W + 1`` events in total.

The :meth:`ContinuousStreamProcessor.events` generator yields
``(event, delta)`` pairs in chronological order *after* applying the delta to
the window, so consumers always observe the up-to-date window ``X + ΔX``
together with the change ``ΔX`` — the exact inputs of Problem 2.

Batched engine
--------------
:meth:`ContinuousStreamProcessor.iter_batches` is the high-throughput
counterpart of :meth:`events`: it drains every event inside a batch window
(arrivals, shifts, and expiries between consecutive update points) from the
scheduler in one pull and coalesces their entry changes into a single
:class:`~repro.stream.deltas.DeltaBatch`.  :meth:`run_batched` consumes those
batches, either scattering them straight into the window (pure replay) or
handing them to a model's ``update_batch``.  Both paths are *exactly*
equivalent to the per-event path: windows end up bit-identical and models see
the same per-event semantics (see ``tests/stream/test_batched_equivalence``).
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.exceptions import (
    ConcurrentIterationError,
    ConfigurationError,
    IndexOutOfBoundsError,
    ShapeError,
    StreamOrderError,
)
from repro.stream.deltas import Delta, DeltaBatch
from repro.stream.events import EventKind, StreamRecord, WindowEvent
from repro.stream.scheduler import EventScheduler
from repro.stream.stream import MultiAspectStream
from repro.stream.window import TensorWindow, WindowConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from pathlib import Path

    from repro.core.base import ContinuousCPD

#: Relative slack used when assigning a timestamp to a tensor unit, guarding
#: against floating-point error when ``t - t_n`` is an exact multiple of ``T``.
_UNIT_EPSILON = 1e-9


class ContinuousStreamProcessor:
    """Replays a multi-aspect stream through the continuous tensor model.

    Parameters
    ----------
    stream:
        The input multi-aspect data stream.
    config:
        Window configuration (categorical mode sizes, ``W``, ``T``).
    start_time:
        The time ``t_0`` at which streaming starts.  Records with
        ``t_n <= t_0`` form the initial window; later records are replayed as
        events.  Defaults to ``stream.start_time + W * T`` so the initial
        window is fully populated.
    """

    def __init__(
        self,
        stream: MultiAspectStream,
        config: WindowConfig,
        start_time: float | None = None,
    ) -> None:
        if len(stream) == 0:
            raise ConfigurationError("cannot process an empty stream")
        if stream.mode_sizes != config.mode_sizes:
            raise ConfigurationError(
                f"stream mode sizes {stream.mode_sizes} do not match window "
                f"config {config.mode_sizes}"
            )
        self._stream = stream
        self._config = config
        if start_time is None:
            start_time = stream.start_time + config.span
        self._start_time = float(start_time)
        self._window = TensorWindow(config)
        self._scheduler = EventScheduler()
        self._n_events_emitted = 0
        self._future_records: list[StreamRecord] = []
        self._iterating = False
        # Step -> event kind, precomputed once; both event paths use it.
        self._kind_by_step: tuple[EventKind, ...] = tuple(
            WindowEvent.kind_for_step(step, config.window_length)
            for step in range(config.window_length + 1)
        )
        self._bootstrap()
        # Latest record time this processor has seen; extend() may only feed
        # records at or after it (future records are newest-first).
        self._ingest_horizon = (
            self._future_records[0].time
            if self._future_records
            else self._start_time
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def window(self) -> TensorWindow:
        """The tensor window, kept up to date as events are emitted."""
        return self._window

    @property
    def config(self) -> WindowConfig:
        """Window configuration."""
        return self._config

    @property
    def start_time(self) -> float:
        """The streaming start time ``t_0``."""
        return self._start_time

    @property
    def n_events_emitted(self) -> int:
        """Number of events emitted so far.

        Counts exactly the events handed to consumers: everything drained by
        :meth:`iter_batches`, and every pair yielded by :meth:`events` —
        expiries suppressed with ``include_expiry=False`` update the window
        but are neither yielded nor counted.  This is the counter persisted
        by :meth:`save_checkpoint`.
        """
        return self._n_events_emitted

    @property
    def n_pending_records(self) -> int:
        """Number of stream records not yet arrived."""
        return len(self._future_records)

    @property
    def has_pending_events(self) -> bool:
        """True while any arrival, shift, or expiry is still due."""
        return bool(self._future_records) or len(self._scheduler) > 0

    @property
    def next_event_time(self) -> float | None:
        """Fire time of the next pending event, or ``None`` when drained.

        Pure peek — no state is touched, so it is safe between events /
        batches.  Callers use it to tell a replay that stopped because it
        reached ``end_time`` apart from one that stopped on ``max_events``
        mid-interval.
        """
        next_arrival = self._future_records[-1].time if self._future_records else None
        next_scheduled = self._scheduler.peek_time()
        if next_arrival is None:
            return next_scheduled
        if next_scheduled is None:
            return next_arrival
        return min(next_scheduled, next_arrival)

    @property
    def ingest_horizon(self) -> float:
        """Latest record time this processor has seen.

        :meth:`extend` only accepts records at or after this time, and a
        streaming service drains events up to it after every ingest (the
        "watermark" of the live ingestion path).
        """
        return self._ingest_horizon

    # ------------------------------------------------------------------
    # Live ingestion
    # ------------------------------------------------------------------
    def extend(self, records: "Sequence[StreamRecord]") -> int:
        """Feed new records into a live processor; return how many were added.

        The service ingestion path: a processor normally replays a stream
        fixed at construction time, but a long-running service keeps feeding
        it events as they arrive.  ``records`` must be chronologically
        ordered, start no earlier than :attr:`ingest_horizon` (ties with the
        newest known record are allowed), lie strictly after
        :attr:`start_time` (earlier records belong to the already-built
        initial window), and match the window's categorical modes.  The new
        arrivals become pending future records; nothing is applied until the
        next :meth:`events` / :meth:`iter_batches` drain.
        """
        if self._iterating:
            raise ConcurrentIterationError(
                "cannot extend the processor while an events()/iter_batches() "
                "iteration is active; exhaust or close the iterator first"
            )
        incoming = list(records)
        if not incoming:
            return 0
        n_categorical = len(self._config.mode_sizes)
        previous = self._ingest_horizon
        for record in incoming:
            if len(record.indices) != n_categorical:
                raise ShapeError(
                    f"record {record.indices} has {len(record.indices)} "
                    f"categorical indices; the window has {n_categorical}"
                )
            for mode, (index, size) in enumerate(
                zip(record.indices, self._config.mode_sizes)
            ):
                if not 0 <= index < size:
                    raise IndexOutOfBoundsError(
                        f"record index {index} exceeds size {size} of mode {mode}"
                    )
            if record.time <= self._start_time:
                raise StreamOrderError(
                    f"record at time {record.time} is not after the start "
                    f"time {self._start_time}; it belongs to the initial "
                    "window, which is already built"
                )
            if record.time < previous:
                raise StreamOrderError(
                    f"record at time {record.time} arrives before the "
                    f"processor's ingest horizon {previous}; feed records "
                    "chronologically"
                )
            previous = record.time
        # Pending records are kept newest-first (arrivals pop from the end),
        # so the new, newer block goes to the front in reversed order.
        self._future_records[:0] = reversed(incoming)
        self._ingest_horizon = incoming[-1].time
        return len(incoming)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def save_checkpoint(
        self,
        path: "str | Path",
        model: "ContinuousCPD | None" = None,
        extra: object | None = None,
    ) -> "Path":
        """Snapshot the full run state to ``path`` (a checkpoint directory).

        Persists the window (COO arrays), the scheduler heap with its
        sequence counter, the pending future records, the event counter, and
        — when ``model`` is given — the model's :meth:`state_dict` including
        its RNG stream.  Call it only *between* events / batches (never from
        inside an ``events()`` / ``iter_batches()`` step); restoring then
        continues the run exactly.  See :mod:`repro.stream.checkpoint` for
        the format and guarantees.
        """
        from repro.stream.checkpoint import save_checkpoint

        return save_checkpoint(path, self, model=model, extra=extra)

    @classmethod
    def from_checkpoint(cls, path: "str | Path") -> "ContinuousStreamProcessor":
        """Rebuild a processor from a checkpoint directory.

        Restores only the stream-processor state; use
        :func:`repro.stream.checkpoint.restore_run` to also rebuild the model
        saved alongside it.
        """
        from repro.stream.checkpoint import load_checkpoint, restore_processor

        return restore_processor(load_checkpoint(path))

    @classmethod
    def _restore(
        cls,
        config: WindowConfig,
        start_time: float,
        window: TensorWindow,
        scheduler: EventScheduler,
        future_records: list[StreamRecord],
        n_events_emitted: int,
        ingest_horizon: float | None = None,
    ) -> "ContinuousStreamProcessor":
        """Assemble a processor from restored state (no bootstrap replay).

        ``future_records`` must be in the internal pop order (newest first;
        arrivals are consumed from the end of the list).  ``ingest_horizon``
        is the saved live-ingestion watermark; ``None`` (pre-horizon
        checkpoints) falls back to the newest pending record / start time.
        """
        processor = object.__new__(cls)
        processor._stream = MultiAspectStream(
            list(reversed(future_records)), mode_sizes=config.mode_sizes
        )
        processor._config = config
        processor._start_time = float(start_time)
        processor._window = window
        processor._scheduler = scheduler
        processor._n_events_emitted = int(n_events_emitted)
        processor._future_records = list(future_records)
        processor._iterating = False
        processor._kind_by_step = tuple(
            WindowEvent.kind_for_step(step, config.window_length)
            for step in range(config.window_length + 1)
        )
        if ingest_horizon is None:
            ingest_horizon = (
                future_records[0].time if future_records else start_time
            )
        processor._ingest_horizon = float(ingest_horizon)
        return processor

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _unit_offset(self, record_time: float, now: float) -> int:
        """Number of full periods between ``record_time`` and ``now`` (0 = newest)."""
        elapsed = now - record_time
        return int(math.floor(elapsed / self._config.period + _UNIT_EPSILON))

    def _bootstrap(self) -> None:
        window_length = self._config.window_length
        period = self._config.period
        for record in self._stream:
            if record.time > self._start_time:
                self._future_records.append(record)
                continue
            offset = self._unit_offset(record.time, self._start_time)
            if offset >= window_length:
                continue  # already expired before streaming starts
            unit = window_length - 1 - offset
            self._window.add_entry(record.indices, unit, record.value)
            next_step = offset + 1
            if next_step <= window_length:
                next_time = record.time + next_step * period
                self._scheduler.schedule(
                    next_time, self._kind_by_step[next_step], record, next_step
                )
        # Future records are consumed front-to-back as arrivals.
        self._future_records.reverse()  # pop() from the end is O(1)

    # ------------------------------------------------------------------
    # Event generation
    # ------------------------------------------------------------------
    def events(
        self,
        end_time: float | None = None,
        max_events: int | None = None,
        include_expiry: bool = True,
    ) -> Iterator[tuple[WindowEvent, Delta]]:
        """Yield ``(event, delta)`` pairs in chronological order.

        The delta is applied to :attr:`window` *before* the pair is yielded.

        Parameters
        ----------
        end_time:
            Stop once the next event would fire after this time.
        max_events:
            Stop after this many events (counting only yielded events).
        include_expiry:
            When False, expiry events still update the window but are not
            yielded to the consumer.  The paper's algorithms handle expiries
            exactly like other events, so the default is True; the flag exists
            for ablation experiments.
        """
        if self._iterating:
            raise ConcurrentIterationError(
                "another events()/iter_batches() iteration is already active "
                "on this processor; a concurrent drain would corrupt the "
                "scheduler heap — exhaust or close the active iterator first"
            )
        self._iterating = True
        try:
            yield from self._events(
                end_time,
                max_events,
                include_expiry,
                self._config.window_length,
                self._config.period,
            )
        finally:
            self._iterating = False

    def _events(
        self,
        end_time: float | None,
        max_events: int | None,
        include_expiry: bool,
        window_length: int,
        period: float,
    ) -> Iterator[tuple[WindowEvent, Delta]]:
        emitted = 0
        while True:
            if max_events is not None and emitted >= max_events:
                return
            next_arrival_time = (
                self._future_records[-1].time if self._future_records else None
            )
            next_scheduled_time = self._scheduler.peek_time()
            if next_arrival_time is None and next_scheduled_time is None:
                return
            # Scheduled (shift/expiry) events win ties against new arrivals so
            # old mass has moved before a simultaneous new arrival is applied.
            take_scheduled = next_arrival_time is None or (
                next_scheduled_time is not None
                and next_scheduled_time <= next_arrival_time
            )
            next_time = next_scheduled_time if take_scheduled else next_arrival_time
            if end_time is not None and next_time > end_time:
                # Stop *before* touching any state: popping first and undoing
                # the pop would consume a sequence number (arrivals are
                # scheduled-then-popped), making a paused-and-resumed run
                # number simultaneous events differently from an
                # uninterrupted one.  Leaving the event in place keeps
                # resuming with a later end_time exactly equivalent.
                return
            if take_scheduled:
                event = self._scheduler.pop()
            else:
                record = self._future_records.pop()
                event = self._scheduler.schedule(
                    record.time, EventKind.ARRIVAL, record, step=0
                )
                self._scheduler.pop()  # immediately consume the arrival we queued
            delta = Delta.from_event(event, window_length)
            self._window.apply_delta(delta)
            next_step = event.step + 1
            if next_step <= window_length:
                self._scheduler.schedule(
                    event.record.time + next_step * period,
                    self._kind_by_step[next_step],
                    event.record,
                    next_step,
                )
            if include_expiry or event.kind is not EventKind.EXPIRY:
                # One authoritative counter: the lifetime counter and the
                # per-call ``emitted`` / ``max_events`` bookkeeping count the
                # same events.  A suppressed expiry (include_expiry=False)
                # still updates the window but is not emitted, so it is not
                # counted — previously the lifetime counter drifted ahead of
                # ``emitted`` by one per suppressed expiry.
                emitted += 1
                self._n_events_emitted += 1
                yield event, delta

    def run(
        self, end_time: float | None = None, max_events: int | None = None
    ) -> int:
        """Apply events without yielding them; return the number applied."""
        count = 0
        for _ in self.events(end_time=end_time, max_events=max_events):
            count += 1
        return count

    # ------------------------------------------------------------------
    # Batched event engine
    # ------------------------------------------------------------------
    def iter_batches(
        self,
        end_time: float | None = None,
        max_events: int | None = None,
        batch_window: float | None = None,
    ) -> Iterator[DeltaBatch]:
        """Drain events in groups and yield one :class:`DeltaBatch` per group.

        Each batch contains every event (arrival, shift, expiry) whose fire
        time falls within ``batch_window`` of the group's first event, in the
        exact order — including tie-breaking — of the per-event path, with
        successor events scheduled as the group is drained so that chains
        within a group are respected.  Unlike :meth:`events`, the deltas are
        **not** applied to the window here: the consumer decides whether to
        scatter the whole batch at once (:meth:`TensorWindow.apply_batch`,
        pure replay) or interleave window updates with factor updates
        (:meth:`repro.core.base.ContinuousCPD.update_batch`).  Every yielded
        batch must therefore be applied exactly once; :meth:`run_batched`
        does this for you.

        Parameters
        ----------
        end_time:
            Stop before the first event that would fire after this time.
        max_events:
            Stop after this many events (a batch may be cut short to honour
            the cap).
        batch_window:
            Length of the grouping window, in stream time units.  Defaults to
            the tensor-unit period ``T``.  ``0.0`` groups only simultaneous
            events.
        """
        window_length = self._config.window_length
        period = self._config.period
        if batch_window is None:
            batch_window = period
        batch_window = float(batch_window)
        if batch_window < 0.0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if self._iterating:
            raise ConcurrentIterationError(
                "another events()/iter_batches() iteration is already active "
                "on this processor; a concurrent drain would corrupt the "
                "scheduler heap — exhaust or close the active iterator first"
            )
        self._iterating = True
        try:
            yield from self._iter_batches(end_time, max_events, batch_window)
        finally:
            self._iterating = False

    def _iter_batches(
        self,
        end_time: float | None,
        max_events: int | None,
        batch_window: float,
    ) -> Iterator[DeltaBatch]:
        window_length = self._config.window_length
        period = self._config.period
        scheduler = self._scheduler
        records = self._future_records
        kind_by_step = self._kind_by_step
        arrival_kind = EventKind.ARRIVAL
        newest_unit = window_length - 1
        emitted = 0
        while True:
            if max_events is not None and emitted >= max_events:
                return
            next_arrival = records[-1].time if records else None
            next_scheduled = scheduler.peek_time()
            if next_arrival is None and next_scheduled is None:
                return
            if next_scheduled is None:
                first_time = next_arrival
            elif next_arrival is None or next_scheduled <= next_arrival:
                first_time = next_scheduled
            else:
                first_time = next_arrival
            if end_time is not None and first_time > end_time:
                return
            group_end = first_time + batch_window
            if end_time is not None and end_time < group_end:
                group_end = end_time
            raw_events: list[tuple[float, int, EventKind, StreamRecord, int]] = []
            coordinates: list[tuple[int, ...]] = []
            values: list[float] = []
            budget = (
                max_events - emitted if max_events is not None else None
            )
            append_event = raw_events.append
            append_coordinate = coordinates.append
            append_value = values.append
            # Inlined drain: operate on the raw heap and a local sequence
            # counter (handed back below) to avoid per-event method calls.
            heap, sequence = scheduler.begin_drain()
            while budget is None or len(raw_events) < budget:
                if heap:
                    next_time = heap[0][0]
                    # Same tie rule as events(): scheduled shifts/expiries
                    # win ties against new arrivals.
                    take_scheduled = not records or next_time <= records[-1].time
                    if not take_scheduled:
                        next_time = records[-1].time
                elif records:
                    take_scheduled = False
                    next_time = records[-1].time
                else:
                    break
                if next_time > group_end:
                    break
                if take_scheduled:
                    entry = heappop(heap)
                    record = entry[3]
                    step = entry[4]
                else:
                    record = records.pop()
                    step = 0
                    entry = (record.time, sequence, arrival_kind, record, 0)
                    sequence += 1
                prefix = record.indices
                value = record.value
                if step == 0:
                    append_coordinate((*prefix, newest_unit))
                    append_value(value)
                elif step == window_length:
                    append_coordinate((*prefix, 0))
                    append_value(-value)
                else:
                    append_coordinate((*prefix, window_length - step))
                    append_value(-value)
                    append_coordinate((*prefix, window_length - step - 1))
                    append_value(value)
                next_step = step + 1
                if next_step <= window_length:
                    heappush(
                        heap,
                        (
                            record.time + next_step * period,
                            sequence,
                            kind_by_step[next_step],
                            record,
                            next_step,
                        ),
                    )
                    sequence += 1
                append_event(entry)
            scheduler.end_drain(sequence)
            if not raw_events:
                return
            emitted += len(raw_events)
            self._n_events_emitted += len(raw_events)
            yield DeltaBatch(
                raw_events, coordinates, values, window_length, trusted=True
            )

    def run_batched(
        self,
        model: "ContinuousCPD | None" = None,
        end_time: float | None = None,
        max_events: int | None = None,
        batch_window: float | None = None,
    ) -> int:
        """Replay events batch by batch; return the number of events applied.

        Without a ``model`` each batch is scattered into the window in one
        vectorized pass, producing a window bit-identical to :meth:`run`.
        With a ``model`` (a :class:`~repro.core.base.ContinuousCPD` that was
        initialised on :attr:`window`), each batch is handed to the model's
        ``update_batch``, which applies the window changes itself so that its
        factor updates observe exactly the per-event window states.
        """
        count = 0
        for batch in self.iter_batches(
            end_time=end_time, max_events=max_events, batch_window=batch_window
        ):
            if model is None:
                self._window.apply_batch(batch)
            else:
                model.update_batch(batch)
            count += batch.n_events
        return count


def bootstrap_window(
    stream: MultiAspectStream,
    config: WindowConfig,
    start_time: float | None = None,
) -> tuple[TensorWindow, ContinuousStreamProcessor]:
    """Convenience helper: build the initial window and its processor."""
    processor = ContinuousStreamProcessor(stream, config, start_time=start_time)
    return processor.window, processor
