"""Event-driven implementation of the continuous tensor model (Algorithm 1).

The processor replays a :class:`~repro.stream.stream.MultiAspectStream`
against a :class:`~repro.stream.window.TensorWindow`:

1. Records with timestamps up to the chosen ``start_time`` are aggregated
   directly into the initial window ``D(start_time, W)`` (and their remaining
   shift/expiry events are scheduled), so streaming algorithms can be
   initialised with a batch decomposition of a realistic window, exactly as
   in Section VI-A of the paper.
2. Records after ``start_time`` generate arrival events; every processed
   event schedules the record's next event ``T`` time units later, exactly as
   in Algorithm 1, so each record causes ``W + 1`` events in total.

The :meth:`ContinuousStreamProcessor.events` generator yields
``(event, delta)`` pairs in chronological order *after* applying the delta to
the window, so consumers always observe the up-to-date window ``X + ΔX``
together with the change ``ΔX`` — the exact inputs of Problem 2.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.exceptions import ConfigurationError
from repro.stream.deltas import Delta
from repro.stream.events import EventKind, StreamRecord, WindowEvent
from repro.stream.scheduler import EventScheduler
from repro.stream.stream import MultiAspectStream
from repro.stream.window import TensorWindow, WindowConfig

#: Relative slack used when assigning a timestamp to a tensor unit, guarding
#: against floating-point error when ``t - t_n`` is an exact multiple of ``T``.
_UNIT_EPSILON = 1e-9


class ContinuousStreamProcessor:
    """Replays a multi-aspect stream through the continuous tensor model.

    Parameters
    ----------
    stream:
        The input multi-aspect data stream.
    config:
        Window configuration (categorical mode sizes, ``W``, ``T``).
    start_time:
        The time ``t_0`` at which streaming starts.  Records with
        ``t_n <= t_0`` form the initial window; later records are replayed as
        events.  Defaults to ``stream.start_time + W * T`` so the initial
        window is fully populated.
    """

    def __init__(
        self,
        stream: MultiAspectStream,
        config: WindowConfig,
        start_time: float | None = None,
    ) -> None:
        if len(stream) == 0:
            raise ConfigurationError("cannot process an empty stream")
        if stream.mode_sizes != config.mode_sizes:
            raise ConfigurationError(
                f"stream mode sizes {stream.mode_sizes} do not match window "
                f"config {config.mode_sizes}"
            )
        self._stream = stream
        self._config = config
        if start_time is None:
            start_time = stream.start_time + config.span
        self._start_time = float(start_time)
        self._window = TensorWindow(config)
        self._scheduler = EventScheduler()
        self._n_events_emitted = 0
        self._future_records: list[StreamRecord] = []
        self._bootstrap()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def window(self) -> TensorWindow:
        """The tensor window, kept up to date as events are emitted."""
        return self._window

    @property
    def config(self) -> WindowConfig:
        """Window configuration."""
        return self._config

    @property
    def start_time(self) -> float:
        """The streaming start time ``t_0``."""
        return self._start_time

    @property
    def n_events_emitted(self) -> int:
        """Number of events emitted so far."""
        return self._n_events_emitted

    @property
    def n_pending_records(self) -> int:
        """Number of stream records not yet arrived."""
        return len(self._future_records)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _unit_offset(self, record_time: float, now: float) -> int:
        """Number of full periods between ``record_time`` and ``now`` (0 = newest)."""
        elapsed = now - record_time
        return int(math.floor(elapsed / self._config.period + _UNIT_EPSILON))

    def _bootstrap(self) -> None:
        window_length = self._config.window_length
        period = self._config.period
        for record in self._stream:
            if record.time > self._start_time:
                self._future_records.append(record)
                continue
            offset = self._unit_offset(record.time, self._start_time)
            if offset >= window_length:
                continue  # already expired before streaming starts
            unit = window_length - 1 - offset
            self._window.add_entry(record.indices, unit, record.value)
            next_step = offset + 1
            if next_step <= window_length:
                next_time = record.time + next_step * period
                kind = WindowEvent.kind_for_step(next_step, window_length)
                self._scheduler.schedule(next_time, kind, record, next_step)
        # Future records are consumed front-to-back as arrivals.
        self._future_records.reverse()  # pop() from the end is O(1)

    # ------------------------------------------------------------------
    # Event generation
    # ------------------------------------------------------------------
    def events(
        self,
        end_time: float | None = None,
        max_events: int | None = None,
        include_expiry: bool = True,
    ) -> Iterator[tuple[WindowEvent, Delta]]:
        """Yield ``(event, delta)`` pairs in chronological order.

        The delta is applied to :attr:`window` *before* the pair is yielded.

        Parameters
        ----------
        end_time:
            Stop once the next event would fire after this time.
        max_events:
            Stop after this many events (counting only yielded events).
        include_expiry:
            When False, expiry events still update the window but are not
            yielded to the consumer.  The paper's algorithms handle expiries
            exactly like other events, so the default is True; the flag exists
            for ablation experiments.
        """
        window_length = self._config.window_length
        period = self._config.period
        emitted = 0
        while True:
            if max_events is not None and emitted >= max_events:
                return
            next_arrival_time = (
                self._future_records[-1].time if self._future_records else None
            )
            next_scheduled_time = self._scheduler.peek_time()
            if next_arrival_time is None and next_scheduled_time is None:
                return
            # Scheduled (shift/expiry) events win ties against new arrivals so
            # old mass has moved before a simultaneous new arrival is applied.
            take_scheduled = next_arrival_time is None or (
                next_scheduled_time is not None
                and next_scheduled_time <= next_arrival_time
            )
            if take_scheduled:
                event = self._scheduler.pop()
            else:
                record = self._future_records.pop()
                event = self._scheduler.schedule(
                    record.time, EventKind.ARRIVAL, record, step=0
                )
                self._scheduler.pop()  # immediately consume the arrival we queued
            if end_time is not None and event.time > end_time:
                # Put the event back conceptually by re-scheduling it; callers
                # may resume with a later end_time.
                self._scheduler.schedule(
                    event.time, event.kind, event.record, event.step
                )
                if not take_scheduled:
                    # The arrival was popped from the record list; keep it in
                    # the scheduler so it is not lost (already re-scheduled).
                    pass
                return
            delta = Delta.from_event(event, window_length)
            self._window.apply_delta(delta)
            next_step = event.step + 1
            if next_step <= window_length:
                kind = WindowEvent.kind_for_step(next_step, window_length)
                self._scheduler.schedule(
                    event.record.time + next_step * period,
                    kind,
                    event.record,
                    next_step,
                )
            self._n_events_emitted += 1
            if include_expiry or event.kind is not EventKind.EXPIRY:
                emitted += 1
                yield event, delta

    def run(
        self, end_time: float | None = None, max_events: int | None = None
    ) -> int:
        """Apply events without yielding them; return the number applied."""
        count = 0
        for _ in self.events(end_time=end_time, max_events=max_events):
            count += 1
        return count


def bootstrap_window(
    stream: MultiAspectStream,
    config: WindowConfig,
    start_time: float | None = None,
) -> tuple[TensorWindow, ContinuousStreamProcessor]:
    """Convenience helper: build the initial window and its processor."""
    processor = ContinuousStreamProcessor(stream, config, start_time=start_time)
    return processor.window, processor
