"""Deterministic event scheduler for the continuous tensor model.

A small wrapper around :mod:`heapq` that assigns every pushed event a
monotonically increasing sequence number, so events firing at the same time
are delivered in the order they were scheduled.  This mirrors the
"schedule the (w+1)-th update" bookkeeping of Algorithm 1.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.stream.events import EventKind, StreamRecord, WindowEvent


class EventScheduler:
    """Priority queue of :class:`~repro.stream.events.WindowEvent` objects."""

    def __init__(self) -> None:
        self._heap: list[WindowEvent] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self, time: float, kind: EventKind, record: StreamRecord, step: int
    ) -> WindowEvent:
        """Create, enqueue, and return a new event."""
        event = WindowEvent(
            time=float(time),
            sequence=self._sequence,
            kind=kind,
            record=record,
            step=int(step),
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or None if empty."""
        return self._heap[0].time if self._heap else None

    def pop(self) -> WindowEvent:
        """Remove and return the earliest pending event."""
        return heapq.heappop(self._heap)

    def pop_until(self, time: float) -> Iterator[WindowEvent]:
        """Yield (and remove) every pending event with ``event.time <= time``."""
        while self._heap and self._heap[0].time <= time:
            yield heapq.heappop(self._heap)

    def drain(self) -> Iterator[WindowEvent]:
        """Yield (and remove) every pending event in time order."""
        while self._heap:
            yield heapq.heappop(self._heap)
