"""Deterministic event scheduler for the continuous tensor model.

A small wrapper around :mod:`heapq` that assigns every pushed event a
monotonically increasing sequence number, so events firing at the same time
are delivered in the order they were scheduled.  This mirrors the
"schedule the (w+1)-th update" bookkeeping of Algorithm 1.

Internally the heap stores plain ``(time, sequence, kind, record, step)``
tuples instead of :class:`~repro.stream.events.WindowEvent` objects: tuple
comparison short-circuits on ``(time, sequence)`` at C speed, which makes
heap maintenance several times cheaper than comparing dataclasses.  The
batched event engine (:meth:`ContinuousStreamProcessor.iter_batches`) drains
these raw entries directly via :meth:`begin_drain`/:meth:`end_drain`; the
classic per-event API (:meth:`pop`) materialises a :class:`WindowEvent` per
entry.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator

from repro.stream.events import EventKind, StreamRecord, WindowEvent

#: Raw heap entry layout: ``(time, sequence, kind, record, step)``.  The
#: sequence number is unique, so comparisons never reach the ``kind`` field
#: (which is not orderable).
RawEvent = tuple[float, int, EventKind, StreamRecord, int]


class EventScheduler:
    """Priority queue of :class:`~repro.stream.events.WindowEvent` objects."""

    def __init__(self) -> None:
        self._heap: list[RawEvent] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push_raw(
        self, time: float, kind: EventKind, record: StreamRecord, step: int
    ) -> RawEvent:
        """Enqueue a raw heap entry (no :class:`WindowEvent` materialised)."""
        entry: RawEvent = (float(time), self._sequence, kind, record, int(step))
        self._sequence += 1
        heapq.heappush(self._heap, entry)
        return entry

    def schedule(
        self, time: float, kind: EventKind, record: StreamRecord, step: int
    ) -> WindowEvent:
        """Create, enqueue, and return a new event."""
        entry = self.push_raw(time, kind, record, step)
        return WindowEvent(
            time=entry[0], sequence=entry[1], kind=kind, record=record, step=entry[4]
        )

    def begin_drain(self) -> tuple[list[RawEvent], int]:
        """Hand the raw heap and sequence counter to an inlined drain loop.

        The batched event engine pops and pushes thousands of entries per
        batch; going through :meth:`pop`/:meth:`push_raw` costs a Python
        method call per entry.  ``begin_drain`` returns ``(heap, sequence)``
        so the drain can use :func:`heapq.heappush`/:func:`heapq.heappop`
        directly and allocate sequence numbers from a local counter; the
        caller must hand the counter back via :meth:`end_drain` before any
        other scheduler method is used.
        """
        return self._heap, self._sequence

    def end_drain(self, sequence: int) -> None:
        """Restore the sequence counter after an inlined drain loop."""
        if sequence < self._sequence:
            raise ValueError(
                f"sequence counter may only advance ({sequence} < {self._sequence})"
            )
        self._sequence = sequence

    def snapshot(self) -> tuple[tuple[RawEvent, ...], int]:
        """Return ``(heap entries, sequence counter)`` for checkpointing.

        The entries are returned in raw heap-array order (NOT sorted): the
        list *is* a valid binary heap, so restoring it verbatim via
        :meth:`from_snapshot` reproduces the exact pop order — including
        tie-breaking — of the original scheduler.
        """
        return tuple(self._heap), self._sequence

    @classmethod
    def from_snapshot(
        cls, entries: Iterable[RawEvent], sequence: int
    ) -> "EventScheduler":
        """Rebuild a scheduler from :meth:`snapshot` output.

        ``entries`` must be in the heap-array order produced by
        :meth:`snapshot`; they are adopted verbatim (no re-heapify), which is
        what makes the restored pop order bit-identical.
        """
        scheduler = cls()
        scheduler._heap = list(entries)
        scheduler._sequence = int(sequence)
        return scheduler

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> WindowEvent:
        """Remove and return the earliest pending event."""
        time, sequence, kind, record, step = heapq.heappop(self._heap)
        return WindowEvent(
            time=time, sequence=sequence, kind=kind, record=record, step=step
        )

    def pop_until(self, time: float) -> Iterator[WindowEvent]:
        """Yield (and remove) every pending event with ``event.time <= time``."""
        while self._heap and self._heap[0][0] <= time:
            yield self.pop()

    def drain(self) -> Iterator[WindowEvent]:
        """Yield (and remove) every pending event in time order."""
        while self._heap:
            yield self.pop()
