"""Multi-aspect data streams (Definition 1 of the paper).

A :class:`MultiAspectStream` is a chronological sequence of
:class:`~repro.stream.events.StreamRecord` objects together with the lengths
of the categorical modes.  It can be built from in-memory records, from
columnar arrays, or from a CSV file of ``i_1, ..., i_{M-1}, value, time``
rows.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

import numpy as np

from repro.exceptions import IndexOutOfBoundsError, ShapeError, StreamOrderError
from repro.stream.events import StreamRecord


class MultiAspectStream:
    """A chronological sequence of timestamped multi-aspect tuples.

    Parameters
    ----------
    records:
        Stream records.  They must be sorted by time (ties allowed); pass
        ``sort=True`` to sort a non-chronological input.
    mode_sizes:
        Lengths ``(N_1, ..., N_{M-1})`` of the categorical modes.  When
        omitted they are inferred as ``max index + 1`` per mode.
    mode_names:
        Optional human-readable mode names (e.g. ``("source", "destination")``).
    sort:
        Sort the records by time instead of raising on out-of-order input.
    """

    def __init__(
        self,
        records: Iterable[StreamRecord],
        mode_sizes: Sequence[int] | None = None,
        mode_names: Sequence[str] | None = None,
        sort: bool = False,
    ) -> None:
        records = list(records)
        if sort:
            records.sort(key=lambda record: record.time)
        self._records: list[StreamRecord] = records
        self._validate_order()
        self._n_categorical = self._infer_n_categorical()
        self._mode_sizes = self._resolve_mode_sizes(mode_sizes)
        self._mode_names = self._resolve_mode_names(mode_names)
        self._validate_indices()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        indices: np.ndarray,
        values: np.ndarray,
        times: np.ndarray,
        mode_sizes: Sequence[int] | None = None,
        mode_names: Sequence[str] | None = None,
        sort: bool = False,
    ) -> "MultiAspectStream":
        """Build a stream from an ``(n, M-1)`` index array plus value/time arrays."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        times = np.asarray(times, dtype=np.float64)
        if indices.ndim != 2:
            raise ShapeError("indices must be a 2-D array of shape (n, M-1)")
        if not (indices.shape[0] == values.shape[0] == times.shape[0]):
            raise ShapeError("indices, values, and times must have equal lengths")
        records = [
            StreamRecord(tuple(int(i) for i in row), float(value), float(time))
            for row, value, time in zip(indices, values, times)
        ]
        return cls(records, mode_sizes=mode_sizes, mode_names=mode_names, sort=sort)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        mode_sizes: Sequence[int] | None = None,
        mode_names: Sequence[str] | None = None,
        has_header: bool = True,
        sort: bool = True,
    ) -> "MultiAspectStream":
        """Load a stream from a CSV of ``i_1, ..., i_{M-1}, value, time`` rows."""
        records: list[StreamRecord] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            rows = iter(reader)
            if has_header:
                next(rows, None)
            for row in rows:
                if not row:
                    continue
                *index_columns, value, time = row
                records.append(
                    StreamRecord(
                        tuple(int(column) for column in index_columns),
                        float(value),
                        float(time),
                    )
                )
        return cls(records, mode_sizes=mode_sizes, mode_names=mode_names, sort=sort)

    def to_csv(self, path: str | Path, mode_header: bool = True) -> None:
        """Write the stream to CSV (inverse of :meth:`from_csv`)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if mode_header:
                writer.writerow([*self._mode_names, "value", "time"])
            for record in self._records:
                writer.writerow([*record.indices, record.value, record.time])

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_order(self) -> None:
        for previous, current in zip(self._records, self._records[1:]):
            if current.time < previous.time:
                raise StreamOrderError(
                    "stream records must be chronological; pass sort=True to sort"
                )

    def _infer_n_categorical(self) -> int:
        if not self._records:
            return 0
        first = len(self._records[0].indices)
        for record in self._records:
            if len(record.indices) != first:
                raise ShapeError(
                    "all stream records must have the same number of categorical indices"
                )
        return first

    def _resolve_mode_sizes(self, mode_sizes: Sequence[int] | None) -> tuple[int, ...]:
        if mode_sizes is not None:
            sizes = tuple(int(n) for n in mode_sizes)
            if self._records and len(sizes) != self._n_categorical:
                raise ShapeError(
                    f"mode_sizes has {len(sizes)} entries but records have "
                    f"{self._n_categorical} categorical indices"
                )
            if any(n <= 0 for n in sizes):
                raise ShapeError(f"mode sizes must be positive, got {sizes}")
            return sizes
        if not self._records:
            return ()
        maxima = [0] * self._n_categorical
        for record in self._records:
            for mode, index in enumerate(record.indices):
                maxima[mode] = max(maxima[mode], index)
        return tuple(maximum + 1 for maximum in maxima)

    def _resolve_mode_names(self, mode_names: Sequence[str] | None) -> tuple[str, ...]:
        if mode_names is None:
            return tuple(f"mode_{m}" for m in range(len(self._mode_sizes)))
        names = tuple(str(name) for name in mode_names)
        if len(names) != len(self._mode_sizes):
            raise ShapeError(
                f"{len(names)} mode names for {len(self._mode_sizes)} categorical modes"
            )
        return names

    def _validate_indices(self) -> None:
        for record in self._records:
            for mode, (index, size) in enumerate(zip(record.indices, self._mode_sizes)):
                if index >= size:
                    raise IndexOutOfBoundsError(
                        f"record index {index} exceeds size {size} of mode {mode}"
                    )

    # ------------------------------------------------------------------
    # Properties and access
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[StreamRecord]:
        """The underlying chronological list of records."""
        return self._records

    @property
    def mode_sizes(self) -> tuple[int, ...]:
        """Lengths of the categorical modes ``(N_1, ..., N_{M-1})``."""
        return self._mode_sizes

    @property
    def mode_names(self) -> tuple[str, ...]:
        """Human-readable categorical mode names."""
        return self._mode_names

    @property
    def order(self) -> int:
        """Tensor order ``M`` = categorical modes + the time mode."""
        return len(self._mode_sizes) + 1

    @property
    def start_time(self) -> float:
        """Timestamp of the first record."""
        if not self._records:
            raise StreamOrderError("the stream is empty")
        return self._records[0].time

    @property
    def end_time(self) -> float:
        """Timestamp of the last record."""
        if not self._records:
            raise StreamOrderError("the stream is empty")
        return self._records[-1].time

    @property
    def duration(self) -> float:
        """Time span covered by the stream."""
        return self.end_time - self.start_time

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[StreamRecord]:
        return iter(self._records)

    def __getitem__(self, position: int) -> StreamRecord:
        return self._records[position]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiAspectStream(n_records={len(self)}, mode_sizes={self._mode_sizes})"
        )

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def between(self, start: float, end: float) -> "MultiAspectStream":
        """Return the sub-stream with timestamps in the half-open interval ``(start, end]``."""
        selected = [r for r in self._records if start < r.time <= end]
        return MultiAspectStream(
            selected, mode_sizes=self._mode_sizes, mode_names=self._mode_names
        )

    def head(self, n_records: int) -> "MultiAspectStream":
        """Return the first ``n_records`` records as a new stream."""
        return MultiAspectStream(
            self._records[: int(n_records)],
            mode_sizes=self._mode_sizes,
            mode_names=self._mode_names,
        )

    def value_total(self) -> float:
        """Sum of all record values."""
        return float(sum(record.value for record in self._records))

    def max_abs_value(self) -> float:
        """Largest absolute record value (used by anomaly injection)."""
        if not self._records:
            return 0.0
        return float(max(abs(record.value) for record in self._records))
