"""The tensor window ``D(t, W)`` of Definition 4, stored sparsely.

A :class:`TensorWindow` is the order-``M`` sparse tensor obtained by
concatenating the ``W`` most recent tensor units.  The window itself is
agnostic of wall-clock time: the event-driven processor
(:class:`repro.stream.processor.ContinuousStreamProcessor`) decides *when*
entries move; the window merely applies the resulting
:class:`~repro.stream.deltas.Delta` objects — one at a time via
:meth:`TensorWindow.apply_delta`, or a whole coalesced
:class:`~repro.stream.deltas.DeltaBatch` at once via
:meth:`TensorWindow.apply_batch` (bit-identical result, one grouped
scatter-add) — and answers queries about its contents.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator, Sequence

from repro.exceptions import ConfigurationError, ShapeError
from repro.stream.deltas import Delta, DeltaBatch
from repro.tensor.sparse import SparseTensor

Coordinate = tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class WindowConfig:
    """Static configuration of a tensor window.

    Attributes
    ----------
    mode_sizes:
        Lengths of the categorical modes ``(N_1, ..., N_{M-1})``.
    window_length:
        Number of tensor units ``W`` in the window (the time-mode length).
    period:
        Length ``T`` of one tensor unit, in the stream's time scale.
    """

    mode_sizes: tuple[int, ...]
    window_length: int
    period: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mode_sizes", tuple(int(n) for n in self.mode_sizes)
        )
        if len(self.mode_sizes) == 0:
            raise ConfigurationError("a window needs at least one categorical mode")
        if any(n <= 0 for n in self.mode_sizes):
            raise ConfigurationError(
                f"all categorical mode sizes must be positive, got {self.mode_sizes}"
            )
        if int(self.window_length) <= 0:
            raise ConfigurationError(
                f"window_length must be positive, got {self.window_length}"
            )
        object.__setattr__(self, "window_length", int(self.window_length))
        if float(self.period) <= 0.0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        object.__setattr__(self, "period", float(self.period))

    @property
    def shape(self) -> tuple[int, ...]:
        """Full shape of the window tensor: categorical modes then time mode."""
        return (*self.mode_sizes, self.window_length)

    @property
    def order(self) -> int:
        """Tensor order ``M``."""
        return len(self.mode_sizes) + 1

    @property
    def time_mode(self) -> int:
        """Index of the time mode (always the last mode)."""
        return len(self.mode_sizes)

    @property
    def span(self) -> float:
        """Total time span covered by the window, ``W * T``."""
        return self.window_length * self.period


class TensorWindow:
    """Sparse tensor window ``D(t, W)`` with delta-application bookkeeping."""

    def __init__(self, config: WindowConfig) -> None:
        self._config = config
        self._tensor = SparseTensor(config.shape)
        self._n_deltas_applied = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def config(self) -> WindowConfig:
        """Static window configuration."""
        return self._config

    @property
    def tensor(self) -> SparseTensor:
        """The underlying sparse tensor (mutated in place by deltas)."""
        return self._tensor

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the window tensor."""
        return self._config.shape

    @property
    def order(self) -> int:
        """Tensor order ``M``."""
        return self._config.order

    @property
    def window_length(self) -> int:
        """Number of tensor units ``W``."""
        return self._config.window_length

    @property
    def period(self) -> float:
        """Unit length ``T``."""
        return self._config.period

    @property
    def nnz(self) -> int:
        """Number of non-zero entries in the window."""
        return self._tensor.nnz

    @property
    def n_deltas_applied(self) -> int:
        """Number of deltas applied so far (diagnostics)."""
        return self._n_deltas_applied

    @property
    def newest_unit_index(self) -> int:
        """Time-mode index of the newest tensor unit (``W - 1``)."""
        return self._config.window_length - 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_delta(self, delta: Delta) -> None:
        """Apply the entry changes of one event to the window."""
        for coordinate, value in delta.entries:
            if len(coordinate) != self.order:
                raise ShapeError(
                    f"delta coordinate {coordinate} does not match window order {self.order}"
                )
            self._tensor.add(coordinate, value)
        self._n_deltas_applied += 1

    def apply_entry_changes(
        self,
        entries: Sequence[tuple[Coordinate, float]],
        trusted: bool = False,
    ) -> None:
        """Apply one event's entry changes given as ``((coordinate, value), ...)``.

        Equivalent to :meth:`apply_delta` on a delta carrying ``entries``;
        consumers of :meth:`DeltaBatch.entry_groups` use it to mutate the
        window per event without materialising ``Delta`` objects.  With
        ``trusted=True`` (engine-built batches: coordinates validated by
        construction) per-entry validation is skipped.
        """
        tensor = self._tensor
        if trusted:
            for coordinate, value in entries:
                tensor._add_trusted(coordinate, value)
        else:
            order = self.order
            for coordinate, value in entries:
                if len(coordinate) != order:
                    raise ShapeError(
                        f"entry coordinate {coordinate} does not match window "
                        f"order {order}"
                    )
                tensor.add(coordinate, value)
        self._n_deltas_applied += 1

    def apply_batch(self, batch: DeltaBatch) -> None:
        """Apply a coalesced batch of event deltas in one scatter-add.

        Equivalent — bit for bit — to calling :meth:`apply_delta` for each of
        the batch's per-event deltas in order (see
        :meth:`repro.tensor.sparse.SparseTensor.add_batch` for why), but each
        distinct coordinate costs one storage update regardless of how many
        of the batch's events touch it.
        """
        if batch.trusted:
            # Batches built by the event engine carry validated int-tuple
            # coordinates, so per-entry validation is skipped.
            self._tensor._add_batch_trusted(batch.coordinates, batch.raw_values)
        else:
            self._tensor.add_batch(batch.coordinates, batch.raw_values)
        self._n_deltas_applied += batch.n_events

    def add_entry(self, categorical: Sequence[int], unit: int, value: float) -> None:
        """Add ``value`` at (categorical indices, time-unit ``unit``).

        Used when bootstrapping the initial window from historical records.
        """
        coordinate = (*tuple(int(i) for i in categorical), int(unit))
        self._tensor.add(coordinate, value)

    def clear(self) -> None:
        """Reset the window to an all-zero tensor."""
        self._tensor = SparseTensor(self._config.shape)
        self._n_deltas_applied = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def unit_entries(self, unit: int) -> Iterator[tuple[Coordinate, float]]:
        """Iterate over non-zeros of the ``unit``-th tensor unit."""
        if not 0 <= unit < self.window_length:
            raise ShapeError(
                f"unit {unit} out of range for window length {self.window_length}"
            )
        return self._tensor.mode_slice(self._config.time_mode, unit)

    def unit_nnz(self, unit: int) -> int:
        """Number of non-zeros in the ``unit``-th tensor unit."""
        return self._tensor.degree(self._config.time_mode, unit)

    def norm(self) -> float:
        """Frobenius norm of the window."""
        return self._tensor.norm()

    def total(self) -> float:
        """Sum of all window entries (mass conservation checks)."""
        return self._tensor.total()

    def copy(self) -> "TensorWindow":
        """Deep copy (used by experiments that branch the same state)."""
        clone = TensorWindow(self._config)
        clone._tensor = self._tensor.copy()
        clone._n_deltas_applied = self._n_deltas_applied
        return clone

    @classmethod
    def from_tensor(
        cls,
        config: WindowConfig,
        tensor: SparseTensor,
        n_deltas_applied: int = 0,
    ) -> "TensorWindow":
        """Adopt an existing tensor as the window state (checkpoint restore).

        ``tensor`` is adopted by reference, not copied; its shape must equal
        ``config.shape``.
        """
        if tensor.shape != config.shape:
            raise ShapeError(
                f"tensor shape {tensor.shape} does not match window shape "
                f"{config.shape}"
            )
        window = cls(config)
        window._tensor = tensor
        window._n_deltas_applied = int(n_deltas_applied)
        return window
