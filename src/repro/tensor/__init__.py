"""Sparse-tensor substrate used by every other subsystem.

The classes and functions here are deliberately self-contained: the streaming
model (:mod:`repro.stream`), the SliceNStitch algorithms (:mod:`repro.core`)
and the baselines (:mod:`repro.baselines`) all operate on
:class:`~repro.tensor.sparse.SparseTensor` windows and
:class:`~repro.tensor.kruskal.KruskalTensor` factorizations.
"""

from repro.tensor.sparse import SparseTensor
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.products import (
    hadamard,
    hadamard_all,
    khatri_rao,
    khatri_rao_all,
    outer,
)
from repro.tensor.matricization import (
    fold,
    unfold_dense,
    unfold_sparse,
)
from repro.tensor.random import (
    random_factors,
    random_kruskal,
    random_sparse_tensor,
)

__all__ = [
    "SparseTensor",
    "KruskalTensor",
    "hadamard",
    "hadamard_all",
    "khatri_rao",
    "khatri_rao_all",
    "outer",
    "fold",
    "unfold_dense",
    "unfold_sparse",
    "random_factors",
    "random_kruskal",
    "random_sparse_tensor",
]
