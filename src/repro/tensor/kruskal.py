"""Kruskal (CP-factorized) tensors.

A rank-``R`` CP decomposition of an order-``M`` tensor is stored as ``M``
factor matrices ``A(m)`` of shape ``(N_m, R)`` plus optional column weights
``lambda`` (Eq. (1) of the paper).  All reductions needed by the evaluation
metrics — reconstruction values at sparse coordinates, the Frobenius norm of
the reconstruction, the inner product with a sparse tensor — are computed
without densifying, using the Gram-matrix identities standard in the CP
literature.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import RankError, ShapeError
from repro.tensor.products import hadamard_all, khatri_rao_all, gram
from repro.tensor.matricization import kr_order
from repro.tensor.sparse import SparseTensor


class KruskalTensor:
    """Factorized tensor ``[[lambda; A(1), ..., A(M)]]``.

    Parameters
    ----------
    factors:
        Sequence of ``M`` factor matrices, each ``(N_m, R)``.
    weights:
        Optional column weights of length ``R``.  ``None`` means all ones.
    """

    __slots__ = ("factors", "weights")

    def __init__(
        self,
        factors: Sequence[np.ndarray],
        weights: np.ndarray | None = None,
    ) -> None:
        if len(factors) == 0:
            raise ShapeError("a Kruskal tensor needs at least one factor matrix")
        factors = [np.array(f, dtype=np.float64, copy=True) for f in factors]
        rank = factors[0].shape[1] if factors[0].ndim == 2 else -1
        for index, factor in enumerate(factors):
            if factor.ndim != 2:
                raise ShapeError(f"factor {index} is not a matrix")
            if factor.shape[1] != rank:
                raise RankError(
                    f"factor {index} has {factor.shape[1]} columns, expected {rank}"
                )
        if rank <= 0:
            raise RankError(f"rank must be positive, got {rank}")
        if weights is None:
            weights = np.ones(rank, dtype=np.float64)
        else:
            weights = np.array(weights, dtype=np.float64, copy=True)
            if weights.shape != (rank,):
                raise RankError(
                    f"weights must have shape ({rank},), got {weights.shape}"
                )
        self.factors: list[np.ndarray] = factors
        self.weights: np.ndarray = weights

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.factors)

    @property
    def rank(self) -> int:
        """CP rank ``R``."""
        return self.factors[0].shape[1]

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the reconstructed tensor."""
        return tuple(factor.shape[0] for factor in self.factors)

    @property
    def n_parameters(self) -> int:
        """Number of parameters: entries of all factor matrices (Fig. 1d)."""
        return int(sum(factor.size for factor in self.factors))

    def copy(self) -> "KruskalTensor":
        """Deep copy of factors and weights."""
        return KruskalTensor([f.copy() for f in self.factors], self.weights.copy())

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def value_at(self, coordinate: Sequence[int]) -> float:
        """Reconstructed value at a single coordinate."""
        if len(coordinate) != self.order:
            raise ShapeError(
                f"coordinate of length {len(coordinate)} for order-{self.order} tensor"
            )
        product = self.weights.copy()
        for factor, index in zip(self.factors, coordinate):
            product = product * factor[int(index), :]
        return float(product.sum())

    def values_at(self, coordinates: np.ndarray) -> np.ndarray:
        """Reconstructed values at an ``(n, M)`` array of coordinates."""
        coordinates = np.asarray(coordinates, dtype=np.int64)
        if coordinates.size == 0:
            return np.zeros(0, dtype=np.float64)
        if coordinates.ndim != 2 or coordinates.shape[1] != self.order:
            raise ShapeError(
                f"expected an (n, {self.order}) coordinate array, got {coordinates.shape}"
            )
        product = np.broadcast_to(
            self.weights, (coordinates.shape[0], self.rank)
        ).copy()
        for mode, factor in enumerate(self.factors):
            product *= factor[coordinates[:, mode], :]
        return product.sum(axis=1)

    def to_dense(self) -> np.ndarray:
        """Materialise the full reconstruction (tests / tiny tensors only)."""
        order = self.order
        weighted = self.factors[0] * self.weights[None, :]
        if order == 1:
            return weighted.sum(axis=1)
        kr = khatri_rao_all([self.factors[m] for m in kr_order(order, 0)])
        unfolded = weighted @ kr.T
        rest = [self.shape[m] for m in range(order) if m != 0]
        moved = unfolded.reshape([self.shape[0]] + rest, order="F")
        return moved

    # ------------------------------------------------------------------
    # Reductions used by the fitness metric
    # ------------------------------------------------------------------
    def squared_norm(self) -> float:
        """``||X_hat||_F^2`` via the Gram-matrix identity.

        ``||[[lambda; A(1..M)]]||^2 = lambda' (*_m A(m)'A(m)) lambda``.
        """
        grams = hadamard_all([gram(factor) for factor in self.factors])
        return float(self.weights @ grams @ self.weights)

    def norm(self) -> float:
        """``||X_hat||_F``."""
        return float(np.sqrt(max(self.squared_norm(), 0.0)))

    def inner_with_sparse(self, tensor: SparseTensor) -> float:
        """Inner product ``<X_hat, X>`` with a sparse tensor of the same shape."""
        if tensor.shape != self.shape:
            raise ShapeError(
                f"shape mismatch: Kruskal {self.shape} vs sparse {tensor.shape}"
            )
        indices, values = tensor.to_coo_arrays()
        if values.size == 0:
            return 0.0
        return float(np.dot(self.values_at(indices), values))

    def residual_squared_norm(self, tensor: SparseTensor) -> float:
        """``||X - X_hat||_F^2`` for sparse ``X`` without densifying."""
        return max(
            tensor.squared_norm()
            - 2.0 * self.inner_with_sparse(tensor)
            + self.squared_norm(),
            0.0,
        )

    def fitness(self, tensor: SparseTensor) -> float:
        """Fitness ``1 - ||X - X_hat||_F / ||X||_F`` (Section VI-A)."""
        denominator = tensor.norm()
        if denominator == 0.0:
            return 1.0 if self.squared_norm() == 0.0 else float("-inf")
        return 1.0 - np.sqrt(self.residual_squared_norm(tensor)) / denominator

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def normalize(self) -> "KruskalTensor":
        """Return a copy with unit-norm factor columns and weights absorbing scale."""
        factors = []
        weights = self.weights.copy()
        for factor in self.factors:
            norms = np.linalg.norm(factor, axis=0)
            safe = np.where(norms > 0.0, norms, 1.0)
            factors.append(factor / safe)
            weights = weights * norms
        return KruskalTensor(factors, weights)

    def absorb_weights(self) -> "KruskalTensor":
        """Return a copy with all-ones weights, scale folded into the first factor."""
        factors = [f.copy() for f in self.factors]
        factors[0] = factors[0] * self.weights[None, :]
        return KruskalTensor(factors, np.ones(self.rank, dtype=np.float64))
