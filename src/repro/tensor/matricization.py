"""Mode-``m`` matricization (unfolding) of dense and sparse tensors.

We follow the Kolda & Bader convention used by the paper: the mode-``m``
unfolding ``X_(m)`` has shape ``(N_m, prod_{n != m} N_n)`` and the column
index of entry ``(i_1, ..., i_M)`` is

    j = sum_{n != m} i_n * prod_{k != m, k < n} N_k

i.e. the non-``m`` indices are ranked with the *earlier* modes varying
fastest.  With this convention the identity
``[[A(1), ..., A(M)]]_(m) = A(m) (KR_{n != m, reversed} A(n))'`` holds when the
Khatri-Rao product is taken over the other modes in reverse order, matching
:func:`repro.tensor.products.khatri_rao_all` applied to
``[A(M), ..., A(m+1), A(m-1), ..., A(1)]``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.tensor.sparse import SparseTensor


def _column_strides(shape: Sequence[int], mode: int) -> list[int]:
    """Stride of each non-``mode`` index in the unfolded column coordinate."""
    strides = []
    running = 1
    for axis, length in enumerate(shape):
        if axis == mode:
            strides.append(0)
            continue
        strides.append(running)
        running *= length
    return strides


def column_of(coordinate: Sequence[int], shape: Sequence[int], mode: int) -> int:
    """Column index of ``coordinate`` in the mode-``mode`` unfolding."""
    strides = _column_strides(shape, mode)
    return int(sum(int(i) * s for i, s in zip(coordinate, strides)))


def unfold_dense(array: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of a dense tensor."""
    array = np.asarray(array, dtype=np.float64)
    if not 0 <= mode < array.ndim:
        raise ShapeError(f"mode {mode} out of range for order-{array.ndim} tensor")
    # Move the unfolding mode to the front, then flatten the rest in
    # Fortran order so that earlier modes vary fastest (Kolda & Bader).
    moved = np.moveaxis(array, mode, 0)
    return moved.reshape(moved.shape[0], -1, order="F")


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold_dense`."""
    shape = tuple(int(n) for n in shape)
    if not 0 <= mode < len(shape):
        raise ShapeError(f"mode {mode} out of range for shape {shape}")
    matrix = np.asarray(matrix, dtype=np.float64)
    rest = [length for axis, length in enumerate(shape) if axis != mode]
    moved = matrix.reshape([shape[mode]] + rest, order="F")
    return np.moveaxis(moved, 0, mode)


def unfold_sparse(tensor: SparseTensor, mode: int) -> sp.csr_matrix:
    """Mode-``mode`` unfolding of a sparse tensor as a SciPy CSR matrix."""
    shape = tensor.shape
    if not 0 <= mode < tensor.order:
        raise ShapeError(f"mode {mode} out of range for order-{tensor.order} tensor")
    n_rows = shape[mode]
    n_cols = 1
    for axis, length in enumerate(shape):
        if axis != mode:
            n_cols *= length
    if tensor.nnz == 0:
        return sp.csr_matrix((n_rows, n_cols), dtype=np.float64)
    strides = _column_strides(shape, mode)
    rows = np.empty(tensor.nnz, dtype=np.int64)
    cols = np.empty(tensor.nnz, dtype=np.int64)
    values = np.empty(tensor.nnz, dtype=np.float64)
    for position, (coordinate, value) in enumerate(tensor.items()):
        rows[position] = coordinate[mode]
        cols[position] = sum(i * s for i, s in zip(coordinate, strides))
        values[position] = value
    return sp.csr_matrix((values, (rows, cols)), shape=(n_rows, n_cols))


def kr_order(order: int, mode: int) -> list[int]:
    """Mode ordering whose Khatri-Rao product matches :func:`unfold_dense`.

    With earlier modes varying fastest in the column index, the matching
    Khatri-Rao factor is ``A(M) ⊙ ... ⊙ A(m+1) ⊙ A(m-1) ⊙ ... ⊙ A(1)``, i.e.
    the other modes in decreasing order.
    """
    return [m for m in range(order - 1, -1, -1) if m != mode]
