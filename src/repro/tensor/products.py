"""Matrix products used throughout CP decomposition.

The paper (Table I) uses the Khatri-Rao product (column-wise Kronecker,
written with a circled dot) and the Hadamard product (element-wise, written
with an asterisk).  Both are provided here together with the vector outer
product used to build rank-one tensors.
"""

from __future__ import annotations

from collections.abc import Sequence
import functools

import numpy as np

from repro.exceptions import ShapeError


def hadamard(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Element-wise (Hadamard) product of two equally-shaped matrices."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ShapeError(
            f"Hadamard product requires equal shapes, got {left.shape} and {right.shape}"
        )
    return left * right


def hadamard_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Hadamard product of a non-empty sequence of equally-shaped matrices."""
    if len(matrices) == 0:
        raise ShapeError("hadamard_all requires at least one matrix")
    return functools.reduce(hadamard, [np.asarray(m, dtype=np.float64) for m in matrices])


def khatri_rao(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Column-wise Khatri-Rao product of two matrices with equal column count.

    For ``left`` of shape ``(I, R)`` and ``right`` of shape ``(J, R)`` the
    result has shape ``(I * J, R)`` with columns ``kron(left[:, r], right[:, r])``.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.ndim != 2 or right.ndim != 2:
        raise ShapeError("khatri_rao expects two matrices")
    if left.shape[1] != right.shape[1]:
        raise ShapeError(
            "khatri_rao requires equal column counts, got "
            f"{left.shape[1]} and {right.shape[1]}"
        )
    n_rows = left.shape[0] * right.shape[0]
    n_cols = left.shape[1]
    return (left[:, None, :] * right[None, :, :]).reshape(n_rows, n_cols)


def khatri_rao_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Khatri-Rao product of a non-empty sequence of matrices.

    Follows the convention used in CP decomposition literature where the
    product is taken in the given order, i.e. ``khatri_rao_all([A, B, C]) ==
    khatri_rao(khatri_rao(A, B), C)``.
    """
    if len(matrices) == 0:
        raise ShapeError("khatri_rao_all requires at least one matrix")
    return functools.reduce(khatri_rao, [np.asarray(m, dtype=np.float64) for m in matrices])


def outer(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Outer product of a sequence of vectors: a rank-one tensor.

    ``outer([a, b, c])[i, j, k] == a[i] * b[j] * c[k]``.
    """
    if len(vectors) == 0:
        raise ShapeError("outer requires at least one vector")
    result = np.asarray(vectors[0], dtype=np.float64)
    if result.ndim != 1:
        raise ShapeError("outer expects one-dimensional vectors")
    for vector in vectors[1:]:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise ShapeError("outer expects one-dimensional vectors")
        result = np.multiply.outer(result, vector)
    return result


def gram(matrix: np.ndarray) -> np.ndarray:
    """Gram matrix ``A' A`` of a factor matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ShapeError("gram expects a matrix")
    return matrix.T @ matrix


def hadamard_of_grams(
    factors: Sequence[np.ndarray], skip: int | None = None
) -> np.ndarray:
    """Hadamard product of the Gram matrices of ``factors``.

    This is the matrix the paper writes ``H(m) = *_{n != m} A(n)' A(n)`` when
    ``skip = m``, or ``*_n A(n)' A(n)`` when ``skip`` is None.
    """
    selected = [
        gram(factor) for index, factor in enumerate(factors) if index != skip
    ]
    if not selected:
        raise ShapeError("hadamard_of_grams needs at least one factor to include")
    return hadamard_all(selected)
