"""Random factor matrices and random sparse tensors.

All functions take an explicit :class:`numpy.random.Generator` so that tests,
experiments, and benchmarks are reproducible with fixed seeds.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import RankError, ShapeError
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.sparse import SparseTensor


def _require_rng(rng: np.random.Generator | None) -> np.random.Generator:
    return np.random.default_rng() if rng is None else rng


def random_factors(
    shape: Sequence[int],
    rank: int,
    rng: np.random.Generator | None = None,
    scale: float = 1.0,
    nonnegative: bool = True,
) -> list[np.ndarray]:
    """Random factor matrices for a tensor of the given shape.

    Non-negative uniform factors are the default because the streams modeled
    by the paper (traffic counts, crime counts, purchases) are non-negative.
    """
    if rank <= 0:
        raise RankError(f"rank must be positive, got {rank}")
    shape = tuple(int(n) for n in shape)
    if any(n <= 0 for n in shape):
        raise ShapeError(f"all mode lengths must be positive, got {shape}")
    rng = _require_rng(rng)
    factors = []
    for length in shape:
        if nonnegative:
            factors.append(scale * rng.random((length, rank)))
        else:
            factors.append(scale * rng.standard_normal((length, rank)))
    return factors


def random_kruskal(
    shape: Sequence[int],
    rank: int,
    rng: np.random.Generator | None = None,
    scale: float = 1.0,
    nonnegative: bool = True,
) -> KruskalTensor:
    """Random Kruskal tensor with unit weights."""
    return KruskalTensor(
        random_factors(shape, rank, rng=rng, scale=scale, nonnegative=nonnegative)
    )


def random_sparse_tensor(
    shape: Sequence[int],
    density: float,
    rng: np.random.Generator | None = None,
    value_low: float = 0.5,
    value_high: float = 5.0,
) -> SparseTensor:
    """Random sparse tensor with roughly ``density * prod(shape)`` non-zeros.

    Coordinates are drawn uniformly (with replacement, then deduplicated), so
    the realised density can be slightly below the request for dense settings.
    """
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"density must lie in [0, 1], got {density}")
    shape = tuple(int(n) for n in shape)
    rng = _require_rng(rng)
    tensor = SparseTensor(shape)
    total = int(np.prod(shape, dtype=np.int64))
    target = int(round(density * total))
    if target == 0:
        return tensor
    coordinates = np.column_stack(
        [rng.integers(0, length, size=target) for length in shape]
    )
    values = rng.uniform(value_low, value_high, size=target)
    for coordinate, value in zip(coordinates, values):
        tensor.set(tuple(int(i) for i in coordinate), float(value))
    return tensor


def random_low_rank_sparse_tensor(
    shape: Sequence[int],
    rank: int,
    density: float,
    rng: np.random.Generator | None = None,
    noise: float = 0.1,
) -> tuple[SparseTensor, KruskalTensor]:
    """Sparse tensor whose non-zeros follow a low-rank model plus noise.

    Useful for tests that check ALS recovers most of the signal: the non-zero
    positions are random, but the values are samples of a ground-truth rank-R
    Kruskal tensor perturbed by Gaussian noise.
    """
    rng = _require_rng(rng)
    truth = random_kruskal(shape, rank, rng=rng)
    tensor = SparseTensor(shape)
    total = int(np.prod(shape, dtype=np.int64))
    target = max(int(round(density * total)), 1)
    coordinates = np.column_stack(
        [rng.integers(0, length, size=target) for length in shape]
    )
    base_values = truth.values_at(coordinates)
    noise_values = noise * rng.standard_normal(target)
    for coordinate, value in zip(coordinates, base_values + noise_values):
        tensor.set(tuple(int(i) for i in coordinate), float(value))
    return tensor, truth
