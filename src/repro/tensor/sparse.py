"""Coordinate-format sparse tensors with per-mode inverted indexes.

The tensor window maintained by the continuous tensor model (Section IV of the
paper) receives a handful of single-entry increments per tuple in the stream,
and the SliceNStitch update rules repeatedly enumerate

    Omega(m)_i  =  { coordinates of non-zeros whose m-th mode index equals i }

(the set the paper calls ``deg(m, i_m)`` the size of).  A plain dict of
``coordinate -> value`` gives O(1) increments; the per-mode inverted index
gives O(deg) enumeration of each Omega set.  Both are kept exactly consistent
by routing every mutation through :meth:`SparseTensor.add` /
:meth:`SparseTensor.set`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
import math

import numpy as np

from repro.exceptions import IndexOutOfBoundsError, ShapeError

Coordinate = tuple[int, ...]

#: Absolute values below this threshold are treated as explicit zeros and
#: removed from storage.  The continuous tensor model adds and later subtracts
#: the same float, so without a drop tolerance the window would slowly fill
#: with 1e-17 residues.
DROP_TOLERANCE = 1e-12


class SparseTensor:
    """A mutable sparse tensor stored as ``coordinate -> value``.

    Parameters
    ----------
    shape:
        Length of each mode.  All coordinates must lie inside this box.
    entries:
        Optional initial ``coordinate -> value`` mapping.  Values whose
        magnitude is below :data:`DROP_TOLERANCE` are ignored.

    Notes
    -----
    The class intentionally exposes a small, explicit API (``get``, ``set``,
    ``add``, iteration helpers, norms) instead of emulating numpy indexing.
    Every mutating operation keeps the per-mode inverted index synchronised.
    """

    __slots__ = (
        "_shape",
        "_data",
        "_mode_index",
        "_squared_norm",
        "_version",
        "_coo_cache",
    )

    def __init__(
        self,
        shape: Iterable[int],
        entries: Mapping[Coordinate, float] | None = None,
    ) -> None:
        shape = tuple(int(n) for n in shape)
        if len(shape) == 0:
            raise ShapeError("a tensor must have at least one mode")
        if any(n <= 0 for n in shape):
            raise ShapeError(f"all mode lengths must be positive, got {shape}")
        self._shape: tuple[int, ...] = shape
        self._data: dict[Coordinate, float] = {}
        # _mode_index[m][i] holds the coordinates whose m-th index is i, as an
        # insertion-ordered dict used as a set.  A dict's iteration order is a
        # pure function of the key insert/remove sequence (unlike a set's,
        # which also depends on the hash-table layout history), and every
        # mutation touches _data and the buckets together — so each bucket's
        # order is exactly the projection of the _data insertion order.  That
        # makes slice enumeration reproducible from a serialized snapshot:
        # rebuilding entries in `to_coo_arrays` order restores bucket
        # iteration (and with it every slice-driven float reduction) exactly,
        # which checkpoint restore relies on for bit-identical resume.
        self._mode_index: list[dict[int, dict[Coordinate, None]]] = [
            {} for _ in range(len(shape))
        ]
        # ||X||_F^2, maintained incrementally by every mutation so norm() /
        # squared_norm() are O(1) instead of rescanning all nnz entries.
        self._squared_norm: float = 0.0
        # Mutation counter stamping the COO-array cache below.
        self._version: int = 0
        self._coo_cache: tuple[int, np.ndarray, np.ndarray] | None = None
        if entries is not None:
            for coordinate, value in entries.items():
                self.set(coordinate, float(value))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Length of each mode."""
        return self._shape

    @property
    def order(self) -> int:
        """Number of modes (``M`` in the paper)."""
        return len(self._shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries (``|X|`` in the paper)."""
        return len(self._data)

    @property
    def size(self) -> int:
        """Total number of cells, zero or not."""
        return int(np.prod(self._shape, dtype=np.int64))

    @property
    def density(self) -> float:
        """Fraction of cells that are non-zero."""
        return self.nnz / self.size

    @property
    def version(self) -> int:
        """Monotonic mutation counter (stamps the cached COO arrays)."""
        return self._version

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseTensor(shape={self._shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def _validate(self, coordinate: Coordinate) -> Coordinate:
        coordinate = tuple(int(i) for i in coordinate)
        if len(coordinate) != self.order:
            raise ShapeError(
                f"coordinate {coordinate} has {len(coordinate)} indices but the "
                f"tensor has {self.order} modes"
            )
        for mode, (index, length) in enumerate(zip(coordinate, self._shape)):
            if not 0 <= index < length:
                raise IndexOutOfBoundsError(
                    f"index {index} out of bounds for mode {mode} with length {length}"
                )
        return coordinate

    def get(self, coordinate: Coordinate) -> float:
        """Return the value stored at ``coordinate`` (0.0 if absent)."""
        return self._data.get(self._validate(coordinate), 0.0)

    def get_batch(self, coordinates: np.ndarray) -> np.ndarray:
        """Values at an ``(n, order)`` integer coordinate array (0.0 where absent).

        Vectorised gather used by the randomised update rules: bounds are
        validated once for the whole array and each lookup is a bare dict
        access, instead of the per-coordinate validation of :meth:`get`.
        """
        index_array = np.asarray(coordinates, dtype=np.int64)
        if index_array.ndim != 2 or index_array.shape[1] != self.order:
            raise ShapeError(
                f"coordinate array of shape {index_array.shape} does not "
                f"match an order-{self.order} tensor"
            )
        if index_array.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        self._check_bounds_array(index_array)
        return self._get_batch_trusted(index_array)

    def _check_bounds_array(self, index_array: np.ndarray) -> None:
        """Vectorised bounds check; reports the first offending coordinate."""
        if (index_array < 0).any() or (
            index_array >= np.asarray(self._shape, dtype=np.int64)
        ).any():
            bad = next(
                tuple(row)
                for row in index_array.tolist()
                if any(not 0 <= i < n for i, n in zip(row, self._shape))
            )
            raise IndexOutOfBoundsError(
                f"coordinate {bad} out of bounds for {self._shape}"
            )

    def _get_batch_trusted(self, coordinates: np.ndarray) -> np.ndarray:
        """Gather core of :meth:`get_batch`, skipping validation.

        Internal fast path for callers whose coordinates are in bounds by
        construction (the vectorised slice sampler unranks offsets that
        cannot leave the tensor's box).
        """
        data_get = self._data.get
        return np.array(
            [data_get(tuple(row), 0.0) for row in coordinates.tolist()],
            dtype=np.float64,
        )

    def __getitem__(self, coordinate: Coordinate) -> float:
        return self.get(coordinate)

    def set(self, coordinate: Coordinate, value: float) -> None:
        """Set the entry at ``coordinate`` to ``value`` (dropping near-zeros)."""
        coordinate = self._validate(coordinate)
        self._version += 1
        if abs(value) <= DROP_TOLERANCE:
            self._remove(coordinate)
        else:
            old = self._data.get(coordinate)
            if old is None:
                self._index_add(coordinate)
            else:
                self._squared_norm -= old * old
            value = float(value)
            self._squared_norm += value * value
            self._data[coordinate] = value

    def __setitem__(self, coordinate: Coordinate, value: float) -> None:
        self.set(coordinate, value)

    def add(self, coordinate: Coordinate, delta: float) -> float:
        """Add ``delta`` to the entry at ``coordinate`` and return the new value."""
        return self._add_trusted(self._validate(coordinate), delta)

    def _add_trusted(self, coordinate: Coordinate, delta: float) -> float:
        """Core of :meth:`add` for callers with pre-validated int tuples.

        Internal fast path (mirroring :meth:`_add_batch_trusted`) used by the
        event engine, whose coordinates are validated by construction.
        """
        self._version += 1
        old = self._data.get(coordinate)
        new_value = (old if old is not None else 0.0) + float(delta)
        if abs(new_value) <= DROP_TOLERANCE:
            self._remove(coordinate)
            return 0.0
        if old is None:
            self._index_add(coordinate)
        else:
            self._squared_norm -= old * old
        self._squared_norm += new_value * new_value
        self._data[coordinate] = new_value
        return new_value

    def add_batch(
        self,
        coordinates: Iterable[Coordinate] | np.ndarray,
        values: Iterable[float] | np.ndarray,
    ) -> None:
        """Apply many ``add`` operations in one grouped pass.

        Exactly equivalent — bit for bit — to calling :meth:`add` once per
        ``(coordinate, value)`` pair in order: per coordinate the running
        value accumulates in the same float order, and intermediate values
        whose magnitude falls below :data:`DROP_TOLERANCE` snap to exactly
        ``0.0`` just as a sequential add-then-remove would.  The speedup
        comes from bookkeeping: bounds are validated vectorially, each
        distinct coordinate costs one storage lookup and at most one
        inverted-index mutation regardless of how many entries touch it, and
        per-entry coordinate re-validation is skipped.
        """
        if isinstance(coordinates, np.ndarray):
            index_array = np.asarray(coordinates, dtype=np.int64)
            if index_array.ndim != 2 or index_array.shape[1] != self.order:
                raise ShapeError(
                    f"coordinate array of shape {index_array.shape} does not "
                    f"match an order-{self.order} tensor"
                )
            coordinate_list = [tuple(row) for row in index_array.tolist()]
        else:
            coordinate_list = [tuple(int(i) for i in c) for c in coordinates]
            for coordinate in coordinate_list:
                if len(coordinate) != self.order:
                    raise ShapeError(
                        f"coordinate {coordinate} has {len(coordinate)} indices "
                        f"but the tensor has {self.order} modes"
                    )
            index_array = (
                np.asarray(coordinate_list, dtype=np.int64)
                if coordinate_list
                else np.empty((0, self.order), dtype=np.int64)
            )
        value_list = (
            values.tolist()
            if isinstance(values, np.ndarray)
            else [float(v) for v in values]
        )
        if len(coordinate_list) != len(value_list):
            raise ShapeError(
                f"{len(coordinate_list)} coordinates for {len(value_list)} values"
            )
        if not coordinate_list:
            return
        self._check_bounds_array(index_array)
        self._add_batch_trusted(coordinate_list, value_list)

    def _add_batch_trusted(
        self, coordinates: list[Coordinate], values: list[float]
    ) -> None:
        """Grouped-add core: coordinates must be validated int tuples.

        Internal fast path for callers that construct coordinates themselves
        (the batched event engine builds them from already-validated stream
        records), skipping per-entry conversion and bounds checks.
        """
        data = self._data
        tolerance = DROP_TOLERANCE
        self._version += 1
        pending: dict[Coordinate, float] = {}
        pending_get = pending.get
        data_get = data.get
        for coordinate, value in zip(coordinates, values):
            running = pending_get(coordinate)
            if running is None:
                running = data_get(coordinate, 0.0)
            running += value
            if -tolerance <= running <= tolerance:
                running = 0.0
            pending[coordinate] = running
        for coordinate, running in pending.items():
            if running == 0.0:
                self._remove(coordinate)
            else:
                old = data_get(coordinate)
                if old is None:
                    self._index_add(coordinate)
                else:
                    self._squared_norm -= old * old
                self._squared_norm += running * running
                data[coordinate] = running

    def _remove(self, coordinate: Coordinate) -> None:
        old = self._data.get(coordinate)
        if old is not None:
            self._squared_norm -= old * old
            del self._data[coordinate]
            self._index_remove(coordinate)
            if not self._data:
                # An empty tensor has exactly zero norm; resetting here also
                # sheds any accumulated float drift at natural zero points.
                self._squared_norm = 0.0

    def _index_add(self, coordinate: Coordinate) -> None:
        for mode, index in enumerate(coordinate):
            self._mode_index[mode].setdefault(index, {})[coordinate] = None

    def _index_remove(self, coordinate: Coordinate) -> None:
        for mode, index in enumerate(coordinate):
            bucket = self._mode_index[mode].get(index)
            if bucket is not None:
                bucket.pop(coordinate, None)
                if not bucket:
                    del self._mode_index[mode][index]

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Coordinate, float]]:
        """Iterate over ``(coordinate, value)`` pairs of non-zero entries."""
        return iter(self._data.items())

    def coordinates(self) -> Iterator[Coordinate]:
        """Iterate over non-zero coordinates."""
        return iter(self._data.keys())

    def mode_slice(self, mode: int, index: int) -> Iterator[tuple[Coordinate, float]]:
        """Iterate over non-zeros whose ``mode``-th index equals ``index``.

        This enumerates the set the paper writes as ``Omega(m)_{i_m}``.
        """
        self._check_mode(mode)
        bucket = self._mode_index[mode].get(int(index), ())
        for coordinate in tuple(bucket):
            yield coordinate, self._data[coordinate]

    def mode_slice_arrays(self, mode: int, index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` arrays of the ``Omega(mode)_index`` slice.

        Array counterpart of :meth:`mode_slice` — same entries in the same
        (bucket-insertion) order, built without the per-entry generator hop.
        ``indices`` has shape ``(deg, order)`` and ``values`` ``(deg,)``.
        """
        self._check_mode(mode)
        bucket = self._mode_index[mode].get(int(index))
        if not bucket:
            return (
                np.empty((0, self.order), dtype=np.int64),
                np.empty((0,), dtype=np.float64),
            )
        coordinates = tuple(bucket)
        data = self._data
        indices = np.asarray(coordinates, dtype=np.int64)
        values = np.fromiter(
            (data[c] for c in coordinates), dtype=np.float64, count=len(coordinates)
        )
        return indices, values

    def degree(self, mode: int, index: int) -> int:
        """Return ``deg(mode, index)``: non-zeros with that mode index."""
        self._check_mode(mode)
        bucket = self._mode_index[mode].get(int(index))
        return 0 if bucket is None else len(bucket)

    def mode_indices(self, mode: int) -> set[int]:
        """Return the set of indices of ``mode`` holding at least one non-zero."""
        self._check_mode(mode)
        return set(self._mode_index[mode].keys())

    def _check_mode(self, mode: int) -> None:
        if not 0 <= mode < self.order:
            raise ShapeError(f"mode {mode} out of range for order-{self.order} tensor")

    # ------------------------------------------------------------------
    # Numeric reductions
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Frobenius norm ``||X||_F`` (O(1): incrementally maintained)."""
        return math.sqrt(self.squared_norm())

    def squared_norm(self) -> float:
        """Squared Frobenius norm ``||X||_F^2`` (O(1): incrementally maintained).

        The value is updated by every mutation instead of being recomputed
        from the stored entries, so repeated ``fitness()`` evaluations do not
        rescan all nnz entries.  Float accumulation can drift from an exact
        from-scratch sum by a few ulps per mutation (the churn regression test
        bounds this); the clamp guards against tiny negative residue.
        """
        return max(self._squared_norm, 0.0)

    def total(self) -> float:
        """Sum of all stored values."""
        return float(sum(self._data.values()))

    def inner(self, other: "SparseTensor") -> float:
        """Inner product with another sparse tensor of the same shape."""
        if other.shape != self.shape:
            raise ShapeError(
                f"cannot take inner product of shapes {self.shape} and {other.shape}"
            )
        if other.nnz < self.nnz:
            small, large = other, self
        else:
            small, large = self, other
        return float(
            sum(value * large._data.get(coord, 0.0) for coord, value in small.items())
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the tensor as a dense numpy array.

        Only intended for small tensors (tests and tiny examples).
        """
        dense = np.zeros(self._shape, dtype=np.float64)
        for coordinate, value in self._data.items():
            dense[coordinate] = value
        return dense

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "SparseTensor":
        """Build a sparse tensor from a dense numpy array."""
        array = np.asarray(array, dtype=np.float64)
        tensor = cls(array.shape)
        for coordinate in zip(*np.nonzero(array)):
            tensor.set(tuple(int(i) for i in coordinate), float(array[coordinate]))
        return tensor

    def copy(self) -> "SparseTensor":
        """Return a deep copy.

        The mutation :attr:`version` (and with it the COO-array cache) is
        carried forward: a caller holding a ``(tensor, version)`` pair from
        the original can never false-match the clone at a *different* content
        state, because the clone's counter continues from the original's
        instead of restarting at 0 and re-walking already-used version
        numbers.
        """
        clone = SparseTensor(self._shape)
        for coordinate, value in self._data.items():
            clone._data[coordinate] = value
            clone._index_add(coordinate)
        clone._squared_norm = self._squared_norm
        clone._version = self._version
        # The cached arrays are read-only by contract, so sharing them with
        # the clone is safe; either tensor's next mutation re-stamps its own.
        clone._coo_cache = self._coo_cache
        return clone

    @classmethod
    def from_coo(
        cls,
        shape: Iterable[int],
        indices: np.ndarray,
        values: np.ndarray,
        version: int = 0,
    ) -> "SparseTensor":
        """Rebuild a tensor from COO arrays (inverse of :meth:`to_coo_arrays`).

        Entries are inserted in array order, so the dict insertion order — and
        therefore the ordering of a later :meth:`to_coo_arrays` — matches the
        array ordering exactly.  ``version`` seeds the mutation counter
        (checkpoint restore carries the saved tensor's counter forward).  The
        squared norm is recomputed exactly from the entries via
        :meth:`recompute_squared_norm`, not trusted from any incremental
        value.
        """
        tensor = cls(shape)
        index_array = np.asarray(indices, dtype=np.int64)
        value_array = np.asarray(values, dtype=np.float64)
        if index_array.ndim != 2 or index_array.shape[1] != tensor.order:
            raise ShapeError(
                f"coordinate array of shape {index_array.shape} does not "
                f"match an order-{tensor.order} tensor"
            )
        if index_array.shape[0] != value_array.shape[0]:
            raise ShapeError(
                f"{index_array.shape[0]} coordinates for "
                f"{value_array.shape[0]} values"
            )
        if index_array.shape[0]:
            tensor._check_bounds_array(index_array)
            data = tensor._data
            for row, value in zip(index_array.tolist(), value_array.tolist()):
                coordinate = tuple(row)
                if coordinate in data:
                    raise ShapeError(
                        f"duplicate coordinate {coordinate} in COO input"
                    )
                data[coordinate] = value
                tensor._index_add(coordinate)
        tensor._version = int(version)
        tensor.recompute_squared_norm()
        return tensor

    def recompute_squared_norm(self) -> float:
        """Rescan all entries and reset the incremental squared norm exactly.

        Returns the drift ``old - new`` between the incrementally maintained
        value and the exact compensated sum, so callers (checkpoint restore,
        the churn regression tests) can observe how far the running value had
        wandered.  After this call :meth:`squared_norm` is exact.
        """
        exact = math.fsum(value * value for value in self._data.values())
        drift = self._squared_norm - exact
        self._squared_norm = exact
        return drift

    def to_coo_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, values)`` arrays in COO layout.

        ``indices`` has shape ``(nnz, order)`` and ``values`` shape ``(nnz,)``.
        The ordering is the dict insertion order, which is deterministic for a
        deterministic sequence of mutations.

        The arrays are cached and stamped with the tensor's mutation
        :attr:`version`: as long as the tensor is not mutated, repeated calls
        (an ALS sweep solving every mode, fitness evaluations between events)
        return the same array objects without rebuilding them.  Callers must
        therefore treat the returned arrays as read-only.
        """
        cache = self._coo_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        if self.nnz == 0:
            indices = np.empty((0, self.order), dtype=np.int64)
            values = np.empty((0,), dtype=np.float64)
        else:
            indices = np.array(list(self._data.keys()), dtype=np.int64)
            values = np.array(list(self._data.values()), dtype=np.float64)
        self._coo_cache = (self._version, indices, values)
        return indices, values

    # ------------------------------------------------------------------
    # Equality (used by tests)
    # ------------------------------------------------------------------
    def allclose(self, other: "SparseTensor", atol: float = 1e-9) -> bool:
        """Return True if both tensors agree entrywise within ``atol``."""
        if self.shape != other.shape:
            return False
        keys = set(self._data) | set(other._data)
        return all(
            abs(self._data.get(key, 0.0) - other._data.get(key, 0.0)) <= atol
            for key in keys
        )
