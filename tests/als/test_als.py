"""Unit tests for the batch ALS solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.als import ALS, ALSConfig, decompose
from repro.exceptions import ConfigurationError, RankError
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


@pytest.fixture
def exact_low_rank_tensor(rng) -> tuple[SparseTensor, KruskalTensor]:
    """A dense-as-sparse tensor that is exactly rank 2."""
    truth = KruskalTensor(random_factors((5, 4, 3), rank=2, rng=rng))
    return SparseTensor.from_dense(truth.to_dense()), truth


class TestALSConfig:
    def test_invalid_rank(self):
        with pytest.raises(RankError):
            ALSConfig(rank=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 2, "n_iterations": 0},
            {"rank": 2, "tolerance": -1.0},
            {"rank": 2, "regularization": -1e-3},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ALSConfig(**kwargs)


class TestDecomposition:
    def test_recovers_exact_low_rank_tensor(self, exact_low_rank_tensor):
        tensor, _ = exact_low_rank_tensor
        result = decompose(tensor, rank=3, n_iterations=30, seed=1)
        assert result.fitness > 0.99

    def test_fitness_is_monotone_up_to_tolerance(self, small_tensor):
        result = decompose(small_tensor, rank=3, n_iterations=15, seed=0, tolerance=0.0)
        history = result.fitness_history
        assert len(history) == 15
        for earlier, later in zip(history, history[2:]):
            assert later >= earlier - 1e-6

    def test_early_stopping_sets_converged(self, exact_low_rank_tensor):
        tensor, _ = exact_low_rank_tensor
        result = decompose(tensor, rank=2, n_iterations=50, tolerance=1e-4, seed=2)
        assert result.converged
        assert result.n_iterations < 50

    def test_decomposition_shapes(self, small_tensor):
        result = decompose(small_tensor, rank=4, n_iterations=3)
        assert result.decomposition.shape == small_tensor.shape
        assert result.decomposition.rank == 4

    def test_deterministic_given_seed(self, small_tensor):
        first = decompose(small_tensor, rank=3, n_iterations=5, seed=11)
        second = decompose(small_tensor, rank=3, n_iterations=5, seed=11)
        for left, right in zip(first.decomposition.factors, second.decomposition.factors):
            np.testing.assert_array_equal(left, right)

    def test_svd_init_also_fits(self, small_tensor):
        result = decompose(small_tensor, rank=3, n_iterations=10, init="svd", seed=0)
        assert np.isfinite(result.fitness)

    def test_empty_tensor_is_handled(self):
        result = decompose(SparseTensor((3, 3, 3)), rank=2, n_iterations=2)
        assert result.fitness == pytest.approx(1.0) or result.fitness == float("-inf")


class TestInitialFactors:
    def test_warm_start_is_used(self, exact_low_rank_tensor):
        tensor, truth = exact_low_rank_tensor
        als = ALS(ALSConfig(rank=2, n_iterations=1, tolerance=0.0))
        result = als.fit(tensor, initial_factors=truth.factors)
        assert result.fitness > 0.999  # one sweep from the truth stays at the truth

    def test_wrong_initial_shape_rejected(self, small_tensor, rng):
        als = ALS(ALSConfig(rank=2))
        bad = random_factors((6, 5, 3), rank=2, rng=rng)  # wrong last mode
        with pytest.raises(ConfigurationError):
            als.fit(small_tensor, initial_factors=bad)

    def test_wrong_initial_count_rejected(self, small_tensor, rng):
        als = ALS(ALSConfig(rank=2))
        with pytest.raises(ConfigurationError):
            als.fit(small_tensor, initial_factors=random_factors((6, 5), 2, rng=rng))
