"""Unit tests for :mod:`repro.als.initialization`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.initialization import copy_factors, initialize_factors, pad_factor
from repro.exceptions import ConfigurationError, RankError


class TestInitializeFactors:
    def test_random_shapes(self, small_tensor, rng):
        factors = initialize_factors(small_tensor, rank=4, strategy="random", rng=rng)
        assert [f.shape for f in factors] == [(6, 4), (5, 4), (4, 4)]

    def test_svd_shapes(self, small_tensor, rng):
        factors = initialize_factors(small_tensor, rank=3, strategy="svd", rng=rng)
        assert [f.shape for f in factors] == [(6, 3), (5, 3), (4, 3)]
        assert all(np.isfinite(f).all() for f in factors)

    def test_svd_handles_rank_larger_than_mode(self, small_tensor, rng):
        factors = initialize_factors(small_tensor, rank=10, strategy="svd", rng=rng)
        assert factors[2].shape == (4, 10)

    def test_deterministic_with_seeded_rng(self, small_tensor):
        a = initialize_factors(small_tensor, 3, rng=np.random.default_rng(5))
        b = initialize_factors(small_tensor, 3, rng=np.random.default_rng(5))
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_unknown_strategy_rejected(self, small_tensor, rng):
        with pytest.raises(ConfigurationError):
            initialize_factors(small_tensor, 3, strategy="magic", rng=rng)

    def test_invalid_rank_rejected(self, small_tensor, rng):
        with pytest.raises(RankError):
            initialize_factors(small_tensor, 0, rng=rng)


class TestHelpers:
    def test_pad_factor_appends_rows(self, rng):
        factor = rng.random((3, 2))
        padded = pad_factor(factor, 5, rng=rng)
        assert padded.shape == (5, 2)
        np.testing.assert_array_equal(padded[:3], factor)

    def test_pad_factor_noop_when_large_enough(self, rng):
        factor = rng.random((4, 2))
        np.testing.assert_array_equal(pad_factor(factor, 3, rng=rng), factor)

    def test_copy_factors_is_deep(self, rng):
        factors = [rng.random((2, 2))]
        copies = copy_factors(factors)
        copies[0][0, 0] = 99.0
        assert factors[0][0, 0] != 99.0
