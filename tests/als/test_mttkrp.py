"""Unit tests for :mod:`repro.als.mttkrp`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.mttkrp import mttkrp, mttkrp_row
from repro.exceptions import ShapeError
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.matricization import kr_order, unfold_dense
from repro.tensor.products import khatri_rao_all
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


def dense_mttkrp(tensor: SparseTensor, factors, mode: int) -> np.ndarray:
    """Reference implementation via dense unfolding and explicit Khatri-Rao."""
    unfolded = unfold_dense(tensor.to_dense(), mode)
    kr = khatri_rao_all([factors[m] for m in kr_order(tensor.order, mode)])
    return unfolded @ kr


class TestMttkrp:
    def test_matches_dense_reference(self, small_tensor, rng):
        factors = random_factors(small_tensor.shape, rank=3, rng=rng, nonnegative=False)
        for mode in range(small_tensor.order):
            np.testing.assert_allclose(
                mttkrp(small_tensor, factors, mode),
                dense_mttkrp(small_tensor, factors, mode),
                atol=1e-9,
            )

    def test_empty_tensor_gives_zeros(self, rng):
        tensor = SparseTensor((3, 4, 2))
        factors = random_factors(tensor.shape, rank=2, rng=rng)
        result = mttkrp(tensor, factors, 0)
        np.testing.assert_array_equal(result, np.zeros((3, 2)))

    def test_wrong_factor_count_rejected(self, small_tensor, rng):
        factors = random_factors((6, 5), rank=2, rng=rng)
        with pytest.raises(ShapeError):
            mttkrp(small_tensor, factors, 0)

    def test_invalid_mode_rejected(self, small_tensor, rng):
        factors = random_factors(small_tensor.shape, rank=2, rng=rng)
        with pytest.raises(ShapeError):
            mttkrp(small_tensor, factors, 3)


class TestMttkrpRow:
    def test_matches_full_mttkrp_row(self, small_tensor, rng):
        factors = random_factors(small_tensor.shape, rank=3, rng=rng, nonnegative=False)
        for mode in range(small_tensor.order):
            full = mttkrp(small_tensor, factors, mode)
            for index in range(small_tensor.shape[mode]):
                np.testing.assert_allclose(
                    mttkrp_row(small_tensor, factors, mode, index),
                    full[index, :],
                    atol=1e-9,
                )

    def test_extra_entries_are_included(self, rng):
        tensor = SparseTensor((4, 3, 2), entries={(0, 1, 0): 2.0})
        factors = random_factors(tensor.shape, rank=2, rng=rng, nonnegative=False)
        extra = [((0, 2, 1), 3.0), ((1, 0, 0), 5.0)]  # second has a different row
        row = mttkrp_row(tensor, factors, 0, 0, extra_entries=extra)
        augmented = tensor.copy()
        augmented.add((0, 2, 1), 3.0)
        np.testing.assert_allclose(
            row, mttkrp_row(augmented, factors, 0, 0), atol=1e-12
        )

    def test_row_with_no_nonzeros_is_zero(self, rng):
        tensor = SparseTensor((4, 3), entries={(1, 1): 1.0})
        factors = random_factors(tensor.shape, rank=2, rng=rng)
        np.testing.assert_array_equal(
            mttkrp_row(tensor, factors, 0, 3), np.zeros(2)
        )

    def test_cp_reconstruction_row_identity(self, rng):
        """For X = [[A, B, C]] stored sparsely, the exact LS row solve recovers A's rows."""
        factors = random_factors((4, 3, 3), rank=2, rng=rng)
        kruskal = KruskalTensor(factors)
        tensor = SparseTensor.from_dense(kruskal.to_dense())
        grams = [f.T @ f for f in factors]
        hadamard = grams[1] * grams[2]
        for index in range(4):
            row = mttkrp_row(tensor, factors, 0, index) @ np.linalg.pinv(hadamard)
            np.testing.assert_allclose(row, factors[0][index, :], atol=1e-8)


def _legacy_mttkrp_row(tensor, factors, mode, index, extra_entries=()):
    """The pre-kernel list-based ``mttkrp_row`` slow path, verbatim.

    Kept as the bit-exactness oracle for the array-based ``extra_entries``
    path that replaced it: the entries are visited in the same order
    (stored slice entries, then kept extras), so the float operations and
    hence the bits must match exactly.
    """
    rank = factors[0].shape[1]
    coordinates = []
    values = []
    for coordinate, value in tensor.mode_slice(mode, index):
        coordinates.append(coordinate)
        values.append(value)
    for coordinate, value in extra_entries:
        if coordinate[mode] != index:
            continue
        coordinates.append(tuple(coordinate))
        values.append(value)
    if not coordinates:
        return np.zeros(rank, dtype=np.float64)
    index_array = np.asarray(coordinates, dtype=np.int64)
    value_array = np.asarray(values, dtype=np.float64)
    product = np.broadcast_to(
        value_array[:, None], (value_array.size, rank)
    ).copy()
    for other_mode, factor in enumerate(factors):
        if other_mode == mode:
            continue
        product *= factor[index_array[:, other_mode], :]
    return product.sum(axis=0)


class TestExtraEntriesBitExact:
    """The array-ops ``extra_entries`` path is bit-identical to the legacy one."""

    def _random_case(self, rng, n_stored):
        shape = (5, 4, 3)
        tensor = SparseTensor(shape)
        for _ in range(n_stored):
            coordinate = tuple(int(rng.integers(0, n)) for n in shape)
            tensor.add(coordinate, float(rng.standard_normal()))
        factors = random_factors(shape, rank=3, rng=rng, nonnegative=False)
        return tensor, factors

    def test_stored_plus_extras(self, rng):
        tensor, factors = self._random_case(rng, n_stored=25)
        extra = [
            ((0, 1, 2), 1.5),
            ((0, 3, 0), -2.25),
            ((2, 0, 0), 7.0),  # different row: must be ignored for index 0
        ]
        for mode in range(tensor.order):
            for index in range(tensor.shape[mode]):
                np.testing.assert_array_equal(
                    mttkrp_row(tensor, factors, mode, index, extra_entries=extra),
                    _legacy_mttkrp_row(tensor, factors, mode, index, extra),
                )

    def test_extras_only_empty_slice(self, rng):
        tensor, factors = self._random_case(rng, n_stored=0)
        extra = [((1, 2, 0), 3.5), ((1, 0, 1), -0.5)]
        np.testing.assert_array_equal(
            mttkrp_row(tensor, factors, 0, 1, extra_entries=extra),
            _legacy_mttkrp_row(tensor, factors, 0, 1, extra),
        )

    def test_all_extras_filtered_out(self, rng):
        tensor, factors = self._random_case(rng, n_stored=10)
        extra = [((4, 0, 0), 2.0)]  # never matches index 1 of mode 0
        np.testing.assert_array_equal(
            mttkrp_row(tensor, factors, 0, 1, extra_entries=extra),
            _legacy_mttkrp_row(tensor, factors, 0, 1, extra),
        )

    def test_no_entries_anywhere_gives_zeros(self, rng):
        tensor, factors = self._random_case(rng, n_stored=0)
        np.testing.assert_array_equal(
            mttkrp_row(tensor, factors, 1, 2, extra_entries=[((0, 3, 0), 1.0)]),
            np.zeros(3),
        )
