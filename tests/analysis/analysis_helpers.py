"""Helpers for the static-analysis tests.

Checkers are exercised on in-memory fixture modules
(:meth:`repro.analysis.source.Project.from_sources`), so every test states
its whole world: the module's dotted name (which decides scoping) and its
source text.
"""

from __future__ import annotations

import textwrap

from repro.analysis.framework import Checker, LintResult, run_checkers
from repro.analysis.source import Project


def lint(sources: dict[str, str], *checkers: Checker) -> LintResult:
    """Run ``checkers`` over ``{module: source}`` fixture snippets."""
    dedented = {
        module: textwrap.dedent(text) for module, text in sources.items()
    }
    return run_checkers(Project.from_sources(dedented), list(checkers))


def rule_ids(result: LintResult) -> list[str]:
    """Rule ids of the active findings, in report order."""
    return [finding.rule for finding in result.findings]
