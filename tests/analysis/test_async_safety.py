"""Async-safety checker: blocking calls and sleeps under stream locks."""

from __future__ import annotations

from analysis_helpers import lint, rule_ids
from repro.analysis.checkers.async_safety import AsyncSafetyChecker


def check(sources):
    return lint(sources, AsyncSafetyChecker())


class TestBlockingCall:
    def test_time_sleep_in_async_def_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                import time

                async def handler():
                    time.sleep(1.0)
                """
            }
        )
        assert rule_ids(result) == ["blocking-call"]

    def test_open_in_async_def_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                async def handler(path):
                    with open(path) as handle:
                        return handle.read()
                """
            }
        )
        assert rule_ids(result) == ["blocking-call"]

    def test_direct_session_method_call_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                async def handler(session, chunk):
                    session.ingest(chunk)
                """
            }
        )
        assert rule_ids(result) == ["blocking-call"]

    def test_to_thread_wrapping_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import asyncio

                async def handler(session, chunk):
                    await asyncio.to_thread(session.ingest, chunk)
                """
            }
        )
        assert result.clean

    def test_awaited_method_of_same_name_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                async def handler(server):
                    await server.start()
                """
            }
        )
        assert result.clean

    def test_blocking_call_in_sync_code_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import time

                def sync_helper():
                    time.sleep(1.0)
                """
            }
        )
        assert result.clean

    def test_nested_def_handed_off_loop_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import asyncio

                async def handler(session, chunk):
                    def apply():
                        session.ingest(chunk)
                    await asyncio.to_thread(apply)
                """
            }
        )
        assert result.clean

    def test_outside_service_scope_is_fine(self):
        result = check(
            {
                "repro.experiments.x": """
                import time

                async def handler():
                    time.sleep(1.0)
                """
            }
        )
        assert result.clean

    def test_suppression(self):
        result = check(
            {
                "repro.service.x": """
                import time

                async def handler():
                    time.sleep(0.0)  # repro: allow[blocking-call] yield hack
                """
            }
        )
        assert result.clean


class TestSleepUnderLock:
    def test_asyncio_sleep_under_stream_lock_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                import asyncio

                async def worker(stream):
                    async with stream.lock:
                        await asyncio.sleep(1.0)
                """
            }
        )
        assert rule_ids(result) == ["sleep-under-lock"]

    def test_sleep_outside_the_lock_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import asyncio

                async def worker(stream):
                    async with stream.lock:
                        stream.tick()
                    await asyncio.sleep(1.0)
                """
            }
        )
        assert result.clean

    def test_non_lock_context_manager_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import asyncio
                import contextlib

                async def worker():
                    with contextlib.suppress(KeyError):
                        await asyncio.sleep(1.0)
                """
            }
        )
        assert result.clean

    def test_suppression(self):
        result = check(
            {
                "repro.service.x": """
                import asyncio

                async def worker(stream):
                    async with stream.lock:
                        # repro: allow[sleep-under-lock] injected stall
                        await asyncio.sleep(1.0)
                """
            }
        )
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["sleep-under-lock"]
