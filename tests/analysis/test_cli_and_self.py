"""The ``repro lint`` CLI, and the self-check that the tree is clean."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.cli import main as lint_main
from repro.analysis.framework import run_checkers
from repro.analysis.source import Project

PACKAGE_ROOT = Path(repro.__file__).resolve().parent
REPO_BASELINE = PACKAGE_ROOT.parents[1] / ".repro-lint-baseline.json"

FLAWED = """
import random

def f():
    return random.random()
"""


def write_package(tmp_path: Path, source: str = FLAWED) -> Path:
    package = tmp_path / "repro_fixture" / "core"
    package.mkdir(parents=True)
    (package / "flawed.py").write_text(source)
    return package.parent


class TestSelfCheck:
    def test_shipped_tree_is_lint_clean(self):
        """The gate the CI job enforces: zero findings on our own code."""
        result = run_checkers(Project.load(PACKAGE_ROOT), list(ALL_CHECKERS))
        assert result.clean, "\n" + "\n".join(
            finding.format_text() for finding in result.findings
        )

    def test_shipped_baseline_is_empty(self):
        """Every accepted deviation is an inline allow-comment, not a
        baseline entry — the baseline only exists for adopting new rules."""
        payload = json.loads(REPO_BASELINE.read_text())
        assert payload["findings"] == []

    def test_cli_is_clean_on_shipped_tree(self, capsys):
        assert lint_main([str(PACKAGE_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestCli:
    def test_findings_fail_with_exit_one(self, tmp_path, capsys):
        root = write_package(tmp_path)
        # The fixture module is named repro_fixture.core.flawed, which is
        # not inside the repro.* scopes — but global-random applies
        # everywhere, so the run still fails.
        assert lint_main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "global-random" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        root = write_package(tmp_path)
        assert lint_main([str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        [finding] = payload["findings"]
        assert finding["rule"] == "global-random"
        assert finding["module"] == "repro_fixture.core.flawed"
        assert finding["line"] == 5

    def test_baseline_accepts_known_findings(self, tmp_path, capsys):
        root = write_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [
                    str(root),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert lint_main([str(root), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_new_finding_fails_despite_baseline(self, tmp_path, capsys):
        root = write_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(root), "--baseline", str(baseline), "--update-baseline"]
        )
        (root / "core" / "worse.py").write_text(
            "import random\nshuffled = random.shuffle([1, 2])\n"
        )
        capsys.readouterr()
        assert lint_main([str(root), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "worse" in out
        assert "1 baselined" in out

    def test_missing_directory_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nowhere")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_list_rules_prints_the_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "global-random",
            "wall-clock",
            "set-iteration",
            "blocking-call",
            "sleep-under-lock",
            "lock-discipline",
            "kernel-missing",
            "kernel-signature",
            "kernel-nopython-call",
            "broad-except",
        ):
            assert rule_id in out

    def test_show_suppressed_reports_waived_findings(self, tmp_path, capsys):
        root = write_package(
            tmp_path,
            source=(
                "import random\n"
                "# repro: allow[global-random] demo\n"
                "value = random.random()\n"
            ),
        )
        assert lint_main([str(root), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "(suppressed)" in out
        assert "1 suppressed" in out
