"""Determinism checker: global RNGs, wall clocks, set iteration."""

from __future__ import annotations

from analysis_helpers import lint, rule_ids
from repro.analysis.checkers.determinism import DeterminismChecker


def check(sources):
    return lint(sources, DeterminismChecker())


class TestGlobalRandom:
    def test_stdlib_global_draw_is_flagged(self):
        result = check(
            {
                "repro.core.x": """
                import random
                value = random.random()
                choice = random.choice([1, 2])
                """
            }
        )
        assert rule_ids(result) == ["global-random", "global-random"]

    def test_numpy_legacy_global_draw_is_flagged(self):
        result = check(
            {
                "repro.core.x": """
                import numpy as np
                noise = np.random.rand(3)
                """
            }
        )
        assert rule_ids(result) == ["global-random"]
        assert "numpy" in result.findings[0].message

    def test_applies_outside_the_state_scopes_too(self):
        result = check(
            {
                "repro.experiments.x": """
                import random
                value = random.random()
                """
            }
        )
        assert rule_ids(result) == ["global-random"]

    def test_constructing_injectable_generators_is_fine(self):
        result = check(
            {
                "repro.core.x": """
                import random
                import numpy as np
                rng = random.Random(7)
                gen = np.random.default_rng(7)
                legacy = np.random.RandomState(7)
                value = rng.random()
                noise = gen.standard_normal(3)
                """
            }
        )
        assert result.clean

    def test_import_alias_is_resolved(self):
        result = check(
            {
                "repro.core.x": """
                import random as rnd
                value = rnd.random()
                """
            }
        )
        assert rule_ids(result) == ["global-random"]

    def test_suppression(self):
        result = check(
            {
                "repro.core.x": """
                import random
                # repro: allow[global-random] seeding demo only
                value = random.random()
                """
            }
        )
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["global-random"]


class TestWallClock:
    def test_time_time_in_state_scope_is_flagged(self):
        result = check(
            {
                "repro.stream.x": """
                import time
                stamp = time.time()
                """
            }
        )
        assert rule_ids(result) == ["wall-clock"]

    def test_datetime_now_in_state_scope_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                import datetime
                stamp = datetime.datetime.now()
                """
            }
        )
        assert rule_ids(result) == ["wall-clock"]

    def test_monotonic_and_perf_counter_are_fine(self):
        result = check(
            {
                "repro.stream.x": """
                import time
                started = time.monotonic()
                elapsed = time.perf_counter() - started
                """
            }
        )
        assert result.clean

    def test_wall_clock_outside_state_scopes_is_fine(self):
        result = check(
            {
                "repro.experiments.x": """
                import time
                stamp = time.time()
                """
            }
        )
        assert result.clean

    def test_suppression(self):
        result = check(
            {
                "repro.service.x": """
                import time
                stamp = time.time()  # repro: allow[wall-clock] diagnostic
                """
            }
        )
        assert result.clean


class TestShardScope:
    """``repro.shard`` is a state-affecting package: plan construction and
    shard execution feed factor state, so the scoped determinism rules
    (wall clocks, set iteration) apply there exactly as in ``repro.core``;
    randomness must come from injected ``default_rng`` instances."""

    def test_wall_clock_in_shard_package_is_flagged(self):
        result = check(
            {
                "repro.shard.executor": """
                import time
                stamp = time.time()
                """
            }
        )
        assert rule_ids(result) == ["wall-clock"]

    def test_set_iteration_in_shard_package_is_flagged(self):
        result = check(
            {
                "repro.shard.plan": """
                def owners(keys):
                    for key in set(keys):
                        yield key
                """
            }
        )
        assert rule_ids(result) == ["set-iteration"]

    def test_global_rng_in_shard_package_is_flagged(self):
        result = check(
            {
                "repro.shard.executor": """
                import numpy as np
                jitter = np.random.rand(3)
                """
            }
        )
        assert rule_ids(result) == ["global-random"]

    def test_injected_stateless_rngs_are_fine(self):
        # The executor's sanctioned pattern: a per-(batch, shard) generator
        # seeded from explicit counters, plus dict-ordered plan loops.
        result = check(
            {
                "repro.shard.executor": """
                import numpy as np

                def shard_rng(seed, batch, shard):
                    return np.random.default_rng((seed, batch, shard))

                def drain(owners):
                    for key in owners:  # dict: insertion-ordered
                        yield owners[key]
                """
            }
        )
        assert result.clean


class TestSetIteration:
    def test_for_loop_over_set_call_is_flagged(self):
        result = check(
            {
                "repro.tensor.x": """
                def f(items):
                    total = 0
                    for item in set(items):
                        total += item
                    return total
                """
            }
        )
        assert rule_ids(result) == ["set-iteration"]

    def test_comprehension_over_set_union_is_flagged(self):
        result = check(
            {
                "repro.core.x": """
                def f(a, b):
                    return [x + 1 for x in a | set(b)]
                """
            }
        )
        assert rule_ids(result) == ["set-iteration"]

    def test_sorted_wrapping_makes_it_deterministic(self):
        result = check(
            {
                "repro.core.x": """
                def f(a, b):
                    return sorted(x for x in set(a) | set(b))
                """
            }
        )
        assert result.clean

    def test_iterating_a_list_is_fine(self):
        result = check(
            {
                "repro.core.x": """
                def f(items):
                    for item in list(items):
                        yield item
                """
            }
        )
        assert result.clean

    def test_outside_state_scopes_is_fine(self):
        result = check(
            {
                "repro.data.x": """
                def f(items):
                    for item in set(items):
                        yield item
                """
            }
        )
        assert result.clean

    def test_suppression(self):
        result = check(
            {
                "repro.core.x": """
                def f(items):
                    # repro: allow[set-iteration] order-insensitive sum
                    for item in set(items):
                        yield item
                """
            }
        )
        assert result.clean
