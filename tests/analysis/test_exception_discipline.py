"""Exception-discipline checker: no silent broad excepts."""

from __future__ import annotations

from analysis_helpers import lint, rule_ids
from repro.analysis.checkers.exception_discipline import (
    ExceptionDisciplineChecker,
)


def check(sources):
    return lint(sources, ExceptionDisciplineChecker())


class TestBroadExcept:
    def test_silent_except_exception_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                def f():
                    try:
                        risky()
                    except Exception:
                        pass
                """
            }
        )
        assert rule_ids(result) == ["broad-except"]

    def test_bare_except_is_flagged(self):
        result = check(
            {
                "repro.core.x": """
                def f():
                    try:
                        risky()
                    except:
                        pass
                """
            }
        )
        assert rule_ids(result) == ["broad-except"]
        assert "bare except" in result.findings[0].message

    def test_applies_outside_state_scopes_too(self):
        result = check(
            {
                "repro.experiments.x": """
                def f():
                    try:
                        risky()
                    except Exception:
                        pass
                """
            }
        )
        assert rule_ids(result) == ["broad-except"]

    def test_narrow_handler_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                def f():
                    try:
                        risky()
                    except (ValueError, OSError):
                        pass
                """
            }
        )
        assert result.clean

    def test_reraising_handler_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                def f():
                    try:
                        risky()
                    except Exception:
                        cleanup()
                        raise
                """
            }
        )
        assert result.clean

    def test_logging_handler_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import logging

                def f():
                    try:
                        risky()
                    except Exception:
                        logging.exception("risky failed")
                """
            }
        )
        assert result.clean

    def test_using_the_bound_error_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                def f(failed):
                    try:
                        risky()
                    except Exception as error:
                        failed["x"] = f"{type(error).__name__}: {error}"
                """
            }
        )
        assert result.clean

    def test_suppress_exception_is_flagged(self):
        result = check(
            {
                "repro.service.x": """
                import contextlib

                def f():
                    with contextlib.suppress(Exception):
                        risky()
                """
            }
        )
        assert rule_ids(result) == ["broad-except"]

    def test_suppress_of_specific_types_is_fine(self):
        result = check(
            {
                "repro.service.x": """
                import contextlib

                def f():
                    with contextlib.suppress(KeyError, FileNotFoundError):
                        risky()
                """
            }
        )
        assert result.clean

    def test_suppression_comment(self):
        result = check(
            {
                "repro.service.x": """
                def f():
                    try:
                        risky()
                    # repro: allow[broad-except] best-effort teardown
                    except Exception:
                        pass
                """
            }
        )
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["broad-except"]
