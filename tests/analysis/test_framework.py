"""Framework behaviour: suppressions, baselines, loading, ordering."""

from __future__ import annotations

import pytest

from analysis_helpers import lint, rule_ids
from repro.analysis.baseline import (
    finding_key,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.framework import all_rules, run_checkers
from repro.analysis.source import Project, SourceFile
from repro.exceptions import ConfigurationError


class TestSuppressions:
    def test_trailing_allow_comment_suppresses(self):
        result = lint(
            {
                "repro.core.x": """
                import random
                value = random.random()  # repro: allow[global-random] demo
                """
            },
            DeterminismChecker(),
        )
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["global-random"]

    def test_allow_comment_on_preceding_line_suppresses(self):
        result = lint(
            {
                "repro.core.x": """
                import random
                # repro: allow[global-random] demo
                value = random.random()
                """
            },
            DeterminismChecker(),
        )
        assert result.clean

    def test_allow_comment_for_other_rule_does_not_suppress(self):
        result = lint(
            {
                "repro.core.x": """
                import random
                value = random.random()  # repro: allow[wall-clock]
                """
            },
            DeterminismChecker(),
        )
        assert rule_ids(result) == ["global-random"]

    def test_allow_comment_far_away_does_not_suppress(self):
        result = lint(
            {
                "repro.core.x": """
                import random
                # repro: allow[global-random]

                value = random.random()
                """
            },
            DeterminismChecker(),
        )
        assert rule_ids(result) == ["global-random"]

    def test_one_comment_may_allow_several_rules(self):
        result = lint(
            {
                "repro.core.x": """
                import random
                # repro: allow[wall-clock, global-random]
                value = random.random()
                """
            },
            DeterminismChecker(),
        )
        assert result.clean


class TestProjectLoading:
    def test_load_maps_paths_to_dotted_modules(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "sub").mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "sub" / "mod.py").write_text("x = 1\n")
        project = Project.load(package)
        assert "pkg" in project.files
        assert "pkg.sub.mod" in project.files

    def test_unparsable_file_becomes_syntax_error_finding(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "bad.py").write_text("def broken(:\n")
        project = Project.load(package)
        result = run_checkers(project, list(ALL_CHECKERS))
        assert rule_ids(result) == ["syntax-error"]

    def test_findings_sorted_by_module_then_line(self):
        result = lint(
            {
                "repro.core.b": """
                import random
                x = random.random()
                y = random.random()
                """,
                "repro.core.a": """
                import random
                z = random.random()
                """,
            },
            DeterminismChecker(),
        )
        coordinates = [(f.module, f.line) for f in result.findings]
        assert coordinates == sorted(coordinates)


class TestBaseline:
    def _findings(self):
        result = lint(
            {
                "repro.core.x": """
                import random
                value = random.random()
                """
            },
            DeterminismChecker(),
        )
        return result.findings

    def test_roundtrip_and_split(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert baseline == {finding_key(f) for f in findings}
        new, known = split_by_baseline(findings, baseline)
        assert new == []
        assert known == findings

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_malformed_file_raises_configuration_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_baseline_key_ignores_line_numbers(self):
        shifted = lint(
            {
                "repro.core.x": """
                import random

                # an unrelated edit above the finding
                value = random.random()
                """
            },
            DeterminismChecker(),
        ).findings
        assert {finding_key(f) for f in self._findings()} == {
            finding_key(f) for f in shifted
        }


class TestRuleCatalog:
    def test_every_rule_id_is_unique(self):
        ids = [rule.id for rule in all_rules(list(ALL_CHECKERS))]
        assert len(ids) == len(set(ids))

    def test_unknown_rule_id_is_a_configuration_error(self):
        checker = DeterminismChecker()
        source = SourceFile.from_source("x = 1\n", module="repro.core.x")
        with pytest.raises(ConfigurationError):
            checker.finding("no-such-rule", source, 1, 0, "message")
