"""Kernel-parity checker: backends implement the full API identically."""

from __future__ import annotations

from analysis_helpers import lint, rule_ids
from repro.analysis.checkers.kernel_parity import KernelParityChecker

API = """
KERNEL_NAMES = ("row_update", "score_slice")
"""

NUMPY_BACKEND = """
import numpy as np

def row_update(factors, deltas, eta):
    return factors + eta * deltas

def score_slice(factors, values):
    return np.sqrt(values)
"""


def check(numba_source, api=API, numpy_source=NUMPY_BACKEND):
    return lint(
        {
            "repro.kernels.api": api,
            "repro.kernels.numpy_backend": numpy_source,
            "repro.kernels.numba_backend": numba_source,
        },
        KernelParityChecker(),
    )


CLEAN_NUMBA = """
import numpy as np
from repro.kernels.numba_backend_support import _jit

@_jit
def row_update(factors, deltas, eta):
    out = np.empty_like(factors)
    for i in range(len(factors)):
        out[i] = factors[i] + eta * deltas[i]
    return out

@_jit
def score_slice(factors, values):
    return np.sqrt(values)
"""


class TestKernelParity:
    def test_matching_backends_are_clean(self):
        assert check(CLEAN_NUMBA).clean

    def test_missing_kernel_is_flagged(self):
        result = check(
            """
            def row_update(factors, deltas, eta):
                return factors
            """
        )
        assert rule_ids(result) == ["kernel-missing"]
        assert "score_slice" in result.findings[0].message

    def test_signature_mismatch_is_flagged(self):
        result = check(
            """
            def row_update(factors, eta, deltas):
                return factors

            def score_slice(factors, values):
                return values
            """
        )
        assert rule_ids(result) == ["kernel-signature"]
        mismatch = result.findings[0]
        assert "['factors', 'eta', 'deltas']" in mismatch.message
        assert "['factors', 'deltas', 'eta']" in mismatch.message

    def test_extra_trailing_parameter_is_flagged(self):
        result = check(
            """
            def row_update(factors, deltas, eta, workspace):
                return factors

            def score_slice(factors, values):
                return values
            """
        )
        assert rule_ids(result) == ["kernel-signature"]

    def test_non_allowlisted_call_in_jitted_kernel_is_flagged(self):
        result = check(
            """
            import json
            import numpy as np
            from repro.kernels.numba_backend_support import _jit

            @_jit
            def row_update(factors, deltas, eta):
                json.dumps("not nopython-safe")
                return factors

            @_jit
            def score_slice(factors, values):
                return np.sqrt(values)
            """
        )
        assert rule_ids(result) == ["kernel-nopython-call"]
        assert "json.dumps" in result.findings[0].message

    def test_calls_between_jitted_kernels_are_fine(self):
        result = check(
            """
            import numpy as np
            from repro.kernels.numba_backend_support import _jit

            @_jit
            def row_update(factors, deltas, eta):
                return factors

            @_jit
            def score_slice(factors, values):
                scaled = row_update(factors, values, 1.0)
                return np.sqrt(scaled)
            """
        )
        assert result.clean

    def test_unjitted_helpers_are_not_restricted(self):
        result = check(
            """
            import json
            import numpy as np

            def row_update(factors, deltas, eta):
                json.dumps("plain python may call anything")
                return factors

            def score_slice(factors, values):
                return np.sqrt(values)
            """
        )
        assert result.clean

    def test_missing_api_module_checks_nothing(self):
        result = lint(
            {"repro.kernels.numba_backend": "def orphan():\n    pass\n"},
            KernelParityChecker(),
        )
        assert result.clean

    def test_live_tree_backends_are_in_parity(self):
        from pathlib import Path

        import repro.kernels
        from repro.analysis.framework import run_checkers
        from repro.analysis.source import Project

        root = Path(repro.kernels.__file__).resolve().parents[1]
        project = Project.load(root)
        result = run_checkers(project, [KernelParityChecker()])
        assert result.clean, [f.format_text() for f in result.findings]
