"""Lock-discipline checker: declared guarded methods stay under the lock."""

from __future__ import annotations

import textwrap

from analysis_helpers import lint, rule_ids
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker

HEADER = (
    'LOCK_GUARDED_METHODS = frozenset('
    '{"session.ingest", "manager.checkpoint_stream"})\n'
)


def check_declared(body: str):
    """Lint one repro.service module that opts into the contract."""
    source = HEADER + textwrap.dedent(body)
    return lint({"repro.service.x": source}, LockDisciplineChecker())


class TestLockDiscipline:
    def test_unguarded_call_is_flagged(self):
        result = check_declared(
            """
            async def handler(session, chunk):
                session.ingest(chunk)
            """
        )
        assert rule_ids(result) == ["lock-discipline"]
        assert ".ingest" in result.findings[0].message

    def test_call_under_async_with_lock_is_fine(self):
        result = check_declared(
            """
            async def handler(worker, session, chunk):
                async with worker.lock:
                    session.ingest(chunk)
            """
        )
        assert result.clean

    def test_bound_method_reference_is_also_checked(self):
        result = check_declared(
            """
            import asyncio

            async def handler(manager, stream_id):
                await asyncio.to_thread(
                    manager.checkpoint_stream, stream_id
                )
            """
        )
        assert rule_ids(result) == ["lock-discipline"]

    def test_guarded_bound_reference_is_fine(self):
        result = check_declared(
            """
            import asyncio

            async def handler(worker, manager, stream_id):
                async with worker.lock:
                    await asyncio.to_thread(
                        manager.checkpoint_stream, stream_id
                    )
            """
        )
        assert result.clean

    def test_other_receiver_is_not_matched(self):
        result = check_declared(
            """
            async def handler(server):
                await server.start()
                server.ingest("not the session")
            """
        )
        assert result.clean

    def test_underscore_lock_names_count(self):
        result = check_declared(
            """
            def handler(self, session, chunk):
                with self._stream_lock:
                    session.ingest(chunk)
            """
        )
        assert result.clean

    def test_module_without_declaration_is_untouched(self):
        result = lint(
            {
                "repro.service.x": """
                async def handler(session, chunk):
                    session.ingest(chunk)
                """
            },
            LockDisciplineChecker(),
        )
        assert result.clean

    def test_suppression(self):
        result = check_declared(
            """
            def shutdown(manager, stream_id):
                # repro: allow[lock-discipline] workers already stopped
                manager.checkpoint_stream(stream_id)
            """
        )
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["lock-discipline"]
