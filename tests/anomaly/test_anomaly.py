"""Unit tests for anomaly injection and the Z-score detector."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.anomaly.detector import ZScoreDetector
from repro.anomaly.injection import inject_anomalies
from repro.data.generators import generate_synthetic_stream
from repro.exceptions import DataGenerationError


@pytest.fixture
def clean_stream():
    return generate_synthetic_stream((6, 6), n_records=300, period=10.0, seed=4)


class TestInjection:
    def test_injects_requested_number(self, clean_stream, rng):
        corrupted, anomalies = inject_anomalies(clean_stream, n_anomalies=7, rng=rng)
        assert len(anomalies) == 7
        assert len(corrupted) == len(clean_stream) + 7

    def test_magnitude_is_multiple_of_max_value(self, clean_stream, rng):
        corrupted, anomalies = inject_anomalies(
            clean_stream, n_anomalies=3, magnitude_factor=5.0, rng=rng
        )
        expected = 5.0 * clean_stream.max_abs_value()
        assert all(a.value == pytest.approx(expected) for a in anomalies)

    def test_times_respect_interval(self, clean_stream, rng):
        _, anomalies = inject_anomalies(
            clean_stream, n_anomalies=10, start_time=50.0, end_time=60.0, rng=rng
        )
        assert all(50.0 <= a.time <= 60.0 for a in anomalies)

    def test_corrupted_stream_stays_chronological(self, clean_stream, rng):
        corrupted, _ = inject_anomalies(clean_stream, n_anomalies=5, rng=rng)
        times = [record.time for record in corrupted]
        assert times == sorted(times)

    def test_indices_within_mode_sizes(self, clean_stream, rng):
        _, anomalies = inject_anomalies(clean_stream, n_anomalies=20, rng=rng)
        for anomaly in anomalies:
            assert 0 <= anomaly.indices[0] < 6
            assert 0 <= anomaly.indices[1] < 6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_anomalies": 0},
            {"n_anomalies": 3, "magnitude_factor": 0.0},
            {"n_anomalies": 3, "start_time": 10.0, "end_time": 5.0},
        ],
    )
    def test_invalid_arguments_rejected(self, clean_stream, rng, kwargs):
        with pytest.raises(DataGenerationError):
            inject_anomalies(clean_stream, rng=rng, **kwargs)

    def test_reproducible_with_seed(self, clean_stream):
        _, a = inject_anomalies(clean_stream, 5, rng=np.random.default_rng(1))
        _, b = inject_anomalies(clean_stream, 5, rng=np.random.default_rng(1))
        assert a == b


class TestZScoreDetector:
    def test_statistics_match_numpy(self, rng):
        detector = ZScoreDetector(warmup=1)
        errors = rng.normal(size=50)
        for position, error in enumerate(errors):
            detector.observe((0, position), error, event_time=float(position))
        assert detector.count == 50
        assert detector.mean == pytest.approx(np.mean(np.abs(errors)))
        assert detector.std == pytest.approx(np.std(np.abs(errors), ddof=1))

    def test_no_scores_during_warmup(self):
        detector = ZScoreDetector(warmup=10)
        scores = [
            detector.observe((0, 0), 5.0, event_time=i).z_score for i in range(5)
        ]
        assert scores == [0.0] * 5

    def test_outlier_gets_high_score(self, rng):
        detector = ZScoreDetector(warmup=5)
        for i in range(100):
            detector.observe((0, i), float(rng.normal(1.0, 0.1)), event_time=i)
        outlier = detector.observe((9, 9), 50.0, event_time=101.0)
        assert outlier.z_score > 10.0

    def test_top_k_and_precision(self, rng):
        detector = ZScoreDetector(warmup=5)
        for i in range(60):
            detector.observe((0, i), float(rng.normal(1.0, 0.1)), event_time=i)
        detector.observe((7, 7), 30.0, event_time=100.0)
        detector.observe((8, 8), 40.0, event_time=101.0)
        top = detector.top_k(2)
        assert {score.coordinate for score in top} == {(7, 7), (8, 8)}
        assert detector.precision_at_k(2, {(7, 7), (8, 8)}) == 1.0
        assert detector.precision_at_k(2, {(7, 7)}) == 0.5

    def test_detection_delay(self):
        detector = ZScoreDetector(warmup=1)
        for i in range(40):
            # Alternate two values so the running std is positive and the
            # outlier below receives a real (non-placeholder) Z-score.
            detector.observe((0, i), 1.0 + 0.1 * (i % 2), event_time=float(i))
        detector.observe((5, 5), 100.0, event_time=50.0, detection_time=62.5)
        assert detector.mean_detection_delay(1, {(5, 5)}) == pytest.approx(12.5)
        assert math.isnan(detector.mean_detection_delay(1, {(1, 1)}))

    def test_precision_divides_by_k_not_scoreboard_size(self, rng):
        detector = ZScoreDetector(warmup=5)
        for i in range(30):
            detector.observe((0, i), float(rng.normal(1.0, 0.1)), event_time=i)
        detector.observe((7, 7), 50.0, event_time=40.0)
        # Only one real hit exists; asking for the top-20 must not let the
        # short scoreboard inflate precision to 1/len(top).
        assert detector.precision_at_k(20, {(7, 7)}) == pytest.approx(1 / 20)
        assert detector.precision_at_k(0, {(7, 7)}) == 0.0

    def test_warmup_placeholders_never_reach_the_scoreboard(self):
        detector = ZScoreDetector(warmup=10)
        for i in range(5):
            detector.observe((0, i), 5.0, event_time=float(i))
        # All observations so far are z == 0.0 warm-up placeholders.
        assert all(score.is_warmup for score in detector.scores)
        assert detector.top_k(5) == []
        assert detector.precision_at_k(5, {(0, 0)}) == 0.0

    def test_genuine_zero_score_stays_eligible(self):
        # An error exactly equal to the running mean yields z == 0.0 after
        # warm-up; it is a real score, not a placeholder, and must keep its
        # scoreboard eligibility.
        detector = ZScoreDetector(warmup=2)
        detector.observe((0, 0), 1.0, event_time=0.0)
        detector.observe((0, 1), 3.0, event_time=1.0)  # mean is now exactly 2.0
        score = detector.observe((9, 9), 2.0, event_time=2.0)
        assert score.z_score == 0.0
        assert not score.is_warmup
        assert score in detector.top_k(10)

    def test_empty_detector_edge_cases(self):
        detector = ZScoreDetector()
        assert detector.top_k(5) == []
        assert detector.precision_at_k(5, {(0, 0)}) == 0.0
        assert detector.std == 0.0
