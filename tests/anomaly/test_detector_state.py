"""Detector state persistence and interrupted-run resume equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anomaly.detector import ZScoreDetector
from repro.exceptions import CheckpointError
from repro.experiments.anomaly_experiment import run_anomaly_experiment
from repro.experiments.config import ExperimentSettings
from repro.stream.checkpoint import load_checkpoint


def _observe_many(detector, rng, n, t0=0.0):
    for position in range(n):
        detector.observe(
            coordinate=(position % 3, position % 2),
            error=float(rng.normal()),
            event_time=t0 + position,
            detection_time=t0 + position,
        )


class TestDetectorStateRoundTrip:
    def test_round_trip_preserves_statistics_and_scores(self, rng):
        detector = ZScoreDetector(warmup=5)
        _observe_many(detector, rng, 40)
        clone = ZScoreDetector.from_state(detector.state_dict())
        assert clone.count == detector.count
        assert clone.mean == detector.mean
        assert clone.std == detector.std
        assert clone.scores == detector.scores

    def test_round_trip_mid_warmup(self, rng):
        detector = ZScoreDetector(warmup=30)
        _observe_many(detector, rng, 10)
        clone = ZScoreDetector.from_state(detector.state_dict())
        assert clone.count == 10
        assert all(score.is_warmup for score in clone.scores)

    def test_continuation_is_identical(self, rng):
        """Observing through a save/restore equals observing straight through."""
        errors = rng.normal(size=60)
        straight = ZScoreDetector(warmup=10)
        resumed = ZScoreDetector(warmup=10)
        for position, error in enumerate(errors[:25]):
            for detector in (straight, resumed):
                detector.observe((0, position), float(error), event_time=float(position))
        resumed = ZScoreDetector.from_state(resumed.state_dict())
        for position, error in enumerate(errors[25:], start=25):
            for detector in (straight, resumed):
                detector.observe((0, position), float(error), event_time=float(position))
        assert resumed.scores == straight.scores
        assert resumed.mean == straight.mean
        assert resumed.std == straight.std

    def test_state_survives_json(self, rng):
        import json

        detector = ZScoreDetector(warmup=5)
        _observe_many(detector, rng, 40)
        state = json.loads(json.dumps(detector.state_dict()))
        clone = ZScoreDetector.from_state(state)
        assert clone.scores == detector.scores
        assert clone.mean == detector.mean

    def test_fresh_detector_round_trips(self):
        clone = ZScoreDetector.from_state(ZScoreDetector(warmup=7).state_dict())
        assert clone.count == 0
        assert clone.scores == []

    @pytest.mark.parametrize(
        "state",
        [
            {},
            {"warmup": 5, "count": 3, "mean": 0.0},  # m2/scores missing
            {"warmup": 5, "count": "three", "mean": 0.0, "m2": 0.0, "scores": []},
            {"warmup": 5, "count": 3, "mean": 0.0, "m2": 0.0, "scores": [{"bad": 1}]},
            {"warmup": 5, "count": 3, "mean": 0.0, "m2": 0.0, "scores": "nope"},
        ],
    )
    def test_malformed_state_raises_checkpoint_error(self, state):
        with pytest.raises(CheckpointError):
            ZScoreDetector.from_state(state)


SETTINGS = dict(
    dataset="chicago_crime", scale=0.12, n_checkpoints=4, als_iterations=3, seed=1
)
METHOD = "sns_rnd_plus"  # randomized: also exercises the RNG-state restore


class SimulatedCrash(Exception):
    pass


@pytest.mark.parametrize("batched", [False, True], ids=["per-event", "batched"])
class TestInterruptedRunResume:
    """Acceptance: interrupt + resume == uninterrupted, on both engines."""

    def test_resumed_run_matches_uninterrupted(self, tmp_path, batched, monkeypatch):
        from repro.stream.processor import ContinuousStreamProcessor

        def run(checkpoint_dir, resume=False, checkpoint_events=None):
            return run_anomaly_experiment(
                ExperimentSettings(
                    checkpoint_dir=str(checkpoint_dir),
                    checkpoint_events=checkpoint_events,
                    resume=resume,
                    batched=batched,
                    **SETTINGS,
                ),
                methods=(METHOD,),
                n_anomalies=8,
                replay_periods=3,
            ).methods[METHOD]

        reference = run(tmp_path / "ref")

        # Crash the run right after its second mid-run checkpoint lands, so
        # the resume starts from genuinely mid-stream state.
        original = ContinuousStreamProcessor.save_checkpoint
        saves = []

        def crashing_save(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            saves.append(result)
            if len(saves) == 2:
                raise SimulatedCrash
            return result

        monkeypatch.setattr(
            ContinuousStreamProcessor, "save_checkpoint", crashing_save
        )
        with pytest.raises(SimulatedCrash):
            run(tmp_path / "res", checkpoint_events=40)
        monkeypatch.undo()

        resumed = run(tmp_path / "res", resume=True)

        assert resumed.precision_at_k == reference.precision_at_k
        assert resumed.n_scored == reference.n_scored
        if np.isnan(reference.mean_detection_delay):
            assert np.isnan(resumed.mean_detection_delay)
        else:
            assert resumed.mean_detection_delay == reference.mean_detection_delay

        # The full persisted score streams are identical, entry for entry.
        ref_extra = load_checkpoint(tmp_path / "ref" / f"anomaly-{METHOD}").extra
        res_extra = load_checkpoint(tmp_path / "res" / f"anomaly-{METHOD}").extra
        assert res_extra["detector"] == ref_extra["detector"]
        assert res_extra["n_events"] == ref_extra["n_events"]
