"""Tests for the once-per-period baselines (ALS, OnlineSCP, CP-stream, NeCPD)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import BaselineConfig
from repro.baselines.cp_stream import CPStream
from repro.baselines.necpd import NeCPD
from repro.baselines.online_scp import OnlineSCP
from repro.baselines.periodic_als import OracleALS, PeriodicALS
from repro.baselines.registry import (
    BASELINES,
    available_baselines,
    create_baseline,
    display_name,
)
from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    RankError,
    ShapeError,
    UnknownAlgorithmError,
)
from repro.stream.processor import ContinuousStreamProcessor
from repro.tensor.random import random_factors

ALL_BASELINES = ["als", "online_scp", "cp_stream", "necpd"]


def stream_one_period(processor, model):
    """Advance the window by one period and fire the baseline's update."""
    period = processor.config.period
    boundary = processor.start_time + period
    processor.run(end_time=boundary)
    model.update_period()
    return boundary


class TestBaselineConfig:
    def test_invalid_rank(self):
        with pytest.raises(RankError):
            BaselineConfig(rank=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 2, "n_iterations": 0},
            {"rank": 2, "forgetting": 0.0},
            {"rank": 2, "forgetting": 1.5},
            {"rank": 2, "learning_rate": 0.0},
            {"rank": 2, "momentum": 1.0},
            {"rank": 2, "regularization": -1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            BaselineConfig(**kwargs)


class TestRegistry:
    def test_available(self):
        assert set(available_baselines()) == {
            "als",
            "oracle_als",
            "online_scp",
            "cp_stream",
            "necpd",
        }

    def test_create_by_name(self):
        model = create_baseline("online_scp", BaselineConfig(rank=3))
        assert isinstance(model, OnlineSCP)

    def test_necpd_parenthesised_name_sets_iterations(self):
        model = create_baseline("necpd(10)", BaselineConfig(rank=3))
        assert isinstance(model, NeCPD)
        assert model.config.n_iterations == 10

    def test_unknown_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            create_baseline("gradient_boosting", BaselineConfig(rank=3))

    def test_display_names(self):
        assert display_name("cp_stream") == "CP-stream"
        assert display_name("necpd(10)") == "NeCPD (10)"

    def test_registered_names_match_classes(self):
        for name, baseline_class in BASELINES.items():
            assert baseline_class.name == name


@pytest.mark.parametrize("name", ALL_BASELINES)
class TestCommonBaselineBehaviour:
    def test_lifecycle_and_validation(self, name, small_processor, rng):
        model = create_baseline(name, BaselineConfig(rank=3))
        with pytest.raises(NotFittedError):
            model.update_period()
        with pytest.raises(ShapeError):
            model.initialize(
                small_processor.window, random_factors((8, 7), rank=3, rng=rng)
            )

    def test_periodic_updates_keep_fitness_reasonable(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = create_baseline(name, BaselineConfig(rank=4, n_iterations=1))
        model.initialize(processor.window, small_initial_factors)
        initial_fitness = model.fitness()
        boundary = processor.start_time
        for _ in range(3):
            boundary += small_window_config.period
            processor.run(end_time=boundary)
            model.update_period()
        assert model.n_period_updates == 3
        assert np.isfinite(model.fitness())
        # No divergence: still in the same ballpark as the initialisation.
        assert model.fitness() > initial_fitness - 0.5
        for factor in model.factors:
            assert np.isfinite(factor).all()

    def test_n_parameters(self, name, small_processor, small_initial_factors):
        model = create_baseline(name, BaselineConfig(rank=4))
        model.initialize(small_processor.window, small_initial_factors)
        assert model.n_parameters == 4 * (8 + 7 + 4)


class TestPeriodicALS:
    def test_refits_better_than_frozen_factors(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = PeriodicALS(BaselineConfig(rank=4, n_iterations=3))
        model.initialize(processor.window, small_initial_factors)
        frozen = small_initial_factors
        boundary = processor.start_time
        for _ in range(3):
            boundary += small_window_config.period
            processor.run(end_time=boundary)
            model.update_period()
        refit_fitness = model.fitness()
        frozen_fitness = frozen.fitness(processor.window.tensor)
        assert refit_fitness > frozen_fitness

    def test_oracle_als_refits_from_scratch(
        self, small_processor, small_initial_factors
    ):
        model = OracleALS(BaselineConfig(rank=4, n_iterations=2, seed=0))
        model.initialize(small_processor.window, small_initial_factors)
        model.update_period()
        assert np.isfinite(model.fitness())


class TestOnlineSCP:
    def test_window_deque_bounded_by_window_length(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = OnlineSCP(BaselineConfig(rank=4))
        model.initialize(processor.window, small_initial_factors)
        boundary = processor.start_time
        for _ in range(4):
            boundary += small_window_config.period
            processor.run(end_time=boundary)
            model.update_period()
        assert len(model._contributions) == small_window_config.window_length

    def test_auxiliaries_match_contribution_sums(
        self, small_processor, small_initial_factors
    ):
        model = OnlineSCP(BaselineConfig(rank=4))
        model.initialize(small_processor.window, small_initial_factors)
        for mode in range(2):
            total = sum(c.mttkrp[mode] for c in model._contributions)
            np.testing.assert_allclose(model._p_matrices[mode], total, atol=1e-9)


class TestCPStream:
    def test_forgetting_shrinks_history_weight(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = CPStream(BaselineConfig(rank=4, forgetting=0.5))
        model.initialize(processor.window, small_initial_factors)
        gram_before = [g.copy() for g in model._gram_acc]
        stream_one_period(processor, model)
        # After one update with forgetting 0.5 the accumulated Gram cannot be
        # simply the old one: it must have been scaled and augmented.
        assert not np.allclose(model._gram_acc[0], gram_before[0])

    def test_recent_rows_length_bounded(self, small_processor, small_initial_factors):
        model = CPStream(BaselineConfig(rank=4))
        model.initialize(small_processor.window, small_initial_factors)
        assert len(model._recent_rows) == small_processor.config.window_length


class TestNeCPD:
    def test_more_passes_do_not_diverge(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = NeCPD(BaselineConfig(rank=4, n_iterations=3))
        model.initialize(processor.window, small_initial_factors)
        stream_one_period(processor, model)
        assert np.isfinite(model.fitness())
        assert model.fitness() > -1.0

    def test_velocities_have_factor_shapes(self, small_processor, small_initial_factors):
        model = NeCPD(BaselineConfig(rank=4))
        model.initialize(small_processor.window, small_initial_factors)
        assert [v.shape for v in model._velocities] == [
            f.shape for f in model.factors
        ]
