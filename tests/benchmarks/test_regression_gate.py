"""Unit tests for the benchmark regression gate's comparison logic.

The gate is CI's last line of defence, so its own failure modes must be
deliberate: a metric the baseline never had is skipped (old baseline, new
benchmark), but a metric the baseline has and a fresh run silently dropped
is a *failure with a clear per-metric message* — never a raw ``KeyError``
and never a silent pass.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import regression_gate
from benchmarks.regression_gate import (
    Metric,
    MinRatio,
    check,
    check_min_ratios,
    parse_min_ratio,
)

FILENAME = "BENCH_fixture.json"


@pytest.fixture
def gate_dirs(tmp_path, monkeypatch):
    """Isolated baseline/current dirs with one watched two-metric file."""
    monkeypatch.setattr(
        regression_gate,
        "WATCHED",
        {
            FILENAME: (
                Metric("speed.events_per_second", "higher", 0.10),
                Metric("latency.save_seconds", "lower", 0.10),
            )
        },
    )
    monkeypatch.setattr(
        regression_gate, "REQUIRED_FLAGS", {FILENAME: ("converged",)}
    )
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


def write(directory, payload, filename=FILENAME):
    (directory / filename).write_text(json.dumps(payload))


def full_payload(events=1000.0, save=0.5, converged=True):
    return {
        "speed": {"events_per_second": events},
        "latency": {"save_seconds": save},
        "converged": converged,
    }


class TestMetricComparison:
    def test_identical_sides_pass(self, gate_dirs):
        baseline, current = gate_dirs
        write(baseline, full_payload())
        write(current, full_payload())
        assert check(baseline, current, slack=1.0, required=set()) == []

    def test_regression_beyond_tolerance_fails(self, gate_dirs):
        baseline, current = gate_dirs
        write(baseline, full_payload(events=1000.0))
        write(current, full_payload(events=500.0))
        failures = check(baseline, current, slack=1.0, required=set())
        assert len(failures) == 1
        assert "speed.events_per_second regressed" in failures[0]

    def test_slack_widens_the_tolerance(self, gate_dirs):
        baseline, current = gate_dirs
        write(baseline, full_payload(events=1000.0))
        write(current, full_payload(events=500.0))
        assert check(baseline, current, slack=6.0, required=set()) == []

    def test_lower_is_better_direction(self, gate_dirs):
        baseline, current = gate_dirs
        write(baseline, full_payload(save=0.5))
        write(current, full_payload(save=2.0))
        failures = check(baseline, current, slack=1.0, required=set())
        assert len(failures) == 1
        assert "latency.save_seconds regressed" in failures[0]


class TestMissingMetrics:
    def test_metric_missing_from_current_is_a_clear_failure(
        self, gate_dirs, capsys
    ):
        """The satellite fix: a dropped metric must fail with a message
        naming the file and metric, not crash with a raw KeyError."""
        baseline, current = gate_dirs
        write(baseline, full_payload())
        payload = full_payload()
        del payload["speed"]
        write(current, payload)
        failures = check(baseline, current, slack=1.0, required=set())
        assert len(failures) == 1
        assert FILENAME in failures[0]
        assert "current run is missing metric" in failures[0]
        assert "speed.events_per_second" in failures[0]
        assert "[FAIL]" in capsys.readouterr().out

    def test_metric_missing_from_baseline_is_skipped(self, gate_dirs, capsys):
        """Old baseline, new metric: skip, do not fail and do not crash."""
        baseline, current = gate_dirs
        payload = full_payload()
        del payload["latency"]
        write(baseline, payload)
        write(current, full_payload())
        assert check(baseline, current, slack=1.0, required=set()) == []
        out = capsys.readouterr().out
        assert "[skip]" in out
        assert "baseline has no metric 'latency.save_seconds'" in out

    def test_file_missing_is_skipped_unless_required(self, gate_dirs):
        baseline, current = gate_dirs
        write(baseline, full_payload())
        assert check(baseline, current, slack=1.0, required=set()) == []
        failures = check(
            baseline, current, slack=1.0, required={FILENAME}
        )
        assert len(failures) == 1
        assert "REQUIRED" in failures[0]


class TestRequiredFlags:
    def test_false_flag_fails(self, gate_dirs):
        baseline, current = gate_dirs
        write(baseline, full_payload())
        write(current, full_payload(converged=False))
        failures = check(baseline, current, slack=1.0, required=set())
        assert any("converged is False, expected true" in f for f in failures)


class TestMinRatios:
    def test_parse_roundtrip(self):
        demand = parse_min_ratio("BENCH_x.json:a.b.ratio:2.5")
        assert demand == MinRatio("BENCH_x.json", "a.b.ratio", 2.5)

    def test_parse_rejects_malformed_specs(self):
        for spec in ("no-colons", "file.json:2.5", "a:b:not-a-number"):
            with pytest.raises(ValueError):
                parse_min_ratio(spec)

    def test_floor_enforced_and_missing_target_fails(self, gate_dirs):
        _, current = gate_dirs
        write(current, full_payload(events=1000.0))
        ok = check_min_ratios(
            current, [MinRatio(FILENAME, "speed.events_per_second", 500.0)]
        )
        assert ok == []
        too_high = check_min_ratios(
            current, [MinRatio(FILENAME, "speed.events_per_second", 2000.0)]
        )
        assert len(too_high) == 1 and "below the absolute floor" in too_high[0]
        missing = check_min_ratios(
            current, [MinRatio(FILENAME, "speed.nope", 1.0)]
        )
        assert len(missing) == 1 and "no metric" in missing[0]
