"""Shared fixtures for the test suite.

Everything is intentionally tiny (small modes, short streams, low rank) so
the whole suite runs in seconds; the benchmarks exercise realistic sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.als import decompose
from repro.data.generators import generate_synthetic_stream
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.events import StreamRecord
from repro.stream.window import WindowConfig
from repro.tensor.sparse import SparseTensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_tensor(rng: np.random.Generator) -> SparseTensor:
    """A small random sparse tensor of shape (6, 5, 4)."""
    tensor = SparseTensor((6, 5, 4))
    coordinates = {
        (int(i), int(j), int(k))
        for i, j, k in zip(
            rng.integers(0, 6, size=30),
            rng.integers(0, 5, size=30),
            rng.integers(0, 4, size=30),
        )
    }
    for coordinate in coordinates:
        tensor.set(coordinate, float(rng.uniform(0.5, 3.0)))
    return tensor


@pytest.fixture
def tiny_records() -> list[StreamRecord]:
    """A handful of hand-written records for exact-value tests."""
    return [
        StreamRecord(indices=(0, 1), value=1.0, time=0.0),
        StreamRecord(indices=(1, 0), value=2.0, time=5.0),
        StreamRecord(indices=(0, 0), value=1.0, time=12.0),
        StreamRecord(indices=(2, 1), value=3.0, time=21.0),
        StreamRecord(indices=(1, 1), value=1.0, time=33.0),
    ]


@pytest.fixture
def tiny_stream(tiny_records: list[StreamRecord]) -> MultiAspectStream:
    """Stream over a 3 x 2 categorical space with 5 records."""
    return MultiAspectStream(tiny_records, mode_sizes=(3, 2))


@pytest.fixture
def small_stream() -> MultiAspectStream:
    """A synthetic stream big enough to exercise the streaming algorithms."""
    return generate_synthetic_stream(
        mode_sizes=(8, 7),
        rank=3,
        n_records=600,
        period=10.0,
        records_per_period=40.0,
        seed=7,
    )


@pytest.fixture
def small_window_config() -> WindowConfig:
    """Window configuration matching ``small_stream``."""
    return WindowConfig(mode_sizes=(8, 7), window_length=4, period=10.0)


@pytest.fixture
def small_processor(
    small_stream: MultiAspectStream, small_window_config: WindowConfig
) -> ContinuousStreamProcessor:
    """Processor bootstrapped on the small stream."""
    return ContinuousStreamProcessor(small_stream, small_window_config)


@pytest.fixture
def small_initial_factors(small_processor: ContinuousStreamProcessor):
    """ALS initialisation on the small stream's initial window."""
    result = decompose(
        small_processor.window.tensor, rank=4, n_iterations=8, seed=3
    )
    return result.decomposition
