"""Behavioural tests shared by every SliceNStitch variant.

These parametrised tests check the invariants that all five algorithms must
keep while streaming: Gram matrices stay consistent with the factors, only
the rows named by the event are touched (for the row-wise variants), the
update counter advances, and the tracked fitness stays close to what a batch
ALS re-fit of the same window achieves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.stream.processor import ContinuousStreamProcessor

ALL_ALGORITHMS = sorted(ALGORITHMS)
ROW_WISE_ALGORITHMS = ["sns_vec", "sns_rnd", "sns_vec_plus", "sns_rnd_plus"]


def make_model(name, processor, initial, rank=4, theta=5, eta=1000.0):
    model = create_algorithm(name, SNSConfig(rank=rank, theta=theta, eta=eta, seed=0))
    model.initialize(processor.window, initial)
    return model


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
class TestCommonBehaviour:
    def test_update_counter_and_no_nan(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = make_model(name, processor, small_initial_factors)
        for _, delta in processor.events(max_events=120):
            model.update(delta)
        assert model.n_updates == 120
        for factor in model.factors:
            assert np.isfinite(factor).all()

    def test_grams_match_factors_after_streaming(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        """The incrementally maintained A'A never drifts from the factors."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = make_model(name, processor, small_initial_factors)
        for _, delta in processor.events(max_events=150):
            model.update(delta)
        for factor, gram in zip(model.factors, model.grams):
            np.testing.assert_allclose(gram, factor.T @ factor, atol=1e-6, rtol=1e-6)

    def test_fitness_stays_comparable_to_batch_als(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        """After streaming, fitness is within a sane band of a fresh ALS re-fit."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = make_model(name, processor, small_initial_factors)
        for _, delta in processor.events(max_events=400):
            model.update(delta)
        reference = decompose(
            processor.window.tensor, rank=4, n_iterations=10, seed=1
        ).fitness
        assert np.isfinite(model.fitness())
        # The paper reports 72-100% relative fitness; leave slack for the tiny
        # window used in tests but fail on divergence or collapse.
        assert model.fitness() > 0.4 * reference

    def test_update_before_initialize_raises(self, name):
        from repro.exceptions import NotFittedError
        from repro.stream.deltas import Delta
        from repro.stream.events import EventKind, StreamRecord, WindowEvent

        model = create_algorithm(name, SNSConfig(rank=3))
        record = StreamRecord((0, 0), 1.0, 0.0)
        event = WindowEvent(0.0, 0, EventKind.ARRIVAL, record, 0)
        with pytest.raises(NotFittedError):
            model.update(Delta.from_event(event, 4))


@pytest.mark.parametrize("name", ROW_WISE_ALGORITHMS)
class TestRowLocality:
    def test_only_affected_rows_change(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        """A single event only rewrites the rows named by the delta (Fig. 3)."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = make_model(name, processor, small_initial_factors, theta=3)
        events = processor.events(max_events=30)
        for _, delta in events:
            before = [factor.copy() for factor in model.factors]
            model.update(delta)
            affected = set(model._affected_rows(delta))
            for mode, factor in enumerate(model.factors):
                for row in range(factor.shape[0]):
                    if (mode, row) in affected:
                        continue
                    np.testing.assert_array_equal(
                        factor[row, :],
                        before[mode][row, :],
                        err_msg=f"{name} touched untouched row ({mode}, {row})",
                    )
