"""Unit tests for :mod:`repro.core.base` (shared algorithm infrastructure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SNSConfig
from repro.core.sns_vec import SNSVec
from repro.exceptions import ConfigurationError, NotFittedError, RankError, ShapeError
from repro.stream.deltas import Delta
from repro.stream.events import EventKind, StreamRecord, WindowEvent
from repro.stream.window import TensorWindow, WindowConfig
from repro.tensor.random import random_factors


class TestSNSConfig:
    def test_defaults(self):
        config = SNSConfig(rank=5)
        assert config.theta == 20
        assert config.eta == 1000.0
        assert config.sampling == "vectorized"

    @pytest.mark.parametrize(
        ("kwargs", "exception"),
        [
            ({"rank": 0}, RankError),
            ({"rank": 3, "theta": 0}, ConfigurationError),
            ({"rank": 3, "eta": 0.0}, ConfigurationError),
            ({"rank": 3, "regularization": -1.0}, ConfigurationError),
            ({"rank": 3, "sampling": "bogus"}, ConfigurationError),
        ],
    )
    def test_invalid(self, kwargs, exception):
        with pytest.raises(exception):
            SNSConfig(**kwargs)


class TestLifecycle:
    @pytest.fixture
    def window(self) -> TensorWindow:
        return TensorWindow(WindowConfig(mode_sizes=(4, 3), window_length=3, period=1.0))

    def test_use_before_initialize_raises(self, window):
        model = SNSVec(SNSConfig(rank=2))
        with pytest.raises(NotFittedError):
            _ = model.factors
        with pytest.raises(NotFittedError):
            model.fitness()

    def test_initialize_validates_factor_count(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        with pytest.raises(ShapeError):
            model.initialize(window, random_factors((4, 3), rank=2, rng=rng))

    def test_initialize_validates_factor_shapes(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        with pytest.raises(ShapeError):
            model.initialize(window, random_factors((4, 3, 5), rank=2, rng=rng))

    def test_initialize_copies_factors(self, window, rng):
        factors = random_factors((4, 3, 3), rank=2, rng=rng)
        model = SNSVec(SNSConfig(rank=2))
        model.initialize(window, factors)
        factors[0][0, 0] = 42.0
        assert model.factors[0][0, 0] != 42.0

    def test_properties_after_initialize(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        model.initialize(window, random_factors((4, 3, 3), rank=2, rng=rng))
        assert model.order == 3
        assert model.time_mode == 2
        assert model.rank == 2
        assert model.n_parameters == 2 * (4 + 3 + 3)
        assert model.n_updates == 0

    def test_affected_rows_order(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        model.initialize(window, random_factors((4, 3, 3), rank=2, rng=rng))
        record = StreamRecord((2, 1), 1.0, 0.0)
        event = WindowEvent(1.0, 0, EventKind.SHIFT, record, 1)
        delta = Delta.from_event(event, 3)
        rows = model._affected_rows(delta)
        # Time-mode rows first (newest-but-one then its neighbour), then
        # one row per categorical mode.
        assert rows == [(2, 2), (2, 1), (0, 2), (1, 1)]

    def test_reconstruction_at_matches_decomposition(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        model.initialize(window, random_factors((4, 3, 3), rank=2, rng=rng))
        coordinate = (1, 2, 0)
        assert model.reconstruction_at(coordinate) == pytest.approx(
            model.decomposition.value_at(coordinate)
        )

    def test_decomposition_is_a_copy(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        model.initialize(window, random_factors((4, 3, 3), rank=2, rng=rng))
        decomposition = model.decomposition
        decomposition.factors[0][0, 0] += 100.0
        assert model.factors[0][0, 0] != decomposition.factors[0][0, 0]

    def test_batch_helpers_match_scalar_helpers(self, window, rng):
        model = SNSVec(SNSConfig(rank=3))
        model.initialize(window, random_factors((4, 3, 3), rank=3, rng=rng))
        coordinates = [(0, 1, 2), (3, 2, 0), (1, 0, 1)]
        batch = model._other_rows_product_batch(1, coordinates)
        for row, coordinate in zip(batch, coordinates):
            np.testing.assert_allclose(row, model._other_rows_product(1, coordinate))
        values = model._reconstruction_batch(coordinates)
        for value, coordinate in zip(values, coordinates):
            assert value == pytest.approx(model.reconstruction_at(coordinate))

    def test_reconstruction_batch_with_overrides(self, window, rng):
        model = SNSVec(SNSConfig(rank=2))
        model.initialize(window, random_factors((4, 3, 3), rank=2, rng=rng))
        coordinate = (2, 1, 1)
        override_row = np.zeros(2)
        values = model._reconstruction_batch([coordinate], {(0, 2): override_row})
        assert values[0] == pytest.approx(0.0)
