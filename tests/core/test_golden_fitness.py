"""Golden regression tests: pinned final fitness for every SNS variant.

The equivalence suite proves the batched engine matches the per-event path,
but neither suite would notice if *both* paths drifted together — e.g. a
refactor that silently changes an update rule for sequential and batched
execution alike.  These tests pin the final fitness of each of the five
SliceNStitch variants on a small fixed-seed synthetic stream, so any change
to the numerics has to be made consciously (by re-deriving the goldens) and
shows up in review.

The pinned values were produced by the per-event path at the stated
configuration.  The relative tolerance of ``1e-6`` absorbs BLAS-level
round-off differences between platforms while remaining far tighter than any
meaningful algorithmic change; on a given platform the runs are
deterministic (fixed dataset seed, fixed ALS seed, fixed sampling seed).
"""

from __future__ import annotations

import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_dataset
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

#: Replayed events after warm-up.
N_EVENTS = 400

#: Final fitness of each variant after N_EVENTS on nyc_taxi @ scale 0.05,
#: ALS(n_iterations=5, seed=0) initialisation, SNSConfig(seed=0) — i.e. the
#: default ``sampling="vectorized"`` configuration.  The randomised variants'
#: values were regenerated when the vectorised flat-index sampler became the
#: default: it draws the same uniform-without-replacement distribution as the
#: legacy sampler but consumes the generator stream differently (bulk
#: ``integers``/``permutation`` draws over linearised offsets instead of one
#: ``choice``/``integers`` call per coordinate), so the sampled coordinate
#: sequences — and therefore the pinned fitness — legitimately differ.  The
#: deterministic variants are unaffected by the sampling knob.
GOLDEN_FINAL_FITNESS = {
    "sns_mat": 0.2867246023554326,
    "sns_rnd": 0.21220075800646254,
    "sns_rnd_plus": 0.2003800063722173,
    "sns_vec": 0.2113392809886686,
    "sns_vec_plus": 0.19520302008905166,
}

#: Final fitness of the randomised variants with ``sampling="legacy"``: the
#: original per-draw sampler's stream is pinned bit-for-bit, so these are
#: exactly the values the pre-vectorisation implementation produced.
LEGACY_GOLDEN_FINAL_FITNESS = {
    "sns_rnd": 0.21146322292190745,
    "sns_rnd_plus": 0.197760670798803,
}

GOLDEN_INITIAL_FITNESS = 0.2511966271136048


@pytest.fixture(scope="module")
def golden_setup():
    stream, spec = generate_dataset("nyc_taxi", scale=0.05)
    config = WindowConfig(
        mode_sizes=spec.mode_sizes,
        window_length=spec.window_length,
        period=spec.period,
    )
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(
        processor.window.tensor, rank=spec.rank, n_iterations=5, seed=0
    )
    return stream, spec, config, initial


def test_variant_roster_matches_goldens():
    # A new variant must get a golden entry; a removed one must drop it.
    assert set(GOLDEN_FINAL_FITNESS) == set(ALGORITHMS)


def test_initialization_fitness_is_pinned(golden_setup):
    _, _, _, initial = golden_setup
    assert initial.fitness == pytest.approx(
        GOLDEN_INITIAL_FITNESS, rel=1e-6, abs=1e-9
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_FINAL_FITNESS))
def test_final_fitness_is_pinned(golden_setup, name):
    stream, spec, config, initial = golden_setup
    sns_config = SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0)
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(name, sns_config)
    model.initialize(processor.window, initial.decomposition)
    for _, delta in processor.events(max_events=N_EVENTS):
        model.update(delta)
    assert model.fitness() == pytest.approx(
        GOLDEN_FINAL_FITNESS[name], rel=1e-6, abs=1e-9
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_FINAL_FITNESS))
def test_batched_path_reproduces_goldens(golden_setup, name):
    """The batched engine must land on the same pinned numbers."""
    stream, spec, config, initial = golden_setup
    sns_config = SNSConfig(rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0)
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(name, sns_config)
    model.initialize(processor.window, initial.decomposition)
    processor.run_batched(model=model, max_events=N_EVENTS)
    assert model.fitness() == pytest.approx(
        GOLDEN_FINAL_FITNESS[name], rel=1e-6, abs=1e-9
    )


@pytest.mark.parametrize("batched", [False, True], ids=["per_event", "batched"])
@pytest.mark.parametrize("name", sorted(LEGACY_GOLDEN_FINAL_FITNESS))
def test_legacy_sampling_reproduces_original_goldens(golden_setup, name, batched):
    """``sampling="legacy"`` must reproduce the pre-vectorisation numbers.

    The legacy draw stream is a compatibility contract: these values are the
    exact goldens pinned before the vectorised sampler became the default.
    """
    stream, spec, config, initial = golden_setup
    sns_config = SNSConfig(
        rank=spec.rank, theta=spec.theta, eta=spec.eta, seed=0, sampling="legacy"
    )
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(name, sns_config)
    model.initialize(processor.window, initial.decomposition)
    if batched:
        processor.run_batched(model=model, max_events=N_EVENTS)
    else:
        for _, delta in processor.events(max_events=N_EVENTS):
            model.update(delta)
    assert model.fitness() == pytest.approx(
        LEGACY_GOLDEN_FINAL_FITNESS[name], rel=1e-6, abs=1e-9
    )
