"""Tests for the non-negative streaming extension (beyond the paper).

With ``SNSConfig(nonnegative=True)`` the coordinate-descent variants project
every updated entry onto ``[0, η]``, giving a non-negative CP decomposition of
the stream — the constraint the paper lists as supported by CP-stream and as
future work for SliceNStitch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.stream.processor import ContinuousStreamProcessor

PROJECTED_VARIANTS = ("sns_vec_plus", "sns_rnd_plus")


@pytest.mark.parametrize("name", PROJECTED_VARIANTS)
class TestNonnegativeProjection:
    def test_touched_rows_stay_nonnegative(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = create_algorithm(
            name, SNSConfig(rank=4, theta=4, eta=1000.0, nonnegative=True, seed=0)
        )
        # ALS initial factors of count data are already non-negative in
        # practice; clamp defensively so the invariant starts true.
        initial = small_initial_factors.absorb_weights()
        initial = [np.clip(factor, 0.0, None) for factor in initial.factors]
        model.initialize(processor.window, initial)
        touched: set[tuple[int, int]] = set()
        for _, delta in processor.events(max_events=250):
            model.update(delta)
            touched |= set(model._affected_rows(delta))
        for mode, index in touched:
            assert np.all(model.factors[mode][index, :] >= 0.0)
        assert np.isfinite(model.fitness())

    def test_fitness_close_to_unconstrained(
        self, name, small_stream, small_window_config, small_initial_factors
    ):
        """Projection costs little accuracy on non-negative count streams."""
        results = {}
        for nonnegative in (False, True):
            processor = ContinuousStreamProcessor(small_stream, small_window_config)
            model = create_algorithm(
                name,
                SNSConfig(rank=4, theta=4, eta=1000.0, nonnegative=nonnegative, seed=0),
            )
            model.initialize(processor.window, small_initial_factors)
            for _, delta in processor.events(max_events=300):
                model.update(delta)
            results[nonnegative] = model.fitness()
        assert results[True] > results[False] - 0.15

    def test_default_is_unconstrained(self, name):
        config = SNSConfig(rank=3)
        assert config.nonnegative is False
