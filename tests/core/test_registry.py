"""Unit tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.core.base import ContinuousCPD, SNSConfig
from repro.core.registry import (
    ALGORITHMS,
    available_algorithms,
    create_algorithm,
    display_name,
)
from repro.exceptions import UnknownAlgorithmError


class TestRegistry:
    def test_all_five_variants_registered(self):
        assert set(available_algorithms()) == {
            "sns_mat",
            "sns_vec",
            "sns_rnd",
            "sns_vec_plus",
            "sns_rnd_plus",
        }

    def test_create_returns_instances(self):
        for name in available_algorithms():
            model = create_algorithm(name, SNSConfig(rank=3))
            assert isinstance(model, ContinuousCPD)
            assert model.rank == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            create_algorithm("sns_turbo", SNSConfig(rank=3))

    def test_display_names(self):
        assert display_name("sns_rnd_plus") == "SNS+_RND"
        assert display_name("sns_mat") == "SNS_MAT"
        assert display_name("unknown") == "unknown"

    def test_registry_classes_are_distinct(self):
        assert len(set(ALGORITHMS.values())) == len(ALGORITHMS)
