"""Unit tests for :mod:`repro.core.sampling`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import sample_slice_coordinates
from repro.exceptions import ShapeError


class TestSampleSliceCoordinates:
    def test_count_and_fixed_mode(self, rng):
        samples = sample_slice_coordinates((5, 6, 7), mode=1, index=3, count=10, rng=rng)
        assert len(samples) == 10
        assert all(coordinate[1] == 3 for coordinate in samples)
        assert all(0 <= c[0] < 5 and 0 <= c[2] < 7 for c in samples)

    def test_samples_are_distinct(self, rng):
        samples = sample_slice_coordinates((4, 4, 4), mode=0, index=0, count=16, rng=rng)
        assert len(samples) == len(set(samples))

    def test_request_larger_than_slice_returns_all(self, rng):
        samples = sample_slice_coordinates((3, 2, 2), mode=0, index=1, count=50, rng=rng)
        assert len(samples) == 4  # 2 x 2 other-mode cells

    def test_excluded_coordinates_are_never_returned(self, rng):
        exclude = [(2, 0, 0), (2, 1, 1)]
        samples = sample_slice_coordinates(
            (3, 2, 2), mode=0, index=2, count=4, rng=rng, exclude=exclude
        )
        assert set(samples).isdisjoint(exclude)
        assert len(samples) == 2  # only two eligible cells remain

    def test_zero_count(self, rng):
        assert sample_slice_coordinates((3, 3), 0, 0, 0, rng) == []

    def test_everything_excluded(self, rng):
        exclude = [(1, 0), (1, 1)]
        assert (
            sample_slice_coordinates((2, 2), 0, 1, 3, rng, exclude=exclude) == []
        )

    def test_invalid_mode_or_index_rejected(self, rng):
        with pytest.raises(ShapeError):
            sample_slice_coordinates((3, 3), 2, 0, 1, rng)
        with pytest.raises(ShapeError):
            sample_slice_coordinates((3, 3), 0, 3, 1, rng)

    def test_deterministic_with_seed(self):
        a = sample_slice_coordinates((6, 6, 6), 2, 1, 5, np.random.default_rng(3))
        b = sample_slice_coordinates((6, 6, 6), 2, 1, 5, np.random.default_rng(3))
        assert a == b

    def test_large_slice_uses_rejection_sampling(self, rng):
        # Other-mode space is 1000 x 1000 = 1e6 cells > enumeration limit.
        samples = sample_slice_coordinates(
            (1000, 1000, 4), mode=2, index=2, count=25, rng=rng
        )
        assert len(samples) == 25
        assert all(coordinate[2] == 2 for coordinate in samples)
