"""Unit and property tests for :mod:`repro.core.sampling`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.sampling as sampling_module
from repro.core.sampling import (
    sample_slice_coordinates,
    sample_slice_coordinates_array,
)
from repro.exceptions import ShapeError


class TestSampleSliceCoordinates:
    def test_count_and_fixed_mode(self, rng):
        samples = sample_slice_coordinates((5, 6, 7), mode=1, index=3, count=10, rng=rng)
        assert len(samples) == 10
        assert all(coordinate[1] == 3 for coordinate in samples)
        assert all(0 <= c[0] < 5 and 0 <= c[2] < 7 for c in samples)

    def test_samples_are_distinct(self, rng):
        samples = sample_slice_coordinates((4, 4, 4), mode=0, index=0, count=16, rng=rng)
        assert len(samples) == len(set(samples))

    def test_request_larger_than_slice_returns_all(self, rng):
        samples = sample_slice_coordinates((3, 2, 2), mode=0, index=1, count=50, rng=rng)
        assert len(samples) == 4  # 2 x 2 other-mode cells

    def test_excluded_coordinates_are_never_returned(self, rng):
        exclude = [(2, 0, 0), (2, 1, 1)]
        samples = sample_slice_coordinates(
            (3, 2, 2), mode=0, index=2, count=4, rng=rng, exclude=exclude
        )
        assert set(samples).isdisjoint(exclude)
        assert len(samples) == 2  # only two eligible cells remain

    def test_zero_count(self, rng):
        assert sample_slice_coordinates((3, 3), 0, 0, 0, rng) == []

    def test_everything_excluded(self, rng):
        exclude = [(1, 0), (1, 1)]
        assert (
            sample_slice_coordinates((2, 2), 0, 1, 3, rng, exclude=exclude) == []
        )

    def test_invalid_mode_or_index_rejected(self, rng):
        with pytest.raises(ShapeError):
            sample_slice_coordinates((3, 3), 2, 0, 1, rng)
        with pytest.raises(ShapeError):
            sample_slice_coordinates((3, 3), 0, 3, 1, rng)

    def test_deterministic_with_seed(self):
        a = sample_slice_coordinates((6, 6, 6), 2, 1, 5, np.random.default_rng(3))
        b = sample_slice_coordinates((6, 6, 6), 2, 1, 5, np.random.default_rng(3))
        assert a == b

    def test_large_slice_uses_rejection_sampling(self, rng):
        # Other-mode space is 1000 x 1000 = 1e6 cells > enumeration limit.
        samples = sample_slice_coordinates(
            (1000, 1000, 4), mode=2, index=2, count=25, rng=rng
        )
        assert len(samples) == 25
        assert all(coordinate[2] == 2 for coordinate in samples)

    def test_exhausted_rejection_falls_back_to_enumeration(self, rng, monkeypatch):
        """Regression: rejection must never under-deliver while cells remain.

        With the attempt budget forced to a single draw, the rejection loop
        cannot possibly collect the requested count on its own — the
        enumeration fallback has to deliver the rest.
        """
        monkeypatch.setattr(sampling_module, "_ENUMERATION_LIMIT", 0)
        monkeypatch.setattr(sampling_module, "_REJECTION_ATTEMPTS_PER_SAMPLE", 0)
        monkeypatch.setattr(sampling_module, "_REJECTION_ATTEMPTS_BASE", 1)
        exclude = [(0, j) for j in range(4)]
        samples = sample_slice_coordinates(
            (10, 10), mode=0, index=0, count=6, rng=rng, exclude=exclude
        )
        assert len(samples) == 6
        assert len(set(samples)) == 6
        assert set(samples).isdisjoint(exclude)
        assert all(coordinate[0] == 0 for coordinate in samples)


@st.composite
def slice_case(draw):
    """A random slice-sampling request with a mixed exclusion list."""
    order = draw(st.integers(min_value=1, max_value=4))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=6)) for _ in range(order)
    )
    mode = draw(st.integers(min_value=0, max_value=order - 1))
    index = draw(st.integers(min_value=0, max_value=shape[mode] - 1))
    count = draw(st.integers(min_value=0, max_value=40))
    exclude = []
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        coordinate = list(
            draw(st.integers(min_value=0, max_value=size - 1)) for size in shape
        )
        if draw(st.booleans()):
            coordinate[mode] = index  # land the exclusion inside the slice
        exclude.append(tuple(coordinate))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return shape, mode, index, count, exclude, seed


class TestSampleSliceCoordinatesArray:
    @given(slice_case())
    @settings(max_examples=120, deadline=None)
    def test_invariants(self, case):
        """Bounds, fixed mode, dedup, exclusion, and exact delivery."""
        shape, mode, index, count, exclude, seed = case
        rng = np.random.default_rng(seed)
        samples = sample_slice_coordinates_array(
            shape, mode, index, count, rng, exclude=exclude
        )
        assert samples.dtype == np.int64
        assert samples.ndim == 2 and samples.shape[1] == len(shape)
        assert (samples >= 0).all()
        assert (samples < np.asarray(shape, dtype=np.int64)).all()
        assert (samples[:, mode] == index).all()
        rows = {tuple(row) for row in samples.tolist()}
        assert len(rows) == samples.shape[0]  # no duplicates
        assert rows.isdisjoint(exclude)
        slice_cells = int(
            np.prod([n for m, n in enumerate(shape) if m != mode], dtype=np.int64)
        )
        eligible = slice_cells - len(
            {c for c in exclude if c[mode] == index}
        )
        assert samples.shape[0] == max(0, min(count, eligible))

    @given(slice_case())
    @settings(max_examples=30, deadline=None)
    def test_matches_legacy_eligible_set(self, case):
        """Both samplers draw from exactly the same eligible cells."""
        shape, mode, index, count, exclude, seed = case
        vectorized = sample_slice_coordinates_array(
            shape, mode, index, count, np.random.default_rng(seed), exclude=exclude
        )
        legacy = sample_slice_coordinates(
            shape, mode, index, count, np.random.default_rng(seed), exclude=exclude
        )
        assert vectorized.shape[0] == len(legacy)

    def test_deterministic_with_seed(self):
        a = sample_slice_coordinates_array(
            (6, 6, 6), 2, 1, 5, np.random.default_rng(3)
        )
        b = sample_slice_coordinates_array(
            (6, 6, 6), 2, 1, 5, np.random.default_rng(3)
        )
        assert (a == b).all()

    def test_invalid_mode_or_index_rejected(self, rng):
        with pytest.raises(ShapeError):
            sample_slice_coordinates_array((3, 3), 2, 0, 1, rng)
        with pytest.raises(ShapeError):
            sample_slice_coordinates_array((3, 3), 0, 3, 1, rng)

    def test_zero_count_and_everything_excluded(self, rng):
        assert sample_slice_coordinates_array((3, 3), 0, 0, 0, rng).shape == (0, 2)
        exclude = [(1, 0), (1, 1)]
        assert sample_slice_coordinates_array(
            (2, 2), 0, 1, 3, rng, exclude=exclude
        ).shape == (0, 2)

    def test_large_slice_rejection_rounds(self, rng):
        samples = sample_slice_coordinates_array(
            (1000, 1000, 4), mode=2, index=2, count=25, rng=rng
        )
        assert samples.shape == (25, 3)
        assert (samples[:, 2] == 2).all()
        assert len({tuple(row) for row in samples.tolist()}) == 25

    def test_dense_request_delivers_all_eligible(self, rng):
        # count >= eligible: every eligible cell must come back exactly once.
        samples = sample_slice_coordinates_array((3, 2, 2), 0, 1, 50, rng)
        assert samples.shape == (4, 3)
        assert len({tuple(row) for row in samples.tolist()}) == 4

    def test_out_of_bounds_exclusions_are_ignored(self, rng):
        """Regression: an OOB exclusion must neither crash the dense path
        nor alias onto a valid slice offset."""
        samples = sample_slice_coordinates_array(
            (3, 3), 0, 0, 3, rng, exclude=[(0, 5), (0, -1)]
        )
        assert samples.shape == (3, 2)  # all three eligible cells delivered
        # A multi-mode coordinate whose flat offset would alias in-bounds.
        samples = sample_slice_coordinates_array(
            (3, 5, 4), 0, 1, 100, rng, exclude=[(1, 7, 0)]
        )
        assert samples.shape == (20, 3)  # nothing actually excluded

    def test_rejection_cap_falls_back_to_enumeration(self, rng, monkeypatch):
        """The vectorised rejection loop must also never under-deliver."""
        monkeypatch.setattr(sampling_module, "_VECTORIZED_MAX_ROUNDS", 0)
        monkeypatch.setattr(sampling_module, "_DENSE_REQUEST_FRACTION", 2.0)
        samples = sample_slice_coordinates_array((10, 10), 0, 0, 6, rng)
        assert samples.shape == (6, 2)
        assert len({tuple(row) for row in samples.tolist()}) == 6


class TestStatisticalAgreement:
    def test_legacy_and_vectorized_sample_uniformly(self):
        """Both samplers are uniform over the eligible cells.

        4 x 4 slice with one excluded cell → 15 eligible cells; drawing 3
        per call, each cell's inclusion probability is 3/15 = 0.2.  With
        4000 calls the binomial 3-sigma band is ~±0.019, so the ±0.04
        assertion is a >6-sigma bound (and the runs are seeded).
        """
        shape, mode, index, count = (4, 4, 3), 2, 1, 3
        exclude = [(0, 0, 1)]
        n_rounds = 4000
        eligible = 15
        expected = count / eligible

        def frequencies(sampler, seed, as_array):
            rng = np.random.default_rng(seed)
            counts: dict[tuple[int, ...], int] = {}
            for _ in range(n_rounds):
                samples = sampler(shape, mode, index, count, rng, exclude=exclude)
                rows = (
                    (tuple(row) for row in samples.tolist())
                    if as_array
                    else samples
                )
                for row in rows:
                    counts[row] = counts.get(row, 0) + 1
            assert len(counts) == eligible  # every eligible cell was seen
            return {cell: n / n_rounds for cell, n in counts.items()}

        legacy = frequencies(sample_slice_coordinates, 101, as_array=False)
        vectorized = frequencies(
            sample_slice_coordinates_array, 202, as_array=True
        )
        for cell_frequencies in (legacy, vectorized):
            for cell, frequency in cell_frequencies.items():
                assert frequency == pytest.approx(expected, abs=0.04), cell
        for cell in legacy:
            assert legacy[cell] == pytest.approx(vectorized[cell], abs=0.05)
